use std::error::Error;
use std::fmt;

/// A transient hardware fault raised by a substrate's fallible entry
/// points ([`crate::Substrate::try_program`] /
/// [`crate::Substrate::try_sample_hidden_batch_rows`] / …).
///
/// The paper's operating regime makes these the *expected* failure
/// class, not an exception: analog weights live on leaky gate charges
/// and are re-programmed every minibatch (§3.2), comparator latches are
/// fed by thermal noise, and node voltages drift. A fault is therefore
/// always **retriable** — the recovery discipline is *reprogram, then
/// retry* (the volatile couplings cannot be assumed to have survived
/// whatever upset caused the fault).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubstrateFault {
    /// The programming transfer itself failed (host→substrate words
    /// dropped or rejected); the coupling array's contents are
    /// undefined.
    Programming(String),
    /// The programming transfer completed, but the readback checksum
    /// over the realized couplings disagrees with the host's intended
    /// image (stuck-at weight bits, write upsets).
    Readback {
        /// Checksum of the couplings the host meant to program.
        expected: u64,
        /// Checksum the substrate read back.
        actual: u64,
    },
    /// A sample read-out failed outright (no data returned).
    Read(String),
    /// A sampled batch failed the host's sanity screen (non-binary or
    /// non-finite cells where hard `{0, 1}` read-outs are contractual —
    /// comparator latches stuck mid-rail).
    CorruptSamples(String),
}

impl fmt::Display for SubstrateFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubstrateFault::Programming(why) => {
                write!(f, "substrate programming failed: {why}")
            }
            SubstrateFault::Readback { expected, actual } => write!(
                f,
                "programmed couplings failed readback verification \
                 (expected checksum {expected:#018x}, read {actual:#018x})"
            ),
            SubstrateFault::Read(why) => write!(f, "substrate sample read failed: {why}"),
            SubstrateFault::CorruptSamples(why) => {
                write!(f, "sampled batch failed the sanity screen: {why}")
            }
        }
    }
}

impl Error for SubstrateFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SubstrateFault::Programming("bus stall".into())
            .to_string()
            .contains("bus stall"));
        let readback = SubstrateFault::Readback {
            expected: 0xAB,
            actual: 0xCD,
        };
        assert!(readback.to_string().contains("0x00000000000000ab"));
        assert!(readback.to_string().contains("0x00000000000000cd"));
        assert!(SubstrateFault::Read("timeout".into())
            .to_string()
            .contains("timeout"));
        assert!(SubstrateFault::CorruptSamples("NaN at (0, 3)".into())
            .to_string()
            .contains("NaN"));
    }
}
