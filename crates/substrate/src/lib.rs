//! # ember-substrate
//!
//! The seam at the heart of the paper's claim: the Ising substrate is a
//! *drop-in replacement* for software Gibbs sampling in the RBM training
//! loop (§3.2). This crate defines the [`Substrate`] trait — "given
//! programmed weights/biases and a clamped layer, produce conditional
//! samples for a whole minibatch" — so that every trainer can run over
//! any backend: the analog node-path model, the BRIM dynamical
//! simulator, a Metropolis annealer, or future hardware.
//!
//! The trait methods map one-to-one onto the paper's §3.2 operation
//! list for the Gibbs-sampler accelerator:
//!
//! | §3.2 operation | Trait method |
//! |---|---|
//! | 1–2. host programs the coupling matrix and biases (`m·n + m + n` words) | [`Substrate::program`] / [`Substrate::programming_cost`] |
//! | 3. visible units are clamped through DTCs | [`Substrate::quantize_batch`] |
//! | 4–5. the clamped side drives the free side, which settles and is read out | [`Substrate::sample_hidden_batch`] / [`Substrate::sample_visible_batch`] |
//! | 6. alternate clamped sides for the k-step Gibbs equivalent | callers alternate the two sampling methods |
//! | 7–8. the host accumulates `⟨v⁺ᵀh⁺⟩ − ⟨v⁻ᵀh⁻⟩` and updates weights | host-side (trainers); substrate only reports [`Substrate::counters`] |
//!
//! Implementations live next to their physics: `ember_core` ships
//! `SoftwareGibbs` (the analog node path of Fig. 12), `BrimSubstrate`
//! (clamp/anneal/read on the bipartite BRIM of Fig. 3), and
//! `AnnealerSubstrate` (Metropolis sampling over the bipartite
//! coupling). `ember_rbm`'s `CdTrainer`/`PcdTrainer` accept any of them
//! through `train_epoch_with`/`train_epoch_par_with`.
//!
//! The trait is object-safe: sampling takes `&mut dyn RngCore`, so a
//! `Vec<Box<dyn Substrate>>` of heterogeneous backends can be driven by
//! one loop (see `examples/substrate_sampling.rs`).

#![deny(unsafe_code)]
#![warn(missing_docs)]

use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
use rand::RngCore;

mod instrument;

pub use instrument::HardwareCounters;

/// A conditional-sampling backend for bipartite energy-based models.
///
/// The contract, per minibatch of training (Algorithm 1 with the
/// sampling steps offloaded):
///
/// 1. the host calls [`Substrate::program`] with its master weights;
/// 2. data rows are clamped through [`Substrate::quantize_batch`];
/// 3. alternating [`Substrate::sample_hidden_batch`] /
///    [`Substrate::sample_visible_batch`] calls realize the k-step
///    Gibbs equivalent;
/// 4. the host reads [`Substrate::counters`] to convert the work into
///    execution time and energy (crate `ember-perf`).
///
/// Outputs are hard `{0, 1}` read-outs (comparator latches or
/// thresholded node voltages). Inputs are clamp levels in `[0, 1]` —
/// binary samples fed back from the previous half-step, or multi-bit
/// DTC-quantized gray levels for the data.
///
/// Sampling methods take `&mut dyn RngCore` (rather than a generic
/// parameter) to keep the trait object-safe; the randomness models the
/// substrate's thermal noise, so a fixed seed reproduces a run exactly.
pub trait Substrate {
    /// Short stable identifier (used in bench rows and diagnostics).
    fn name(&self) -> &'static str;

    /// Number of visible-side nodes `m`.
    fn visible_len(&self) -> usize;

    /// Number of hidden-side nodes `n`.
    fn hidden_len(&self) -> usize;

    /// §3.2 steps 1–2: programs the coupling array and biases.
    ///
    /// `weights` is `m × n`; the substrate realizes them with whatever
    /// non-idealities its physics imposes (static variation, spin-domain
    /// embedding, …). Implementations must count
    /// [`Substrate::programming_cost`] words on
    /// `counters().host_words_transferred`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with the substrate's fabricated size.
    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    );

    /// §3.2 step 3: converts raw clamp levels to what the physical clamp
    /// units can actually drive (e.g. DTC quantization). The identity by
    /// default. Binary samples fed back between half-steps are already
    /// exact `{0, 1}`, on which any implementation must be the identity,
    /// so callers only quantize the *data* once per minibatch.
    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        levels.clone()
    }

    /// §3.2 steps 4–5, forward direction, whole minibatch: clamp each
    /// row of `visible` (`batch × m`, levels in `[0, 1]`), let the
    /// hidden side settle, read it out. Returns `batch × n` samples in
    /// `{0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `visible` has a row width other than `visible_len()`.
    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64>;

    /// §3.2 steps 4–5, reverse direction: clamp the hidden side
    /// (`batch × n`), sample the visible side. Returns `batch × m`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` has a row width other than `hidden_len()`.
    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64>;

    /// Single-row forward sample (serial engines). Defaults to a
    /// batch of one; implementations may override with a cheaper or
    /// differently-counted row kernel.
    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let mut batch = Array2::zeros((1, visible.len()));
        batch.row_mut(0).assign(visible);
        self.sample_hidden_batch(&batch, rng).row(0).to_owned()
    }

    /// Single-row reverse sample (serial engines). Defaults to a batch
    /// of one.
    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let mut batch = Array2::zeros((1, hidden.len()));
        batch.row_mut(0).assign(hidden);
        self.sample_visible_batch(&batch, rng).row(0).to_owned()
    }

    /// Host→substrate words one programming event transfers
    /// (`m·n + m + n` in the paper's §3.2 accounting).
    fn programming_cost(&self) -> u64 {
        (self.visible_len() * self.hidden_len() + self.visible_len() + self.hidden_len()) as u64
    }

    /// Cumulative hardware event counters since construction.
    fn counters(&self) -> &HardwareCounters;

    /// Mutable counter access: hosts account their own events here
    /// (positive/negative sample counts, host MAC ops) so one counter
    /// set describes the whole accelerated run.
    fn counters_mut(&mut self) -> &mut HardwareCounters;
}

impl<S: Substrate + ?Sized> Substrate for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn visible_len(&self) -> usize {
        (**self).visible_len()
    }
    fn hidden_len(&self) -> usize {
        (**self).hidden_len()
    }
    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        (**self).program(weights, visible_bias, hidden_bias);
    }
    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        (**self).quantize_batch(levels)
    }
    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        (**self).sample_hidden_batch(visible, rng)
    }
    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        (**self).sample_visible_batch(hidden, rng)
    }
    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        (**self).sample_hidden_row(visible, rng)
    }
    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        (**self).sample_visible_row(hidden, rng)
    }
    fn programming_cost(&self) -> u64 {
        (**self).programming_cost()
    }
    fn counters(&self) -> &HardwareCounters {
        (**self).counters()
    }
    fn counters_mut(&mut self) -> &mut HardwareCounters {
        (**self).counters_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal deterministic stub used to pin the trait's default
    /// methods (row fallbacks, programming cost, Box forwarding).
    struct Stub {
        m: usize,
        n: usize,
        counters: HardwareCounters,
    }

    impl Substrate for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn visible_len(&self) -> usize {
            self.m
        }
        fn hidden_len(&self) -> usize {
            self.n
        }
        fn program(
            &mut self,
            weights: &ArrayView2<'_, f64>,
            _bv: &ArrayView1<'_, f64>,
            _bh: &ArrayView1<'_, f64>,
        ) {
            assert_eq!(weights.dim(), (self.m, self.n));
            self.counters.host_words_transferred += self.programming_cost();
        }
        fn sample_hidden_batch(
            &mut self,
            visible: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            // "All hidden units latch 1" — enough to observe shapes.
            Array2::from_elem((visible.nrows(), self.n), 1.0)
        }
        fn sample_visible_batch(
            &mut self,
            hidden: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            Array2::zeros((hidden.nrows(), self.m))
        }
        fn counters(&self) -> &HardwareCounters {
            &self.counters
        }
        fn counters_mut(&mut self) -> &mut HardwareCounters {
            &mut self.counters
        }
    }

    fn rng() -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn default_row_methods_use_batch_of_one() {
        let mut s = Stub {
            m: 3,
            n: 2,
            counters: HardwareCounters::new(),
        };
        let v = Array1::from_vec(vec![1.0, 0.0, 1.0]);
        let h = s.sample_hidden_row(&v.view(), &mut rng());
        assert_eq!(h, Array1::from_vec(vec![1.0, 1.0]));
        let back = s.sample_visible_row(&h.view(), &mut rng());
        assert_eq!(back, Array1::zeros(3));
    }

    #[test]
    fn programming_cost_is_words_of_section_3_2() {
        let s = Stub {
            m: 784,
            n: 200,
            counters: HardwareCounters::new(),
        };
        assert_eq!(s.programming_cost(), 784 * 200 + 784 + 200);
    }

    #[test]
    fn quantize_default_is_identity() {
        let s = Stub {
            m: 2,
            n: 1,
            counters: HardwareCounters::new(),
        };
        let x = Array2::from_shape_fn((2, 2), |(i, j)| (i + j) as f64 / 3.0);
        assert_eq!(s.quantize_batch(&x), x);
    }

    #[test]
    fn boxed_substrate_forwards() {
        let mut s: Box<dyn Substrate> = Box::new(Stub {
            m: 2,
            n: 2,
            counters: HardwareCounters::new(),
        });
        let w = Array2::zeros((2, 2));
        let b = Array1::zeros(2);
        s.program(&w.view(), &b.view(), &b.view());
        assert_eq!(s.counters().host_words_transferred, 8);
        assert_eq!(s.name(), "stub");
        let out = s.sample_hidden_batch(&Array2::zeros((4, 2)), &mut rng());
        assert_eq!(out.dim(), (4, 2));
    }
}
