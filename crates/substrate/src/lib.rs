//! # ember-substrate
//!
//! The seam at the heart of the paper's claim: the Ising substrate is a
//! *drop-in replacement* for software Gibbs sampling in the RBM training
//! loop (§3.2). This crate defines the [`Substrate`] trait — "given
//! programmed weights/biases and a clamped layer, produce conditional
//! samples for a whole minibatch" — so that every trainer can run over
//! any backend: the analog node-path model, the BRIM dynamical
//! simulator, a Metropolis annealer, or future hardware.
//!
//! The trait methods map one-to-one onto the paper's §3.2 operation
//! list for the Gibbs-sampler accelerator:
//!
//! | §3.2 operation | Trait method |
//! |---|---|
//! | 1–2. host programs the coupling matrix and biases (`m·n + m + n` words) | [`Substrate::program`] / [`Substrate::programming_cost`] |
//! | 3. visible units are clamped through DTCs | [`Substrate::quantize_batch`] |
//! | 4–5. the clamped side drives the free side, which settles and is read out | [`Substrate::sample_hidden_batch`] / [`Substrate::sample_visible_batch`] |
//! | 6. alternate clamped sides for the k-step Gibbs equivalent | callers alternate the two sampling methods |
//! | 7–8. the host accumulates `⟨v⁺ᵀh⁺⟩ − ⟨v⁻ᵀh⁻⟩` and updates weights | host-side (trainers); substrate only reports [`Substrate::counters`] |
//!
//! Implementations live next to their physics: `ember_core` ships
//! `SoftwareGibbs` (the analog node path of Fig. 12), `BrimSubstrate`
//! (clamp/anneal/read on the bipartite BRIM of Fig. 3), and
//! `AnnealerSubstrate` (Metropolis sampling over the bipartite
//! coupling). `ember_rbm`'s `CdTrainer`/`PcdTrainer` accept any of them
//! through `train_epoch_with`/`train_epoch_par_with`.
//!
//! The trait is object-safe: sampling takes `&mut dyn RngCore`, so a
//! `Vec<Box<dyn Substrate>>` of heterogeneous backends can be driven by
//! one loop (see `examples/substrate_sampling.rs`).
//!
//! Three extensions serve the sharded serving layer (`ember_serve`):
//!
//! * the `*_batch_rows` methods sample a whole batch under **one RNG
//!   stream per row**, so a row's bits depend only on its own stream —
//!   the property that makes request coalescing invisible in the
//!   samples;
//! * [`ReplicableSubstrate`] (sealed) adds
//!   [`ReplicableSubstrate::clone_boxed`], letting a service clone a
//!   fabricated prototype into per-shard replicas behind `dyn`; and
//! * the **fallible seam** — `try_program` / `try_sample_*` returning
//!   [`SubstrateFault`], plus [`Substrate::programmed_checksum`]
//!   readback — models hardware that can drop a transfer, realize
//!   stuck-at couplings, or read out garbage. Every method is
//!   default-implemented over the infallible API (existing backends
//!   never fail); the seed-driven [`ChaosSubstrate`] decorator injects
//!   faults through it for resilience testing, and
//!   `ember_serve`'s recovery path (reprogram-before-retry, sanity
//!   screens, circuit breaker) consumes it.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
use rand::RngCore;

mod chaos;
mod fault;
mod instrument;

pub use chaos::{ChaosConfig, ChaosSubstrate};
pub use fault::SubstrateFault;
pub use instrument::HardwareCounters;

/// A conditional-sampling backend for bipartite energy-based models.
///
/// The contract, per minibatch of training (Algorithm 1 with the
/// sampling steps offloaded):
///
/// 1. the host calls [`Substrate::program`] with its master weights;
/// 2. data rows are clamped through [`Substrate::quantize_batch`];
/// 3. alternating [`Substrate::sample_hidden_batch`] /
///    [`Substrate::sample_visible_batch`] calls realize the k-step
///    Gibbs equivalent;
/// 4. the host reads [`Substrate::counters`] to convert the work into
///    execution time and energy (crate `ember-perf`).
///
/// Outputs are hard `{0, 1}` read-outs (comparator latches or
/// thresholded node voltages). Inputs are clamp levels in `[0, 1]` —
/// binary samples fed back from the previous half-step, or multi-bit
/// DTC-quantized gray levels for the data.
///
/// Sampling methods take `&mut dyn RngCore` (rather than a generic
/// parameter) to keep the trait object-safe; the randomness models the
/// substrate's thermal noise, so a fixed seed reproduces a run exactly.
pub trait Substrate {
    /// Short stable identifier (used in bench rows and diagnostics).
    fn name(&self) -> &'static str;

    /// Number of visible-side nodes `m`.
    fn visible_len(&self) -> usize;

    /// Number of hidden-side nodes `n`.
    fn hidden_len(&self) -> usize;

    /// §3.2 steps 1–2: programs the coupling array and biases.
    ///
    /// `weights` is `m × n`; the substrate realizes them with whatever
    /// non-idealities its physics imposes (static variation, spin-domain
    /// embedding, …). Implementations must count
    /// [`Substrate::programming_cost`] words on
    /// `counters().host_words_transferred`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch with the substrate's fabricated size.
    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    );

    /// §3.2 step 3: converts raw clamp levels to what the physical clamp
    /// units can actually drive (e.g. DTC quantization). The identity by
    /// default. Binary samples fed back between half-steps are already
    /// exact `{0, 1}`, on which any implementation must be the identity,
    /// so callers only quantize the *data* once per minibatch.
    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        levels.clone()
    }

    /// §3.2 steps 4–5, forward direction, whole minibatch: clamp each
    /// row of `visible` (`batch × m`, levels in `[0, 1]`), let the
    /// hidden side settle, read it out. Returns `batch × n` samples in
    /// `{0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `visible` has a row width other than `visible_len()`.
    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64>;

    /// §3.2 steps 4–5, reverse direction: clamp the hidden side
    /// (`batch × n`), sample the visible side. Returns `batch × m`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` has a row width other than `hidden_len()`.
    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64>;

    /// Single-row forward sample (serial engines). Defaults to a
    /// batch of one; implementations may override with a cheaper or
    /// differently-counted row kernel.
    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let mut batch = Array2::zeros((1, visible.len()));
        batch.row_mut(0).assign(visible);
        self.sample_hidden_batch(&batch, rng).row(0).to_owned()
    }

    /// Single-row reverse sample (serial engines). Defaults to a batch
    /// of one.
    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        let mut batch = Array2::zeros((1, hidden.len()));
        batch.row_mut(0).assign(hidden);
        self.sample_visible_batch(&batch, rng).row(0).to_owned()
    }

    /// Forward batch sample with **one RNG stream per row**: row `i` of
    /// the output is drawn using `rngs[i]` and nothing else.
    ///
    /// The contract — relied on by the serving layer's request
    /// coalescing — is that row `i` depends only on the programmed
    /// parameters, `visible` row `i`, and the state of `rngs[i]`:
    /// *never* on the other rows of the batch or on state left behind
    /// by earlier calls. Under this contract the same row produces the
    /// same bits whether it is sampled alone or coalesced into any
    /// batch, on any replica programmed with the same parameters.
    ///
    /// The default implementation loops [`Substrate::sample_hidden_row`]
    /// and inherits its counter accounting; implementations with a
    /// batched fast path (GEMM over the whole batch) may override it,
    /// and implementations with persistent physical state must
    /// re-initialize that state per row to honor the contract.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len() != visible.nrows()` or on row-width
    /// mismatch.
    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        assert_eq!(visible.nrows(), rngs.len(), "one RNG stream per row");
        let mut out = Array2::zeros((visible.nrows(), self.hidden_len()));
        for (i, row) in visible.rows().enumerate() {
            out.row_mut(i)
                .assign(&self.sample_hidden_row(&row, &mut *rngs[i]));
        }
        out
    }

    /// Reverse-direction counterpart of
    /// [`Substrate::sample_hidden_batch_rows`]: clamp hidden rows,
    /// sample visible rows, one RNG stream per row, same row-independence
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `rngs.len() != hidden.nrows()` or on row-width mismatch.
    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        assert_eq!(hidden.nrows(), rngs.len(), "one RNG stream per row");
        let mut out = Array2::zeros((hidden.nrows(), self.visible_len()));
        for (i, row) in hidden.rows().enumerate() {
            out.row_mut(i)
                .assign(&self.sample_visible_row(&row, &mut *rngs[i]));
        }
        out
    }

    /// Fallible counterpart of [`Substrate::program`] — §3.2 steps 1–2
    /// on hardware that can drop the transfer or realize corrupted
    /// couplings. The default forwards to the infallible method and
    /// never fails, so existing backends stay source-compatible; faulty
    /// hardware (and the [`ChaosSubstrate`] test decorator) overrides
    /// this to surface [`SubstrateFault`]s.
    ///
    /// On `Err` the coupling array's contents are **undefined**: the
    /// caller must re-program before the next sampling call.
    fn try_program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) -> Result<(), SubstrateFault> {
        self.program(weights, visible_bias, hidden_bias);
        Ok(())
    }

    /// Fallible counterpart of [`Substrate::sample_hidden_batch`].
    /// Defaults to the infallible method (never fails).
    fn try_sample_hidden_batch(
        &mut self,
        visible: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        Ok(self.sample_hidden_batch(visible, rng))
    }

    /// Fallible counterpart of [`Substrate::sample_visible_batch`].
    /// Defaults to the infallible method (never fails).
    fn try_sample_visible_batch(
        &mut self,
        hidden: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        Ok(self.sample_visible_batch(hidden, rng))
    }

    /// Fallible counterpart of [`Substrate::sample_hidden_batch_rows`]
    /// (same one-stream-per-row contract). Defaults to the infallible
    /// method (never fails).
    ///
    /// A failed call may have consumed an arbitrary amount of each
    /// row's RNG stream; retries must restart every chain from its seed
    /// (which is also what makes a successful retry bit-identical to
    /// the fault-free run).
    fn try_sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        Ok(self.sample_hidden_batch_rows(visible, rngs))
    }

    /// Fallible counterpart of [`Substrate::sample_visible_batch_rows`].
    /// Defaults to the infallible method (never fails).
    fn try_sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        Ok(self.sample_visible_batch_rows(hidden, rngs))
    }

    /// Whether this substrate can actually fail or corrupt: `true`
    /// means the `try_*` seam may return `Err` or hand back non-binary
    /// read-outs, so callers should pay for detection (per-read sanity
    /// screens, readback verification). The default `false` declares an
    /// infallible backend — recovery layers skip their screens
    /// entirely, keeping the fault machinery at **zero cost on the
    /// fault-free hot path**. [`ChaosSubstrate`] overrides this to
    /// `true`.
    fn is_fallible(&self) -> bool {
        false
    }

    /// Readback checksum over the couplings the substrate **actually
    /// realized** in its last programming event, if the hardware
    /// supports readback. `None` (the default) means no readback path —
    /// the host must trust the transfer.
    ///
    /// When `Some`, a recovery layer compares it against the checksum
    /// of the intended image (`ember_core::recovery::couplings_checksum`)
    /// to detect stuck-at corruption before sampling garbage.
    fn programmed_checksum(&self) -> Option<u64> {
        None
    }

    /// Host→substrate words one programming event transfers
    /// (`m·n + m + n` in the paper's §3.2 accounting).
    fn programming_cost(&self) -> u64 {
        (self.visible_len() * self.hidden_len() + self.visible_len() + self.hidden_len()) as u64
    }

    /// Cumulative hardware event counters since construction.
    fn counters(&self) -> &HardwareCounters;

    /// Mutable counter access: hosts account their own events here
    /// (positive/negative sample counts, host MAC ops) so one counter
    /// set describes the whole accelerated run.
    fn counters_mut(&mut self) -> &mut HardwareCounters;
}

impl<S: Substrate + ?Sized> Substrate for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn visible_len(&self) -> usize {
        (**self).visible_len()
    }
    fn hidden_len(&self) -> usize {
        (**self).hidden_len()
    }
    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        (**self).program(weights, visible_bias, hidden_bias);
    }
    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        (**self).quantize_batch(levels)
    }
    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        (**self).sample_hidden_batch(visible, rng)
    }
    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        (**self).sample_visible_batch(hidden, rng)
    }
    fn sample_hidden_row(
        &mut self,
        visible: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        (**self).sample_hidden_row(visible, rng)
    }
    fn sample_visible_row(
        &mut self,
        hidden: &ArrayView1<'_, f64>,
        rng: &mut dyn RngCore,
    ) -> Array1<f64> {
        (**self).sample_visible_row(hidden, rng)
    }
    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        (**self).sample_hidden_batch_rows(visible, rngs)
    }
    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        (**self).sample_visible_batch_rows(hidden, rngs)
    }
    fn try_program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) -> Result<(), SubstrateFault> {
        (**self).try_program(weights, visible_bias, hidden_bias)
    }
    fn try_sample_hidden_batch(
        &mut self,
        visible: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        (**self).try_sample_hidden_batch(visible, rng)
    }
    fn try_sample_visible_batch(
        &mut self,
        hidden: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        (**self).try_sample_visible_batch(hidden, rng)
    }
    fn try_sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        (**self).try_sample_hidden_batch_rows(visible, rngs)
    }
    fn try_sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        (**self).try_sample_visible_batch_rows(hidden, rngs)
    }
    fn is_fallible(&self) -> bool {
        (**self).is_fallible()
    }
    fn programmed_checksum(&self) -> Option<u64> {
        (**self).programmed_checksum()
    }
    fn programming_cost(&self) -> u64 {
        (**self).programming_cost()
    }
    fn counters(&self) -> &HardwareCounters {
        (**self).counters()
    }
    fn counters_mut(&mut self) -> &mut HardwareCounters {
        (**self).counters_mut()
    }
}

mod sealed {
    /// Seals [`super::ReplicableSubstrate`]: the blanket impl below is
    /// its *only* implementation. Backends opt in by being
    /// `Substrate + Clone + Send + 'static`; nothing downstream can
    /// implement the trait by hand (and thereby break the
    /// clone-is-a-faithful-replica guarantee the serving layer shards
    /// on).
    pub trait Sealed {}
    impl<S: Clone + Send + 'static> Sealed for S {}
}

/// A [`Substrate`] that can replicate itself behind a trait object.
///
/// A replica produced by [`ReplicableSubstrate::clone_boxed`] carries
/// the *fabricated identity* of the original — frozen variation maps,
/// programmed parameters, thermal-bath settings, accumulated counters —
/// exactly as `Clone` would. The serving layer fabricates one prototype
/// per model and clones it into every worker shard, so all shards
/// realize the same physical machine.
///
/// The trait is sealed: it is implemented automatically for every
/// `Substrate + Clone + Send + 'static` type (including
/// `Box<dyn ReplicableSubstrate>` itself, which is `Clone` via
/// `clone_boxed`) and cannot be implemented manually.
pub trait ReplicableSubstrate: Substrate + Send + sealed::Sealed {
    /// Clones this substrate into a fresh boxed replica.
    fn clone_boxed(&self) -> Box<dyn ReplicableSubstrate>;
}

impl<S: Substrate + Clone + Send + 'static> ReplicableSubstrate for S {
    fn clone_boxed(&self) -> Box<dyn ReplicableSubstrate> {
        Box::new(self.clone())
    }
}

impl Clone for Box<dyn ReplicableSubstrate> {
    fn clone(&self) -> Self {
        (**self).clone_boxed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal deterministic stub used to pin the trait's default
    /// methods (row fallbacks, programming cost, Box forwarding).
    #[derive(Clone)]
    struct Stub {
        m: usize,
        n: usize,
        counters: HardwareCounters,
    }

    impl Substrate for Stub {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn visible_len(&self) -> usize {
            self.m
        }
        fn hidden_len(&self) -> usize {
            self.n
        }
        fn program(
            &mut self,
            weights: &ArrayView2<'_, f64>,
            _bv: &ArrayView1<'_, f64>,
            _bh: &ArrayView1<'_, f64>,
        ) {
            assert_eq!(weights.dim(), (self.m, self.n));
            self.counters.host_words_transferred += self.programming_cost();
        }
        fn sample_hidden_batch(
            &mut self,
            visible: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            // "All hidden units latch 1" — enough to observe shapes.
            Array2::from_elem((visible.nrows(), self.n), 1.0)
        }
        fn sample_visible_batch(
            &mut self,
            hidden: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            Array2::zeros((hidden.nrows(), self.m))
        }
        fn counters(&self) -> &HardwareCounters {
            &self.counters
        }
        fn counters_mut(&mut self) -> &mut HardwareCounters {
            &mut self.counters
        }
    }

    fn rng() -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn default_row_methods_use_batch_of_one() {
        let mut s = Stub {
            m: 3,
            n: 2,
            counters: HardwareCounters::new(),
        };
        let v = Array1::from_vec(vec![1.0, 0.0, 1.0]);
        let h = s.sample_hidden_row(&v.view(), &mut rng());
        assert_eq!(h, Array1::from_vec(vec![1.0, 1.0]));
        let back = s.sample_visible_row(&h.view(), &mut rng());
        assert_eq!(back, Array1::zeros(3));
    }

    #[test]
    fn programming_cost_is_words_of_section_3_2() {
        let s = Stub {
            m: 784,
            n: 200,
            counters: HardwareCounters::new(),
        };
        assert_eq!(s.programming_cost(), 784 * 200 + 784 + 200);
    }

    #[test]
    fn quantize_default_is_identity() {
        let s = Stub {
            m: 2,
            n: 1,
            counters: HardwareCounters::new(),
        };
        let x = Array2::from_shape_fn((2, 2), |(i, j)| (i + j) as f64 / 3.0);
        assert_eq!(s.quantize_batch(&x), x);
    }

    #[test]
    fn default_batch_rows_methods_use_one_stream_per_row() {
        let mut s = Stub {
            m: 3,
            n: 2,
            counters: HardwareCounters::new(),
        };
        let v = Array2::from_elem((4, 3), 1.0);
        let mut rngs: Vec<rand::rngs::StdRng> = (0..4).map(|_| rng()).collect();
        let mut dyn_rngs: Vec<&mut dyn RngCore> =
            rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect();
        let h = s.sample_hidden_batch_rows(&v, &mut dyn_rngs);
        assert_eq!(h, Array2::from_elem((4, 2), 1.0));
        let mut dyn_rngs: Vec<&mut dyn RngCore> =
            rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect();
        let back = s.sample_visible_batch_rows(&h, &mut dyn_rngs);
        assert_eq!(back, Array2::zeros((4, 3)));
    }

    #[test]
    #[should_panic(expected = "one RNG stream per row")]
    fn batch_rows_rejects_stream_count_mismatch() {
        let mut s = Stub {
            m: 2,
            n: 2,
            counters: HardwareCounters::new(),
        };
        let v = Array2::zeros((3, 2));
        let mut r = rng();
        let mut dyn_rngs: Vec<&mut dyn RngCore> = vec![&mut r];
        let _ = s.sample_hidden_batch_rows(&v, &mut dyn_rngs);
    }

    #[test]
    fn clone_boxed_replicates_fabricated_identity() {
        let mut proto: Box<dyn ReplicableSubstrate> = Box::new(Stub {
            m: 2,
            n: 3,
            counters: HardwareCounters::new(),
        });
        let w = Array2::zeros((2, 3));
        let bv = Array1::zeros(2);
        let bh = Array1::zeros(3);
        proto.program(&w.view(), &bv.view(), &bh.view());
        // A replica carries programmed state and counters of the original…
        let mut replica = proto.clone();
        assert_eq!(replica.name(), "stub");
        assert_eq!(replica.visible_len(), 2);
        assert_eq!(replica.counters().host_words_transferred, 2 * 3 + 2 + 3);
        // …and diverges independently afterwards.
        replica.counters_mut().phase_points += 7;
        assert_eq!(proto.counters().phase_points, 0);
        assert_eq!(replica.counters().phase_points, 7);
    }

    #[test]
    fn boxed_substrate_forwards() {
        let mut s: Box<dyn Substrate> = Box::new(Stub {
            m: 2,
            n: 2,
            counters: HardwareCounters::new(),
        });
        let w = Array2::zeros((2, 2));
        let b = Array1::zeros(2);
        s.program(&w.view(), &b.view(), &b.view());
        assert_eq!(s.counters().host_words_transferred, 8);
        assert_eq!(s.name(), "stub");
        let out = s.sample_hidden_batch(&Array2::zeros((4, 2)), &mut rng());
        assert_eq!(out.dim(), (4, 2));
    }
}
