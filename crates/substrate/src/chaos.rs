//! Deterministic fault injection over any substrate: the
//! [`ChaosSubstrate`] decorator.
//!
//! The paper's hardware lives in a fault regime software backends never
//! see: volatile analog weights re-programmed every minibatch (§3.2),
//! comparators fed by thermal noise, node voltages that drift. This
//! module makes that regime testable — wrap any
//! [`ReplicableSubstrate`] in a [`ChaosSubstrate`] and it will, on a
//! **seed-driven schedule**, corrupt programmings (stuck-at weight
//! bits), corrupt sample read-outs (comparator latches stuck mid-rail,
//! surfaced as non-binary cells), spike latency, raise outright
//! [`SubstrateFault`]s, and — for supervision tests — panic once.
//!
//! Faults are injected only through the **fallible** entry points
//! (`try_program` / `try_sample_*`): the infallible API forwards to the
//! inner substrate untouched and remains the golden path. When the
//! schedule injects nothing, a fallible call is bit-identical to the
//! inner substrate's — the chaos RNG is private, so the wrapped
//! machine's sampled bits never depend on it. That is the property the
//! chaos suite leans on: a request that survives (or is successfully
//! retried) returns exactly the fault-free samples.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ndarray::{Array2, ArrayView1, ArrayView2};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::{HardwareCounters, ReplicableSubstrate, Substrate, SubstrateFault};

/// Fault schedule of a [`ChaosSubstrate`]: per-event probabilities,
/// all driven by one seeded RNG so a schedule reproduces exactly.
///
/// Rates are per *operation* (one `try_program`, one `try_sample_*`
/// call), not per element. All rates default to zero — the default
/// config injects nothing.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed of the private chaos RNG.
    pub seed: u64,
    /// Probability that a `try_program` fails outright
    /// ([`SubstrateFault::Programming`]).
    pub program_fault_rate: f64,
    /// Probability that a `try_program` completes but realizes
    /// **corrupted** couplings: a few weight cells are forced to a
    /// stuck value. Detected by readback checksum
    /// ([`Substrate::programmed_checksum`]).
    pub program_corruption_rate: f64,
    /// Probability that a `try_sample_*` call fails outright
    /// ([`SubstrateFault::Read`]).
    pub read_fault_rate: f64,
    /// Probability that a `try_sample_*` call returns a batch with a
    /// few cells latched mid-rail (written as `0.5`) — caught by the
    /// host's non-binary sanity screen.
    pub read_corruption_rate: f64,
    /// Probability that a `try_sample_*` call stalls for
    /// [`ChaosConfig::latency_spike`] before answering.
    pub latency_spike_rate: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
    /// Panic on the n-th sampling call (0-indexed, counted across the
    /// replica family — the fuse is shared by clones and burns once),
    /// simulating a wedged driver thread for shard-supervision tests.
    pub panic_on_sample_call: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0,
            program_fault_rate: 0.0,
            program_corruption_rate: 0.0,
            read_fault_rate: 0.0,
            read_corruption_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Duration::from_millis(1),
            panic_on_sample_call: None,
        }
    }
}

impl ChaosConfig {
    /// A schedule injecting nothing, seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }

    /// Sets every fault class (program fault, program corruption, read
    /// fault, read corruption) to probability `p` — the "x% injected
    /// fault rate" knob of the chaos suite and bench.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    #[must_use]
    pub fn with_fault_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be a probability");
        self.program_fault_rate = p;
        self.program_corruption_rate = p;
        self.read_fault_rate = p;
        self.read_corruption_rate = p;
        self
    }

    /// Sets the outright-failure rates (`try_program` / `try_sample_*`
    /// returning `Err`) only.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    #[must_use]
    pub fn with_hard_fault_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be a probability");
        self.program_fault_rate = p;
        self.read_fault_rate = p;
        self
    }

    /// Sets the corruption rates (stuck-at programmings, mid-rail
    /// read-outs) only.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    #[must_use]
    pub fn with_corruption_rate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be a probability");
        self.program_corruption_rate = p;
        self.read_corruption_rate = p;
        self
    }

    /// Enables latency spikes: with probability `p` a sampling call
    /// stalls for `spike` first.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    #[must_use]
    pub fn with_latency_spikes(mut self, p: f64, spike: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "rate must be a probability");
        self.latency_spike_rate = p;
        self.latency_spike = spike;
        self
    }

    /// Arms the one-shot panic fuse: the `n`-th sampling call (counted
    /// across all clones of the wrapped replica) panics.
    #[must_use]
    pub fn with_panic_on_sample_call(mut self, n: u64) -> Self {
        self.panic_on_sample_call = Some(n);
        self
    }
}

/// A fault-injecting decorator around any boxed [`ReplicableSubstrate`].
///
/// `ChaosSubstrate` is itself `Substrate + Clone + Send`, hence a
/// `ReplicableSubstrate`: a serving layer can wrap a fabricated
/// prototype once and shard it as usual — every shard replica then runs
/// its own deterministic fault schedule (clones start from the same
/// chaos RNG state; their schedules diverge with the call sequences
/// they serve). The one-shot panic fuse is the exception: it is shared
/// across the whole clone family via an `Arc`, so re-provisioned
/// replicas do not re-panic — exactly what a shard-recovery test needs.
///
/// Injected events are accounted on the inner substrate's
/// [`HardwareCounters`] (`substrate_faults`, `corrupted_programmings`,
/// `corrupted_reads`), so serving stats aggregate them for free.
///
/// # Example
///
/// ```
/// use ember_substrate::{ChaosConfig, ChaosSubstrate, Substrate, SubstrateFault};
/// # use ndarray::{Array1, Array2, ArrayView1, ArrayView2};
/// # use rand::RngCore;
/// # #[derive(Clone)]
/// # struct Stub(ember_substrate::HardwareCounters);
/// # impl Substrate for Stub {
/// #     fn name(&self) -> &'static str { "stub" }
/// #     fn visible_len(&self) -> usize { 2 }
/// #     fn hidden_len(&self) -> usize { 2 }
/// #     fn program(&mut self, _: &ArrayView2<'_, f64>, _: &ArrayView1<'_, f64>, _: &ArrayView1<'_, f64>) {}
/// #     fn sample_hidden_batch(&mut self, v: &Array2<f64>, _: &mut dyn RngCore) -> Array2<f64> { Array2::zeros((v.nrows(), 2)) }
/// #     fn sample_visible_batch(&mut self, h: &Array2<f64>, _: &mut dyn RngCore) -> Array2<f64> { Array2::zeros((h.nrows(), 2)) }
/// #     fn counters(&self) -> &ember_substrate::HardwareCounters { &self.0 }
/// #     fn counters_mut(&mut self) -> &mut ember_substrate::HardwareCounters { &mut self.0 }
/// # }
/// let inner = Box::new(Stub(Default::default()));
/// // Always-failing schedule: every fallible programming errors out.
/// let mut chaotic = ChaosSubstrate::new(inner, ChaosConfig::new(7).with_hard_fault_rate(1.0));
/// let w = Array2::zeros((2, 2));
/// let b = Array1::zeros(2);
/// assert!(matches!(
///     chaotic.try_program(&w.view(), &b.view(), &b.view()),
///     Err(SubstrateFault::Programming(_))
/// ));
/// assert_eq!(chaotic.counters().substrate_faults, 1);
/// ```
#[derive(Clone)]
pub struct ChaosSubstrate {
    inner: Box<dyn ReplicableSubstrate>,
    config: ChaosConfig,
    chaos_rng: StdRng,
    /// Sampling calls seen by *this* replica (drives the panic fuse).
    sample_calls: u64,
    /// Shared one-shot fuse: the first replica in the clone family to
    /// hit `panic_on_sample_call` burns it and panics; everyone after
    /// (including re-provisioned replicas) runs clean.
    panic_fuse: Arc<AtomicBool>,
    /// Checksum of the couplings most recently realized in `inner`
    /// (post-corruption — this is what readback would see).
    realized_checksum: Option<u64>,
}

impl std::fmt::Debug for ChaosSubstrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosSubstrate")
            .field("inner", &self.inner.name())
            .field("config", &self.config)
            .field("sample_calls", &self.sample_calls)
            .finish()
    }
}

impl ChaosSubstrate {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: Box<dyn ReplicableSubstrate>, config: ChaosConfig) -> Self {
        let chaos_rng = StdRng::seed_from_u64(config.seed);
        ChaosSubstrate {
            inner,
            config,
            chaos_rng,
            sample_calls: 0,
            panic_fuse: Arc::new(AtomicBool::new(false)),
            realized_checksum: None,
        }
    }

    /// The fault schedule.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// FNV-1a over the bit patterns of a programming image — the same
    /// digest `ember_core::recovery::couplings_checksum` computes on
    /// the host side, duplicated here so the readback seam does not
    /// invert the crate dependency.
    fn image_checksum(
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: f64| {
            for byte in x.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        weights.iter().copied().for_each(&mut eat);
        visible_bias.iter().copied().for_each(&mut eat);
        hidden_bias.iter().copied().for_each(&mut eat);
        hash
    }

    fn roll(&mut self, p: f64) -> bool {
        p > 0.0 && self.chaos_rng.random::<f64>() < p
    }

    /// Pre-sampling chaos shared by all four `try_sample_*` paths:
    /// burn the panic fuse if armed, stall on a latency spike, raise a
    /// hard read fault. `Ok(())` means the read may proceed.
    fn before_sample(&mut self) -> Result<(), SubstrateFault> {
        let call = self.sample_calls;
        self.sample_calls += 1;
        if let Some(n) = self.config.panic_on_sample_call {
            if call >= n
                && self
                    .panic_fuse
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                panic!("chaos: injected panic on sampling call {call}");
            }
        }
        if self.roll(self.config.latency_spike_rate) {
            std::thread::sleep(self.config.latency_spike);
        }
        if self.roll(self.config.read_fault_rate) {
            self.inner.counters_mut().substrate_faults += 1;
            return Err(SubstrateFault::Read(format!(
                "chaos: injected read fault on sampling call {call}"
            )));
        }
        Ok(())
    }

    /// Post-sampling chaos: maybe latch a few cells mid-rail (`0.5`) —
    /// exactly the corruption the host's binary sanity screen exists to
    /// catch.
    fn corrupt_read(&mut self, batch: &mut Array2<f64>) {
        if !self.roll(self.config.read_corruption_rate) {
            return;
        }
        let (rows, cols) = batch.dim();
        let cells = (rows * cols).max(1);
        let stuck = self.chaos_rng.random_range(1..=3.min(cells));
        for _ in 0..stuck {
            let i = self.chaos_rng.random_range(0..rows);
            let j = self.chaos_rng.random_range(0..cols);
            batch[[i, j]] = 0.5;
        }
        self.inner.counters_mut().corrupted_reads += 1;
    }
}

impl Substrate for ChaosSubstrate {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn visible_len(&self) -> usize {
        self.inner.visible_len()
    }

    fn hidden_len(&self) -> usize {
        self.inner.hidden_len()
    }

    /// The infallible API is the golden path: no injection.
    fn program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) {
        self.inner.program(weights, visible_bias, hidden_bias);
        self.realized_checksum = Some(Self::image_checksum(weights, visible_bias, hidden_bias));
    }

    fn quantize_batch(&self, levels: &Array2<f64>) -> Array2<f64> {
        self.inner.quantize_batch(levels)
    }

    fn sample_hidden_batch(&mut self, visible: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        self.inner.sample_hidden_batch(visible, rng)
    }

    fn sample_visible_batch(&mut self, hidden: &Array2<f64>, rng: &mut dyn RngCore) -> Array2<f64> {
        self.inner.sample_visible_batch(hidden, rng)
    }

    fn sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        self.inner.sample_hidden_batch_rows(visible, rngs)
    }

    fn sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Array2<f64> {
        self.inner.sample_visible_batch_rows(hidden, rngs)
    }

    fn try_program(
        &mut self,
        weights: &ArrayView2<'_, f64>,
        visible_bias: &ArrayView1<'_, f64>,
        hidden_bias: &ArrayView1<'_, f64>,
    ) -> Result<(), SubstrateFault> {
        if self.roll(self.config.program_fault_rate) {
            self.inner.counters_mut().substrate_faults += 1;
            self.realized_checksum = None;
            return Err(SubstrateFault::Programming(
                "chaos: injected programming transfer fault".into(),
            ));
        }
        if self.roll(self.config.program_corruption_rate) {
            // Stuck-at corruption: a few couplers latch at a rail value
            // instead of the programmed weight. The transfer "succeeds";
            // only readback can tell.
            let mut corrupted = weights.to_owned();
            let (m, n) = corrupted.dim();
            let stuck = self.chaos_rng.random_range(1..=3.min((m * n).max(1)));
            for _ in 0..stuck {
                let i = self.chaos_rng.random_range(0..m);
                let j = self.chaos_rng.random_range(0..n);
                corrupted[[i, j]] = if self.chaos_rng.random::<bool>() {
                    1.0e3
                } else {
                    0.0
                };
            }
            self.inner
                .program(&corrupted.view(), visible_bias, hidden_bias);
            self.realized_checksum = Some(Self::image_checksum(
                &corrupted.view(),
                visible_bias,
                hidden_bias,
            ));
            self.inner.counters_mut().corrupted_programmings += 1;
            return Ok(());
        }
        self.program(weights, visible_bias, hidden_bias);
        Ok(())
    }

    fn try_sample_hidden_batch(
        &mut self,
        visible: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        self.before_sample()?;
        let mut out = self.inner.try_sample_hidden_batch(visible, rng)?;
        self.corrupt_read(&mut out);
        Ok(out)
    }

    fn try_sample_visible_batch(
        &mut self,
        hidden: &Array2<f64>,
        rng: &mut dyn RngCore,
    ) -> Result<Array2<f64>, SubstrateFault> {
        self.before_sample()?;
        let mut out = self.inner.try_sample_visible_batch(hidden, rng)?;
        self.corrupt_read(&mut out);
        Ok(out)
    }

    fn try_sample_hidden_batch_rows(
        &mut self,
        visible: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        self.before_sample()?;
        let mut out = self.inner.try_sample_hidden_batch_rows(visible, rngs)?;
        self.corrupt_read(&mut out);
        Ok(out)
    }

    fn try_sample_visible_batch_rows(
        &mut self,
        hidden: &Array2<f64>,
        rngs: &mut [&mut dyn RngCore],
    ) -> Result<Array2<f64>, SubstrateFault> {
        self.before_sample()?;
        let mut out = self.inner.try_sample_visible_batch_rows(hidden, rngs)?;
        self.corrupt_read(&mut out);
        Ok(out)
    }

    /// Chaos-wrapped hardware is fallible by definition — recovery
    /// layers must pay for their detection screens here.
    fn is_fallible(&self) -> bool {
        true
    }

    /// The chaos wrapper *is* the readback path: it reports the
    /// checksum of whatever image it actually wrote into the inner
    /// substrate — corrupted or clean.
    fn programmed_checksum(&self) -> Option<u64> {
        self.realized_checksum
    }

    fn programming_cost(&self) -> u64 {
        self.inner.programming_cost()
    }

    fn counters(&self) -> &HardwareCounters {
        self.inner.counters()
    }

    fn counters_mut(&mut self) -> &mut HardwareCounters {
        self.inner.counters_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::Array1;

    /// Deterministic inner stub: hidden samples are all ones, visible
    /// all zeros; programming records the weight image so corruption is
    /// observable.
    #[derive(Clone)]
    struct Probe {
        m: usize,
        n: usize,
        last_weights: Array2<f64>,
        counters: HardwareCounters,
    }

    impl Probe {
        fn new(m: usize, n: usize) -> Self {
            Probe {
                m,
                n,
                last_weights: Array2::zeros((m, n)),
                counters: HardwareCounters::new(),
            }
        }
    }

    impl Substrate for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn visible_len(&self) -> usize {
            self.m
        }
        fn hidden_len(&self) -> usize {
            self.n
        }
        fn program(
            &mut self,
            weights: &ArrayView2<'_, f64>,
            _bv: &ArrayView1<'_, f64>,
            _bh: &ArrayView1<'_, f64>,
        ) {
            self.last_weights = weights.to_owned();
            self.counters.host_words_transferred += self.programming_cost();
        }
        fn sample_hidden_batch(
            &mut self,
            visible: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            Array2::from_elem((visible.nrows(), self.n), 1.0)
        }
        fn sample_visible_batch(
            &mut self,
            hidden: &Array2<f64>,
            _rng: &mut dyn RngCore,
        ) -> Array2<f64> {
            Array2::zeros((hidden.nrows(), self.m))
        }
        fn counters(&self) -> &HardwareCounters {
            &self.counters
        }
        fn counters_mut(&mut self) -> &mut HardwareCounters {
            &mut self.counters
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    fn image(m: usize, n: usize) -> (Array2<f64>, Array1<f64>, Array1<f64>) {
        (
            Array2::from_shape_fn((m, n), |(i, j)| (i * n + j) as f64 * 0.01),
            Array1::zeros(m),
            Array1::zeros(n),
        )
    }

    #[test]
    fn zero_rate_schedule_is_transparent_and_bit_identical() {
        let (w, bv, bh) = image(3, 2);
        let mut plain: Box<dyn ReplicableSubstrate> = Box::new(Probe::new(3, 2));
        let mut chaotic = ChaosSubstrate::new(Box::new(Probe::new(3, 2)), ChaosConfig::new(1));
        plain.program(&w.view(), &bv.view(), &bh.view());
        chaotic
            .try_program(&w.view(), &bv.view(), &bh.view())
            .unwrap();
        let v = Array2::from_elem((4, 3), 1.0);
        let a = plain.sample_hidden_batch(&v, &mut rng());
        let b = chaotic.try_sample_hidden_batch(&v, &mut rng()).unwrap();
        assert_eq!(a, b);
        assert_eq!(chaotic.counters().total_fault_events(), 0);
        // The fallibility hint is what buys recovery layers their
        // zero-cost fault-free path: plain backends opt out, the chaos
        // wrapper opts in even at zero rates.
        assert!(!plain.is_fallible());
        assert!(chaotic.is_fallible());
    }

    #[test]
    fn hard_fault_schedule_raises_and_counts() {
        let (w, bv, bh) = image(2, 2);
        let mut chaotic = ChaosSubstrate::new(
            Box::new(Probe::new(2, 2)),
            ChaosConfig::new(2).with_hard_fault_rate(1.0),
        );
        assert!(matches!(
            chaotic.try_program(&w.view(), &bv.view(), &bh.view()),
            Err(SubstrateFault::Programming(_))
        ));
        let v = Array2::zeros((1, 2));
        assert!(matches!(
            chaotic.try_sample_hidden_batch(&v, &mut rng()),
            Err(SubstrateFault::Read(_))
        ));
        assert_eq!(chaotic.counters().substrate_faults, 2);
    }

    #[test]
    fn corrupted_programming_is_caught_by_readback_checksum() {
        let (w, bv, bh) = image(4, 3);
        let mut chaotic = ChaosSubstrate::new(
            Box::new(Probe::new(4, 3)),
            ChaosConfig::new(3).with_corruption_rate(1.0),
        );
        chaotic
            .try_program(&w.view(), &bv.view(), &bh.view())
            .unwrap();
        let expected = ChaosSubstrate::image_checksum(&w.view(), &bv.view(), &bh.view());
        let actual = chaotic.programmed_checksum().unwrap();
        assert_ne!(expected, actual, "corruption must shift the checksum");
        assert_eq!(chaotic.counters().corrupted_programmings, 1);
        // A clean (infallible) reprogram restores the intended image.
        chaotic.program(&w.view(), &bv.view(), &bh.view());
        assert_eq!(chaotic.programmed_checksum().unwrap(), expected);
    }

    #[test]
    fn corrupted_reads_are_non_binary() {
        let mut chaotic = ChaosSubstrate::new(
            Box::new(Probe::new(3, 4)),
            ChaosConfig::new(4).with_corruption_rate(1.0),
        );
        let v = Array2::zeros((2, 3));
        let out = chaotic.try_sample_hidden_batch(&v, &mut rng()).unwrap();
        assert!(
            out.iter().any(|&x| x != 0.0 && x != 1.0),
            "corruption must be detectable by a binary screen"
        );
        assert_eq!(chaotic.counters().corrupted_reads, 1);
    }

    #[test]
    fn fault_schedule_is_deterministic_per_seed() {
        let run = || {
            let mut chaotic = ChaosSubstrate::new(
                Box::new(Probe::new(2, 2)),
                ChaosConfig::new(9).with_hard_fault_rate(0.5),
            );
            let v = Array2::zeros((1, 2));
            (0..32)
                .map(|_| chaotic.try_sample_hidden_batch(&v, &mut rng()).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(), run());
        assert!(run().iter().any(|&f| f), "a 50% schedule must fault");
        assert!(run().iter().any(|&f| !f), "a 50% schedule must also pass");
    }

    #[test]
    fn panic_fuse_burns_exactly_once_across_clones() {
        let proto = ChaosSubstrate::new(
            Box::new(Probe::new(2, 2)),
            ChaosConfig::new(5).with_panic_on_sample_call(0),
        );
        let mut replica_a = proto.clone();
        let mut replica_b = proto.clone();
        let v = Array2::zeros((1, 2));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = replica_a.try_sample_hidden_batch(&v, &mut rng());
        }));
        assert!(panicked.is_err(), "the armed fuse must panic first");
        // The sibling replica shares the burnt fuse: it serves cleanly.
        assert!(replica_b.try_sample_hidden_batch(&v, &mut rng()).is_ok());
        // And so does the panicked replica itself on a later call.
        assert!(replica_a.try_sample_hidden_batch(&v, &mut rng()).is_ok());
    }

    #[test]
    fn clone_boxed_replicates_the_decorated_stack() {
        let chaotic = ChaosSubstrate::new(
            Box::new(Probe::new(3, 2)),
            ChaosConfig::new(6).with_fault_rate(0.25),
        );
        let replica: Box<dyn ReplicableSubstrate> = chaotic.clone_boxed();
        assert_eq!(replica.name(), "probe");
        assert_eq!(replica.visible_len(), 3);
        assert_eq!(replica.hidden_len(), 2);
    }
}
