use serde::{Deserialize, Serialize};

/// Event counters the performance model (crate `ember-perf`) converts into
/// execution time and energy (§4.2–4.3).
///
/// All counts are cumulative since construction of the owning accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardwareCounters {
    /// Positive-phase samples taken (one per training vector).
    pub positive_samples: u64,
    /// Negative-phase anneal/sampling passes.
    pub negative_samples: u64,
    /// Substrate phase points traversed (integration/settle steps); ≈12 ps
    /// each on the physical machine.
    pub phase_points: u64,
    /// In-place charge-pump weight-update events (BGF only; each event is
    /// one gated coupler adjustment).
    pub weight_update_events: u64,
    /// Words moved between host and substrate (coupling programming,
    /// sample read-out, data streaming, final ADC read).
    pub host_words_transferred: u64,
    /// Host-side multiply-accumulate operations (GS: gradient accumulation
    /// and weight update; BGF: none during training).
    pub host_mac_ops: u64,
    /// Batched sampling calls whose hot kernel ran bit-packed (the
    /// `ember_core::kernels` binary GEMM over a `BitMatrix`-packed
    /// state batch, or a packed threshold read on the BRIM).
    pub packed_kernel_calls: u64,
    /// Batched sampling calls served by the dense-GEMM / scalar
    /// fallback kernel (non-binary clamp levels, or the dense kernel
    /// selected explicitly as the measured baseline).
    pub dense_kernel_calls: u64,
}

impl HardwareCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events accumulated since `earlier` (an older snapshot of this
    /// same counter set): field-wise `self − earlier`. The serving layer
    /// uses this to attribute one coalesced execution's hardware events
    /// to the responses it scatters.
    ///
    /// # Panics
    ///
    /// Panics if any field of `earlier` exceeds the corresponding field
    /// of `self` (i.e. `earlier` is not an earlier snapshot).
    #[must_use]
    pub fn delta_since(&self, earlier: &HardwareCounters) -> HardwareCounters {
        let sub = |now: u64, then: u64, what: &str| {
            now.checked_sub(then)
                .unwrap_or_else(|| panic!("`{what}` went backwards: {now} < {then}"))
        };
        HardwareCounters {
            positive_samples: sub(
                self.positive_samples,
                earlier.positive_samples,
                "positive_samples",
            ),
            negative_samples: sub(
                self.negative_samples,
                earlier.negative_samples,
                "negative_samples",
            ),
            phase_points: sub(self.phase_points, earlier.phase_points, "phase_points"),
            weight_update_events: sub(
                self.weight_update_events,
                earlier.weight_update_events,
                "weight_update_events",
            ),
            host_words_transferred: sub(
                self.host_words_transferred,
                earlier.host_words_transferred,
                "host_words_transferred",
            ),
            host_mac_ops: sub(self.host_mac_ops, earlier.host_mac_ops, "host_mac_ops"),
            packed_kernel_calls: sub(
                self.packed_kernel_calls,
                earlier.packed_kernel_calls,
                "packed_kernel_calls",
            ),
            dense_kernel_calls: sub(
                self.dense_kernel_calls,
                earlier.dense_kernel_calls,
                "dense_kernel_calls",
            ),
        }
    }

    /// Merges another counter set into this one (used when sharding
    /// training across machines in sweeps).
    pub fn merge(&mut self, other: &HardwareCounters) {
        self.positive_samples += other.positive_samples;
        self.negative_samples += other.negative_samples;
        self.phase_points += other.phase_points;
        self.weight_update_events += other.weight_update_events;
        self.host_words_transferred += other.host_words_transferred;
        self.host_mac_ops += other.host_mac_ops;
        self.packed_kernel_calls += other.packed_kernel_calls;
        self.dense_kernel_calls += other.dense_kernel_calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = HardwareCounters {
            positive_samples: 1,
            negative_samples: 2,
            phase_points: 3,
            weight_update_events: 4,
            host_words_transferred: 5,
            host_mac_ops: 6,
            packed_kernel_calls: 7,
            dense_kernel_calls: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.positive_samples, 2);
        assert_eq!(a.host_mac_ops, 12);
        assert_eq!(a.packed_kernel_calls, 14);
        assert_eq!(a.dense_kernel_calls, 16);
    }

    #[test]
    fn delta_since_inverts_merge() {
        let earlier = HardwareCounters {
            positive_samples: 1,
            negative_samples: 2,
            phase_points: 3,
            weight_update_events: 4,
            host_words_transferred: 5,
            host_mac_ops: 6,
            packed_kernel_calls: 7,
            dense_kernel_calls: 8,
        };
        let mut now = earlier;
        let delta = HardwareCounters {
            phase_points: 40,
            host_words_transferred: 8,
            packed_kernel_calls: 2,
            ..HardwareCounters::new()
        };
        now.merge(&delta);
        assert_eq!(now.delta_since(&earlier), delta);
        assert_eq!(now.delta_since(&now), HardwareCounters::new());
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn delta_since_rejects_non_snapshot() {
        let a = HardwareCounters {
            phase_points: 1,
            ..HardwareCounters::new()
        };
        let _ = HardwareCounters::new().delta_since(&a);
    }

    #[test]
    fn default_is_zero() {
        let c = HardwareCounters::new();
        assert_eq!(c.phase_points, 0);
        assert_eq!(c, HardwareCounters::default());
    }
}
