use serde::{Deserialize, Serialize};

/// Event counters the performance model (crate `ember-perf`) converts into
/// execution time and energy (§4.2–4.3).
///
/// All counts are cumulative since construction of the owning accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardwareCounters {
    /// Positive-phase samples taken (one per training vector).
    pub positive_samples: u64,
    /// Negative-phase anneal/sampling passes.
    pub negative_samples: u64,
    /// Substrate phase points traversed (integration/settle steps); ≈12 ps
    /// each on the physical machine.
    pub phase_points: u64,
    /// In-place charge-pump weight-update events (BGF only; each event is
    /// one gated coupler adjustment).
    pub weight_update_events: u64,
    /// Words moved between host and substrate (coupling programming,
    /// sample read-out, data streaming, final ADC read).
    pub host_words_transferred: u64,
    /// Host-side multiply-accumulate operations (GS: gradient accumulation
    /// and weight update; BGF: none during training).
    pub host_mac_ops: u64,
    /// Batched sampling calls whose hot kernel ran bit-packed (the
    /// `ember_core::kernels` binary GEMM over a `BitMatrix`-packed
    /// state batch, or a packed threshold read on the BRIM).
    pub packed_kernel_calls: u64,
    /// Batched sampling calls served by the dense-GEMM / scalar
    /// fallback kernel (non-binary clamp levels, or the dense kernel
    /// selected explicitly as the measured baseline).
    pub dense_kernel_calls: u64,
    /// Sampling calls whose inner field loops executed on a vector
    /// SIMD tier (AVX2/NEON, `ndarray::simd`). Orthogonal to the
    /// packed/dense split — both kernels run their inner loops on the
    /// active tier — so on a vector tier this equals
    /// `packed_kernel_calls + dense_kernel_calls`, and it stays `0`
    /// when the scalar reference tier is pinned
    /// (`EMBER_FORCE_SCALAR`). The deployment health check that a
    /// fleet is actually on the fast tier.
    pub simd_kernel_calls: u64,
    /// Hard substrate faults raised through the fallible entry points
    /// (`try_program` / `try_sample_*`): the operation failed outright
    /// and returned a `SubstrateFault` instead of data.
    pub substrate_faults: u64,
    /// Programming events that realized **corrupted** couplings
    /// (stuck-at weight bits): the array was written, but not with the
    /// host's intended values. Detectable by readback checksum.
    pub corrupted_programmings: u64,
    /// Sample read-outs with injected corruption (comparator latches
    /// stuck mid-rail, surfaced as non-binary/NaN cells). Detectable by
    /// the host's sanity screen.
    pub corrupted_reads: u64,
    /// Recovery retries the host executed against this substrate
    /// (host-accounted, like `host_mac_ops`): each retry re-programs
    /// the volatile couplings and re-runs the failed operation.
    pub recovery_retries: u64,
}

impl HardwareCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events accumulated since `earlier` (an older snapshot of this
    /// same counter set): field-wise `self − earlier`. The serving layer
    /// uses this to attribute one coalesced execution's hardware events
    /// to the responses it scatters.
    ///
    /// # Panics
    ///
    /// Panics if any field of `earlier` exceeds the corresponding field
    /// of `self` (i.e. `earlier` is not an earlier snapshot).
    #[must_use]
    pub fn delta_since(&self, earlier: &HardwareCounters) -> HardwareCounters {
        let sub = |now: u64, then: u64, what: &str| {
            now.checked_sub(then)
                .unwrap_or_else(|| panic!("`{what}` went backwards: {now} < {then}"))
        };
        HardwareCounters {
            positive_samples: sub(
                self.positive_samples,
                earlier.positive_samples,
                "positive_samples",
            ),
            negative_samples: sub(
                self.negative_samples,
                earlier.negative_samples,
                "negative_samples",
            ),
            phase_points: sub(self.phase_points, earlier.phase_points, "phase_points"),
            weight_update_events: sub(
                self.weight_update_events,
                earlier.weight_update_events,
                "weight_update_events",
            ),
            host_words_transferred: sub(
                self.host_words_transferred,
                earlier.host_words_transferred,
                "host_words_transferred",
            ),
            host_mac_ops: sub(self.host_mac_ops, earlier.host_mac_ops, "host_mac_ops"),
            packed_kernel_calls: sub(
                self.packed_kernel_calls,
                earlier.packed_kernel_calls,
                "packed_kernel_calls",
            ),
            dense_kernel_calls: sub(
                self.dense_kernel_calls,
                earlier.dense_kernel_calls,
                "dense_kernel_calls",
            ),
            simd_kernel_calls: sub(
                self.simd_kernel_calls,
                earlier.simd_kernel_calls,
                "simd_kernel_calls",
            ),
            substrate_faults: sub(
                self.substrate_faults,
                earlier.substrate_faults,
                "substrate_faults",
            ),
            corrupted_programmings: sub(
                self.corrupted_programmings,
                earlier.corrupted_programmings,
                "corrupted_programmings",
            ),
            corrupted_reads: sub(
                self.corrupted_reads,
                earlier.corrupted_reads,
                "corrupted_reads",
            ),
            recovery_retries: sub(
                self.recovery_retries,
                earlier.recovery_retries,
                "recovery_retries",
            ),
        }
    }

    /// Merges another counter set into this one (used when sharding
    /// training across machines in sweeps).
    pub fn merge(&mut self, other: &HardwareCounters) {
        self.positive_samples += other.positive_samples;
        self.negative_samples += other.negative_samples;
        self.phase_points += other.phase_points;
        self.weight_update_events += other.weight_update_events;
        self.host_words_transferred += other.host_words_transferred;
        self.host_mac_ops += other.host_mac_ops;
        self.packed_kernel_calls += other.packed_kernel_calls;
        self.dense_kernel_calls += other.dense_kernel_calls;
        self.simd_kernel_calls += other.simd_kernel_calls;
        self.substrate_faults += other.substrate_faults;
        self.corrupted_programmings += other.corrupted_programmings;
        self.corrupted_reads += other.corrupted_reads;
        self.recovery_retries += other.recovery_retries;
    }

    /// Total injected/observed fault events of any kind — the one-number
    /// "did anything go wrong on this substrate" check.
    pub fn total_fault_events(&self) -> u64 {
        self.substrate_faults + self.corrupted_programmings + self.corrupted_reads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = HardwareCounters {
            positive_samples: 1,
            negative_samples: 2,
            phase_points: 3,
            weight_update_events: 4,
            host_words_transferred: 5,
            host_mac_ops: 6,
            packed_kernel_calls: 7,
            dense_kernel_calls: 8,
            simd_kernel_calls: 13,
            substrate_faults: 9,
            corrupted_programmings: 10,
            corrupted_reads: 11,
            recovery_retries: 12,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.positive_samples, 2);
        assert_eq!(a.host_mac_ops, 12);
        assert_eq!(a.packed_kernel_calls, 14);
        assert_eq!(a.dense_kernel_calls, 16);
        assert_eq!(a.simd_kernel_calls, 26);
        assert_eq!(a.substrate_faults, 18);
        assert_eq!(a.corrupted_programmings, 20);
        assert_eq!(a.corrupted_reads, 22);
        assert_eq!(a.recovery_retries, 24);
        assert_eq!(a.total_fault_events(), 18 + 20 + 22);
    }

    #[test]
    fn delta_since_inverts_merge() {
        let earlier = HardwareCounters {
            positive_samples: 1,
            negative_samples: 2,
            phase_points: 3,
            weight_update_events: 4,
            host_words_transferred: 5,
            host_mac_ops: 6,
            packed_kernel_calls: 7,
            dense_kernel_calls: 8,
            simd_kernel_calls: 13,
            substrate_faults: 9,
            corrupted_programmings: 10,
            corrupted_reads: 11,
            recovery_retries: 12,
        };
        let mut now = earlier;
        let delta = HardwareCounters {
            phase_points: 40,
            host_words_transferred: 8,
            packed_kernel_calls: 2,
            simd_kernel_calls: 2,
            substrate_faults: 3,
            recovery_retries: 1,
            ..HardwareCounters::new()
        };
        now.merge(&delta);
        assert_eq!(now.delta_since(&earlier), delta);
        assert_eq!(now.delta_since(&now), HardwareCounters::new());
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    fn delta_since_rejects_non_snapshot() {
        let a = HardwareCounters {
            phase_points: 1,
            ..HardwareCounters::new()
        };
        let _ = HardwareCounters::new().delta_since(&a);
    }

    #[test]
    fn default_is_zero() {
        let c = HardwareCounters::new();
        assert_eq!(c.phase_points, 0);
        assert_eq!(c, HardwareCounters::default());
    }
}
