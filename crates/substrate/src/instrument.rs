use serde::{Deserialize, Serialize};

/// Event counters the performance model (crate `ember-perf`) converts into
/// execution time and energy (§4.2–4.3).
///
/// All counts are cumulative since construction of the owning accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HardwareCounters {
    /// Positive-phase samples taken (one per training vector).
    pub positive_samples: u64,
    /// Negative-phase anneal/sampling passes.
    pub negative_samples: u64,
    /// Substrate phase points traversed (integration/settle steps); ≈12 ps
    /// each on the physical machine.
    pub phase_points: u64,
    /// In-place charge-pump weight-update events (BGF only; each event is
    /// one gated coupler adjustment).
    pub weight_update_events: u64,
    /// Words moved between host and substrate (coupling programming,
    /// sample read-out, data streaming, final ADC read).
    pub host_words_transferred: u64,
    /// Host-side multiply-accumulate operations (GS: gradient accumulation
    /// and weight update; BGF: none during training).
    pub host_mac_ops: u64,
}

impl HardwareCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another counter set into this one (used when sharding
    /// training across machines in sweeps).
    pub fn merge(&mut self, other: &HardwareCounters) {
        self.positive_samples += other.positive_samples;
        self.negative_samples += other.negative_samples;
        self.phase_points += other.phase_points;
        self.weight_update_events += other.weight_update_events;
        self.host_words_transferred += other.host_words_transferred;
        self.host_mac_ops += other.host_mac_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = HardwareCounters {
            positive_samples: 1,
            negative_samples: 2,
            phase_points: 3,
            weight_update_events: 4,
            host_words_transferred: 5,
            host_mac_ops: 6,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.positive_samples, 2);
        assert_eq!(a.host_mac_ops, 12);
    }

    #[test]
    fn default_is_zero() {
        let c = HardwareCounters::new();
        assert_eq!(c.phase_points, 0);
        assert_eq!(c, HardwareCounters::default());
    }
}
