//! Property-based tests of the `EMBS` snapshot format: chain
//! round-trips at word-straddling widths (63/65/127 explicitly, plus
//! arbitrary sizes), typed rejection of corrupted / truncated /
//! trailing-garbage frames, and the no-panic guarantee on arbitrary
//! byte soup.

use std::sync::Arc;

use ember_rbm::Rbm;
use ember_store::format::{self, ModelChainImage, RegistryImage};
use ember_store::StoreError;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn rbm(m: usize, n: usize, seed: u64) -> Arc<Rbm> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Arc::new(Rbm::random(m, n, 0.15, &mut rng))
}

/// A chain whose later versions perturb a sparse subset of the first's
/// weights — the shape real training updates have.
fn chain(m: usize, n: usize, len: usize, seed: u64) -> Vec<(u64, Arc<Rbm>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut chain = vec![(1u64, rbm(m, n, seed))];
    for k in 1..len {
        let mut next = (*chain[k - 1].1).clone();
        let touches = 1 + (m * n) / 10;
        for _ in 0..touches {
            let i = rng.random_range(0..m);
            let j = rng.random_range(0..n);
            next.weights_mut()[[i, j]] += rng.random_range(-0.2..0.2);
        }
        chain.push((1 + k as u64 * 3, Arc::new(next))); // gappy versions
    }
    chain
}

fn image(models: Vec<ModelChainImage>, sequence: u64) -> RegistryImage {
    RegistryImage { sequence, models }
}

fn assert_roundtrip(img: &RegistryImage) {
    let bytes = format::encode_registry(img).expect("valid image encodes");
    let back = format::decode_registry(&bytes).expect("own encoding decodes");
    assert_eq!(back.sequence, img.sequence);
    assert_eq!(back.models.len(), img.models.len());
    for (a, b) in img.models.iter().zip(&back.models) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.chain.len(), b.chain.len());
        for ((va, ra), (vb, rb)) in a.chain.iter().zip(&b.chain) {
            assert_eq!(va, vb);
            assert_eq!(**ra, **rb, "bit-identical parameters");
        }
    }
}

/// The issue's named word-straddling widths, pinned unconditionally.
#[test]
fn roundtrip_at_word_straddling_widths() {
    for &n in &[63usize, 65, 127] {
        let img = image(
            vec![ModelChainImage {
                name: format!("w{n}"),
                chain: chain(3, n, 3, n as u64),
            }],
            n as u64,
        );
        assert_roundtrip(&img);
        // And with the straddling width on the visible side.
        let img = image(
            vec![ModelChainImage {
                name: format!("v{n}"),
                chain: chain(n, 2, 2, 77 + n as u64),
            }],
            n as u64,
        );
        assert_roundtrip(&img);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode is the identity on arbitrary model sets: random
    /// dims, chain lengths, names and sequences, sparse-perturbed
    /// version chains (so both delta and full frames are exercised).
    #[test]
    fn roundtrip_on_arbitrary_images(
        m in 1usize..70,
        n in 1usize..70,
        len in 1usize..5,
        models in 1usize..3,
        sequence in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let models = (0..models)
            .map(|k| ModelChainImage {
                name: format!("model-{k}"),
                chain: chain(m, n, len, seed ^ k as u64),
            })
            .collect();
        assert_roundtrip(&image(models, sequence));
    }

    /// Any single flipped bit anywhere in the frame is a typed error,
    /// never a wrong decode: the file checksum (or, for the rare flip
    /// that lands in the trailing checksum itself, the mismatch it
    /// creates) catches every one.
    #[test]
    fn any_single_bit_flip_is_rejected(
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        let img = image(
            vec![ModelChainImage { name: "m".into(), chain: chain(9, 7, 3, seed) }],
            3,
        );
        let good = format::encode_registry(&img).unwrap();
        let mut bad = good.clone();
        let offset = ((good.len() - 1) as f64 * offset_frac) as usize;
        bad[offset] ^= 1 << bit;
        prop_assert!(format::decode_registry(&bad).is_err());
    }

    /// Every strict prefix is rejected (typed), and any appended
    /// garbage is rejected as `TrailingBytes`.
    #[test]
    fn truncation_and_trailing_garbage_are_typed(
        cut_frac in 0.0f64..1.0,
        tail in proptest::collection::vec(any::<u8>(), 1..40),
        seed in any::<u64>(),
    ) {
        let img = image(
            vec![ModelChainImage { name: "m".into(), chain: chain(6, 5, 2, seed) }],
            9,
        );
        let good = format::encode_registry(&img).unwrap();
        let cut = ((good.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(matches!(
            format::decode_registry(&good[..cut]),
            Err(StoreError::Truncated { .. })
        ));
        let mut long = good.clone();
        long.extend_from_slice(&tail);
        prop_assert!(matches!(
            format::decode_registry(&long),
            Err(StoreError::TrailingBytes { .. })
        ));
    }

    /// Decode never panics and never hangs on arbitrary byte soup —
    /// with or without a plausible magic/version/total_len prefix
    /// grafted on (the adversarial case: headers that pass the cheap
    /// checks but whose section lengths are hostile).
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        soup in proptest::collection::vec(any::<u8>(), 0..600),
        graft in any::<bool>(),
    ) {
        let mut soup = soup;
        if graft && soup.len() >= 24 {
            soup[0..4].copy_from_slice(b"EMBS");
            soup[4..6].copy_from_slice(&1u16.to_le_bytes());
            soup[6..8].copy_from_slice(&0u16.to_le_bytes());
            let len = soup.len() as u64;
            soup[16..24].copy_from_slice(&len.to_le_bytes());
        }
        prop_assert!(format::decode_registry(&soup).is_err());
    }

    /// A frame that passes the *file* checksum but carries a wrong
    /// per-version parameter checksum is still rejected: corrupt the
    /// stored parameter checksum, then reseal the file checksum.
    #[test]
    fn parameter_checksum_is_independently_enforced(
        xor in 1u64..=u64::MAX,
        seed in any::<u64>(),
    ) {
        let img = image(
            vec![ModelChainImage { name: "m".into(), chain: chain(4, 3, 1, seed) }],
            1,
        );
        let mut bytes = format::encode_registry(&img).unwrap();
        // Section layout for one model, one version: header(32) +
        // name_len(2)+1 + dims(8) + chain_len(4) + version(8) + tag(1)
        // + payload_len(4) → params checksum at offset 60.
        let off = 32 + 2 + 1 + 8 + 4 + 8 + 1 + 4;
        let stored = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        bytes[off..off + 8].copy_from_slice(&(stored ^ xor).to_le_bytes());
        let body_len = bytes.len() - 8;
        let reseal = format::fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&reseal.to_le_bytes());
        prop_assert!(matches!(
            format::decode_registry(&bytes),
            Err(StoreError::ChecksumMismatch { ref what, .. }) if what.contains("model `m`")
        ));
    }
}
