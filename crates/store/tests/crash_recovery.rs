//! Crash-recovery acceptance: a seeded [`ChaosDir`] injects torn
//! writes, kill-mid-publish crashes and bit rot into the snapshot
//! store, and restores must (a) land on the last *good* snapshot and
//! (b) serve **bit-identical** samples to the pre-crash service, at 1,
//! 2 and 8 shards.

use std::path::PathBuf;
use std::sync::Arc;

use ember_core::{GsConfig, SubstrateSpec};
use ember_rbm::Rbm;
use ember_serve::{ModelRegistry, SampleRequest, SamplingService};
use ember_store::{
    warm_start, ChaosDir, DiskDir, ReadFault, SnapshotStore, StoreError, WriteFault,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Self-cleaning scratch directory under the OS temp root.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("ember-store-crash-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create scratch dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn rbm(m: usize, n: usize, seed: u64) -> Rbm {
    let mut rng = StdRng::seed_from_u64(seed);
    Rbm::random(m, n, 0.2, &mut rng)
}

/// Fabricates the serving prototype for `name` deterministically, so
/// pre-crash and restored services share one fabricated identity.
fn prototype(rbm: &Rbm) -> Box<dyn ember_substrate::ReplicableSubstrate> {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    SubstrateSpec::software(GsConfig::default()).fabricate(
        rbm.visible_len(),
        rbm.hidden_len(),
        &mut rng,
    )
}

/// A service at `shards` over `registry`, every model provisioned.
fn service_over(registry: ModelRegistry, shards: usize) -> SamplingService {
    let service = SamplingService::builder()
        .shards(shards)
        .registry(registry)
        .build();
    for name in service.registry().names() {
        let snap = service.registry().get(&name).unwrap();
        service
            .provision_model(&name, prototype(&snap.rbm))
            .unwrap();
    }
    service
}

/// Deterministic sample transcript: fixed seeds, fixed shape, the raw
/// sample matrices as the comparison unit.
fn transcript(service: &SamplingService, model: &str) -> Vec<ndarray::Array2<f64>> {
    (0..6u64)
        .map(|seed| {
            service
                .submit(
                    SampleRequest::new(model)
                        .with_samples(4)
                        .with_gibbs_steps(3)
                        .with_seed(0xBEEF ^ seed),
                )
                .unwrap()
                .wait()
                .unwrap()
                .samples
        })
        .collect()
}

/// The acceptance scenario: good snapshot → torn snapshot (short write
/// under the final name, the worst case the format must catch) →
/// restore falls back to the good one and serves identical bytes.
#[test]
fn kill_mid_write_restores_last_good_snapshot_bit_identically() {
    for &shards in &[1usize, 2, 8] {
        let tmp = TempDir::new(&format!("midwrite-{shards}"));
        let chaos = Arc::new(ChaosDir::new(DiskDir::open(&tmp.0).unwrap(), 0x5EED));
        let store = SnapshotStore::new(Arc::clone(&chaos)).unwrap();

        // Live registry: two models, one with history.
        let registry = ModelRegistry::new();
        registry.register("mnist", rbm(33, 17, 1)).unwrap();
        registry.publish("mnist", rbm(33, 17, 2)).unwrap();
        registry.register("aux", rbm(9, 5, 7)).unwrap();
        store.save(&registry).unwrap(); // the last GOOD snapshot

        // Golden transcript at the moment of that snapshot.
        let pre = service_over(registry.clone(), shards);
        let golden_mnist = transcript(&pre, "mnist");
        let golden_aux = transcript(&pre, "aux");

        // A later publish whose snapshot dies mid-write: the torn
        // prefix lands under the FINAL name, exactly what a lying
        // fsync or sector tear would leave.
        registry.publish("mnist", rbm(33, 17, 3)).unwrap();
        chaos.push_write_fault(WriteFault::ShortWrite { keep: 300 });
        assert!(store.save(&registry).is_err(), "injected crash mid-write");
        drop(pre); // the "process" dies here

        // Recovery in a fresh "process": a new store handle over the
        // same directory; warm_start must step over the torn file.
        let store2 = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
        let (restored, report) = warm_start(
            &store2,
            SamplingService::builder().shards(shards),
            |_name, rbm| prototype(rbm),
        )
        .unwrap();
        assert_eq!(report.skipped.len(), 1, "the torn newest file was skipped");
        assert!(
            matches!(report.skipped[0].1, StoreError::Truncated { .. }),
            "a 300-byte prefix dies as Truncated, got {}",
            report.skipped[0].1
        );
        assert_eq!(
            restored.registry().get("mnist").unwrap().version,
            2,
            "restore lands on the last good snapshot, not the doomed v3"
        );

        // Bit-identity at this shard count.
        assert_eq!(
            transcript(&restored, "mnist"),
            golden_mnist,
            "{shards} shard(s)"
        );
        assert_eq!(
            transcript(&restored, "aux"),
            golden_aux,
            "{shards} shard(s)"
        );

        // The rolled-forward lifecycle keeps working after recovery:
        // roll mnist back to v1 and republish durably.
        let v = restored.rollback("mnist", 1).unwrap();
        assert_eq!(v, 3);
        store2.save(restored.registry()).unwrap();
    }
}

/// Kill-before-rename leaves nothing new; kill-after-rename leaves the
/// complete new snapshot even though the writer saw an error.
#[test]
fn crash_around_the_rename_boundary_is_never_torn() {
    let tmp = TempDir::new("rename-boundary");
    let chaos = Arc::new(ChaosDir::new(DiskDir::open(&tmp.0).unwrap(), 1));
    let store = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
    let registry = ModelRegistry::new();
    registry.register("m", rbm(12, 8, 1)).unwrap();
    store.save(&registry).unwrap();

    // Crash BEFORE anything reaches the directory: v2 is lost, v1 loads.
    registry.publish("m", rbm(12, 8, 2)).unwrap();
    chaos.push_write_fault(WriteFault::CrashBeforeWrite);
    assert!(store.save(&registry).is_err());
    let (image, report) = store.load_latest().unwrap();
    assert!(report.skipped.is_empty(), "nothing torn to skip");
    assert_eq!(image.models[0].chain.last().unwrap().0, 1);

    // Crash AFTER the rename: the snapshot is durable despite the
    // error, and recovery serves the newer state.
    chaos.push_write_fault(WriteFault::CrashAfterWrite);
    assert!(store.save(&registry).is_err());
    let (image, _) = store.load_latest().unwrap();
    assert_eq!(image.models[0].chain.last().unwrap().0, 2);
}

/// Bit rot on read: the corrupted newest snapshot is detected by the
/// file checksum and the previous good one is served instead.
#[test]
fn bit_flip_on_read_falls_back_to_previous_snapshot() {
    let tmp = TempDir::new("bitflip");
    let chaos = Arc::new(ChaosDir::new(DiskDir::open(&tmp.0).unwrap(), 2));
    let store = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
    let registry = ModelRegistry::new();
    registry.register("m", rbm(21, 13, 1)).unwrap();
    store.save(&registry).unwrap();
    registry.publish("m", rbm(21, 13, 2)).unwrap();
    store.save(&registry).unwrap();

    // Rot one payload bit of the newest file on its next read.
    chaos.push_read_fault(ReadFault::BitFlip {
        offset: 700,
        bit: 5,
    });
    let (image, report) = store.load_latest().unwrap();
    assert_eq!(report.skipped.len(), 1);
    assert!(
        matches!(report.skipped[0].1, StoreError::ChecksumMismatch { .. }),
        "bit rot dies as a checksum mismatch, got {}",
        report.skipped[0].1
    );
    assert_eq!(image.models[0].chain.last().unwrap().0, 1, "fell back");

    // The same file reads cleanly afterwards (the rot was in transit):
    // the newest snapshot is served again.
    let (image, report) = store.load_latest().unwrap();
    assert!(report.skipped.is_empty());
    assert_eq!(image.models[0].chain.last().unwrap().0, 2);
}

/// A sustained corruption storm (seeded probabilistic flips) never
/// panics and never serves wrong parameters: every load either fails
/// typed or returns a checksum-verified registry.
#[test]
fn corruption_storm_is_typed_errors_or_verified_state_never_garbage() {
    let tmp = TempDir::new("storm");
    let chaos = Arc::new(
        ChaosDir::new(DiskDir::open(&tmp.0).unwrap(), 0xD00F).with_read_flip_probability(0.7),
    );
    let store = SnapshotStore::new(Arc::clone(&chaos)).unwrap();
    let registry = ModelRegistry::new();
    registry.register("m", rbm(15, 11, 3)).unwrap();
    let expected_checksum = {
        let r = registry.get("m").unwrap().rbm;
        ember_core::couplings_checksum(
            &r.weights().view(),
            &r.visible_bias().view(),
            &r.hidden_bias().view(),
        )
    };
    store.save(&registry).unwrap();

    let mut good = 0;
    for _ in 0..40 {
        match store.load_latest() {
            Ok((image, _)) => {
                let r = &image.models[0].chain[0].1;
                assert_eq!(
                    ember_core::couplings_checksum(
                        &r.weights().view(),
                        &r.visible_bias().view(),
                        &r.hidden_bias().view(),
                    ),
                    expected_checksum,
                    "a load that succeeds must be the true parameters"
                );
                good += 1;
            }
            Err(StoreError::NoSnapshot { tried }) => assert_eq!(tried, 1),
            Err(other) => panic!("load_latest leaks non-terminal error {other}"),
        }
    }
    assert!(
        good > 0,
        "a 30% clean-read rate over 40 loads must succeed sometimes"
    );
}
