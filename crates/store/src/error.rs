use std::error::Error;
use std::fmt;

use ember_serve::ServeError;

/// Errors surfaced by the persistence layer.
///
/// The decode-side variants (`BadMagic` … `ChecksumMismatch`) mirror the
/// `ember_http::wire` taxonomy: every way a snapshot file can be wrong
/// is a *typed, recoverable* error — never a panic, never a partial
/// registry — so [`SnapshotStore::load_latest`](crate::SnapshotStore::load_latest)
/// can skip a corrupt file and fall back to the previous good one.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The file does not start with [`STORE_MAGIC`](crate::format::STORE_MAGIC) —
    /// not a snapshot at all (or the header itself was destroyed).
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The file declares a format version newer than this build can
    /// read. Old readers refuse loudly rather than misparse.
    UnsupportedVersion {
        /// The declared format version.
        found: u16,
    },
    /// The file is shorter than its header claims (torn write, short
    /// read, or truncated copy).
    Truncated {
        /// Bytes the frame claims to span.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The file is *longer* than its header claims. Trailing garbage is
    /// rejected rather than ignored — it means some writer appended to
    /// a sealed snapshot.
    TrailingBytes {
        /// Bytes the frame claims to span.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// A checksum over the file body or over one model's decoded
    /// parameters does not match the stored value (bit rot, torn
    /// write that preserved the length, or a buggy writer).
    ChecksumMismatch {
        /// Which checksum failed (`"file"`, or `model `x` v3`).
        what: String,
        /// The checksum stored in the file.
        expected: u64,
        /// The checksum recomputed from the bytes.
        found: u64,
    },
    /// The frame is structurally invalid in a way the other variants
    /// don't name (first chain entry is a delta, section overruns its
    /// declared extent, non-UTF-8 name, …).
    Corrupt(String),
    /// A declared count or dimension exceeds the format's hard caps —
    /// rejected before any allocation is sized from it.
    Oversized(String),
    /// No loadable snapshot exists in the store (empty directory, or
    /// every candidate failed to decode).
    NoSnapshot {
        /// How many candidate files were tried (and failed).
        tried: usize,
    },
    /// Restoring into the registry failed (duplicate model name, chain
    /// validation).
    Serve(ServeError),
    /// The underlying storage failed.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadMagic { found } => {
                write!(f, "bad snapshot magic {found:02x?} (not an EMBS file)")
            }
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "snapshot format version {found} is newer than this reader"
                )
            }
            StoreError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: frame spans {expected} bytes, file has {found}"
                )
            }
            StoreError::TrailingBytes { expected, found } => write!(
                f,
                "snapshot has trailing garbage: frame spans {expected} bytes, file has {found}"
            ),
            StoreError::ChecksumMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch on {what}: stored {expected:#018x}, recomputed {found:#018x}"
            ),
            StoreError::Corrupt(reason) => write!(f, "corrupt snapshot: {reason}"),
            StoreError::Oversized(reason) => write!(f, "snapshot exceeds format caps: {reason}"),
            StoreError::NoSnapshot { tried } => {
                if *tried == 0 {
                    write!(f, "no snapshot present in the store")
                } else {
                    write!(
                        f,
                        "no loadable snapshot: all {tried} candidate(s) failed to decode"
                    )
                }
            }
            StoreError::Serve(e) => write!(f, "restore rejected by registry: {e}"),
            StoreError::Io(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Serve(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ServeError> for StoreError {
    fn from(e: ServeError) -> Self {
        StoreError::Serve(e)
    }
}
