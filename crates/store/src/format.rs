//! The `EMBS` snapshot format: a versioned, checksummed binary image of
//! a whole [`ModelRegistry`](ember_serve::ModelRegistry), including each
//! model's retained version chain.
//!
//! The framing follows the `ember_http::wire` discipline: a
//! magic/version/flags header, little-endian words throughout, explicit
//! length fields validated in `u64` arithmetic *before* any allocation
//! is sized from them, and a typed [`StoreError`] for every way a frame
//! can be wrong. Integrity is layered:
//!
//! * a trailing **file checksum** (FNV-1a over every preceding byte)
//!   catches torn writes, truncation and bit rot wholesale, before any
//!   section is parsed;
//! * a per-version **parameter checksum**
//!   ([`ember_core::couplings_checksum`], the same digest the serving
//!   layer uses to verify substrate programming) is recomputed from the
//!   *decoded* parameters, so even a bug in this codec cannot silently
//!   hand back wrong weights.
//!
//! Version chains are **delta-compressed**: the first entry of each
//! chain is a full dump of the flattened parameters
//! (weights row-major, then visible bias, then hidden bias, one `f64`
//! bit pattern per cell); each later entry XORs against its predecessor
//! and stores only changed cells (runs of unchanged cells collapse to a
//! varint; each changed cell stores only the significant low bytes of
//! the XOR). Identical republishes — the shape every rollback produces —
//! cost a few bytes; sparse training updates cost bytes proportional to
//! the touched cells. The encoder falls back to a full frame whenever
//! the delta would not be smaller, so the format never loses to the
//! naive encoding.
//!
//! ## Layout (all little-endian)
//!
//! ```text
//! header (32 B): magic "EMBS" | version u16 | flags u16 | sequence u64
//!                | total_len u64 | model_count u32 | reserved u32
//! per model:     name_len u16 | name | visible u32 | hidden u32
//!                | chain_len u32
//! per version:   version u64 | tag u8 (0 full, 1 delta)
//!                | payload_len u32 | params_checksum u64 | payload
//! trailer (8 B): FNV-1a over bytes[0 .. total_len - 8]
//! ```

use std::sync::Arc;

use ember_core::couplings_checksum;
use ember_rbm::Rbm;
use ndarray::{Array1, Array2};

use crate::StoreError;

/// Magic number opening every snapshot file: `"EMBS"` as an LE `u32`.
pub const STORE_MAGIC: u32 = u32::from_le_bytes(*b"EMBS");

/// Format version this build writes and the newest it can read.
pub const STORE_VERSION: u16 = 1;

/// Hard cap on models per snapshot.
pub const MAX_MODELS: u32 = 4096;

/// Hard cap on a model name's UTF-8 length.
pub const MAX_NAME: u16 = 1024;

/// Hard cap on retained versions per model chain.
pub const MAX_CHAIN: u32 = 4096;

/// Hard cap on each layer dimension.
pub const MAX_DIM: u32 = 1 << 20;

/// Bytes of the fixed file header.
const HEADER_LEN: usize = 32;

/// Bytes of the trailing file checksum.
const TRAILER_LEN: usize = 8;

/// A decoded (or to-be-encoded) snapshot: the registry's full state at
/// one sequence number.
#[derive(Debug, Clone)]
pub struct RegistryImage {
    /// Monotonic snapshot sequence (assigned by the store; newest wins).
    pub sequence: u64,
    /// One chain per model, sorted by name at encode time.
    pub models: Vec<ModelChainImage>,
}

/// One model's retained version chain (ascending versions, the last
/// entry being the currently-served one).
#[derive(Debug, Clone)]
pub struct ModelChainImage {
    /// Registry name of the model.
    pub name: String,
    /// `(version, parameters)`, ascending, never empty.
    pub chain: Vec<(u64, Arc<Rbm>)>,
}

/// FNV-1a over raw bytes — same constants as
/// [`ember_core::couplings_checksum`], applied to the encoded frame.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The flattened parameter vector: weights row-major, then visible
/// bias, then hidden bias, one `f64` bit pattern per cell. This is the
/// domain the delta codec operates on.
fn flatten(rbm: &Rbm) -> Vec<u64> {
    let mut bits = Vec::with_capacity(
        rbm.visible_len() * rbm.hidden_len() + rbm.visible_len() + rbm.hidden_len(),
    );
    bits.extend(rbm.weights().iter().map(|x| x.to_bits()));
    bits.extend(rbm.visible_bias().iter().map(|x| x.to_bits()));
    bits.extend(rbm.hidden_bias().iter().map(|x| x.to_bits()));
    bits
}

/// Rebuilds an [`Rbm`] from a flattened bit vector. `bits.len()` must
/// equal `m*n + m + n` (the caller validated this).
fn unflatten(bits: &[u64], m: usize, n: usize) -> Result<Rbm, StoreError> {
    debug_assert_eq!(bits.len(), m * n + m + n);
    let weights: Vec<f64> = bits[..m * n].iter().map(|&b| f64::from_bits(b)).collect();
    let vbias: Vec<f64> = bits[m * n..m * n + m]
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();
    let hbias: Vec<f64> = bits[m * n + m..]
        .iter()
        .map(|&b| f64::from_bits(b))
        .collect();
    let weights = Array2::from_shape_vec((m, n), weights)
        .map_err(|e| StoreError::Corrupt(format!("weight shape: {e:?}")))?;
    Rbm::from_parts(weights, Array1::from_vec(vbias), Array1::from_vec(hbias))
        .map_err(|e| StoreError::Corrupt(format!("decoded parameters rejected: {e}")))
}

/// Full-frame payload: every cell's bit pattern, 8 LE bytes each.
fn encode_full(bits: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bits.len() * 8);
    for &b in bits {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

fn decode_full(payload: &[u8], cells: usize) -> Result<Vec<u64>, StoreError> {
    debug_assert_eq!(payload.len(), cells * 8);
    Ok(payload
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

/// LEB128 unsigned varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Delta-frame payload: the XOR of `cur` against `prev`, cell by cell.
/// Opcode `0x00` + varint collapses a run of unchanged cells; opcodes
/// `0x01..=0x08` emit one changed cell as that many significant low LE
/// bytes of the XOR (the top emitted byte is always non-zero, making
/// the encoding canonical).
fn delta_encode(prev: &[u64], cur: &[u64]) -> Vec<u8> {
    debug_assert_eq!(prev.len(), cur.len());
    let mut out = Vec::new();
    let mut run: u64 = 0;
    for (&p, &c) in prev.iter().zip(cur) {
        let x = p ^ c;
        if x == 0 {
            run += 1;
            continue;
        }
        if run > 0 {
            out.push(0x00);
            write_varint(&mut out, run);
            run = 0;
        }
        let width = (64 - x.leading_zeros() as usize).div_ceil(8);
        out.push(width as u8);
        out.extend_from_slice(&x.to_le_bytes()[..width]);
    }
    if run > 0 {
        out.push(0x00);
        write_varint(&mut out, run);
    }
    out
}

/// Applies a delta payload to `prev`, yielding the successor's cells.
fn delta_decode(prev: &[u64], payload: &[u8]) -> Result<Vec<u64>, StoreError> {
    let mut cur = prev.to_vec();
    let mut cell = 0usize;
    let mut pos = 0usize;
    while pos < payload.len() {
        let op = payload[pos];
        pos += 1;
        match op {
            0x00 => {
                // Varint run of unchanged cells.
                let mut run: u64 = 0;
                let mut shift = 0u32;
                loop {
                    let Some(&byte) = payload.get(pos) else {
                        return Err(StoreError::Corrupt("delta varint truncated".into()));
                    };
                    pos += 1;
                    if shift >= 64 || (shift == 63 && byte > 1) {
                        return Err(StoreError::Corrupt("delta varint overflow".into()));
                    }
                    run |= ((byte & 0x7f) as u64) << shift;
                    if byte & 0x80 == 0 {
                        break;
                    }
                    shift += 7;
                }
                if run == 0 {
                    return Err(StoreError::Corrupt("zero-length delta run".into()));
                }
                let run = usize::try_from(run)
                    .map_err(|_| StoreError::Corrupt("delta run exceeds usize".into()))?;
                if cur.len() - cell < run {
                    return Err(StoreError::Corrupt(
                        "delta run overruns the cell count".into(),
                    ));
                }
                cell += run;
            }
            1..=8 => {
                let width = op as usize;
                let Some(bytes) = payload.get(pos..pos + width) else {
                    return Err(StoreError::Corrupt("delta cell truncated".into()));
                };
                pos += width;
                if bytes[width - 1] == 0 {
                    return Err(StoreError::Corrupt("non-canonical delta cell width".into()));
                }
                if cell >= cur.len() {
                    return Err(StoreError::Corrupt(
                        "delta cell overruns the cell count".into(),
                    ));
                }
                let mut le = [0u8; 8];
                le[..width].copy_from_slice(bytes);
                cur[cell] ^= u64::from_le_bytes(le);
                cell += 1;
            }
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown delta opcode {other:#04x}"
                )));
            }
        }
    }
    if cell != cur.len() {
        return Err(StoreError::Corrupt(format!(
            "delta covers {cell} of {} cells",
            cur.len()
        )));
    }
    Ok(cur)
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a registry image with delta-compressed chains.
///
/// # Errors
///
/// [`StoreError::Oversized`] when a count or dimension exceeds the
/// format caps; [`StoreError::Corrupt`] for structurally invalid input
/// (empty chain, non-ascending versions, size drift within a chain).
pub fn encode_registry(image: &RegistryImage) -> Result<Vec<u8>, StoreError> {
    encode_registry_opts(image, true)
}

/// Encodes with every entry as a full frame — the baseline the delta
/// codec is measured against (`bench_pr9` reports the bytes ratio).
///
/// # Errors
///
/// As [`encode_registry`].
pub fn encode_registry_uncompressed(image: &RegistryImage) -> Result<Vec<u8>, StoreError> {
    encode_registry_opts(image, false)
}

fn encode_registry_opts(image: &RegistryImage, delta: bool) -> Result<Vec<u8>, StoreError> {
    if image.models.len() > MAX_MODELS as usize {
        return Err(StoreError::Oversized(format!(
            "{} models exceeds the cap of {MAX_MODELS}",
            image.models.len()
        )));
    }
    let mut out = Vec::new();
    push_u32(&mut out, STORE_MAGIC);
    push_u16(&mut out, STORE_VERSION);
    push_u16(&mut out, 0); // flags
    push_u64(&mut out, image.sequence);
    push_u64(&mut out, 0); // total_len, patched below
    push_u32(&mut out, image.models.len() as u32);
    push_u32(&mut out, 0); // reserved

    for model in &image.models {
        let name = model.name.as_bytes();
        if name.len() > MAX_NAME as usize {
            return Err(StoreError::Oversized(format!(
                "model name of {} bytes exceeds the cap of {MAX_NAME}",
                name.len()
            )));
        }
        let Some((_, first)) = model.chain.first() else {
            return Err(StoreError::Corrupt(format!(
                "model `{}` has an empty chain",
                model.name
            )));
        };
        if model.chain.len() > MAX_CHAIN as usize {
            return Err(StoreError::Oversized(format!(
                "chain of {} versions exceeds the cap of {MAX_CHAIN}",
                model.chain.len()
            )));
        }
        let (m, n) = (first.visible_len(), first.hidden_len());
        if m > MAX_DIM as usize || n > MAX_DIM as usize {
            return Err(StoreError::Oversized(format!(
                "model `{}` is {m}x{n}, cap is {MAX_DIM} per side",
                model.name
            )));
        }
        push_u16(&mut out, name.len() as u16);
        out.extend_from_slice(name);
        push_u32(&mut out, m as u32);
        push_u32(&mut out, n as u32);
        push_u32(&mut out, model.chain.len() as u32);

        let mut prev_version = None;
        let mut prev_bits: Option<Vec<u64>> = None;
        for (version, rbm) in &model.chain {
            if prev_version.is_some_and(|p| *version <= p) {
                return Err(StoreError::Corrupt(format!(
                    "model `{}` chain versions are not ascending",
                    model.name
                )));
            }
            prev_version = Some(*version);
            if rbm.visible_len() != m || rbm.hidden_len() != n {
                return Err(StoreError::Corrupt(format!(
                    "model `{}` changes size within its chain",
                    model.name
                )));
            }
            let bits = flatten(rbm);
            let full = encode_full(&bits);
            let (tag, payload) = match (delta, &prev_bits) {
                (true, Some(prev)) => {
                    let d = delta_encode(prev, &bits);
                    if d.len() < full.len() {
                        (1u8, d)
                    } else {
                        (0u8, full)
                    }
                }
                _ => (0u8, full),
            };
            if payload.len() > u32::MAX as usize {
                return Err(StoreError::Oversized(format!(
                    "model `{}` v{version} payload exceeds u32 bytes",
                    model.name
                )));
            }
            let checksum = couplings_checksum(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            push_u64(&mut out, *version);
            out.push(tag);
            push_u32(&mut out, payload.len() as u32);
            push_u64(&mut out, checksum);
            out.extend_from_slice(&payload);
            prev_bits = Some(bits);
        }
    }

    // Patch total_len (body + trailing checksum), then seal.
    let total_len = (out.len() + TRAILER_LEN) as u64;
    out[16..24].copy_from_slice(&total_len.to_le_bytes());
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    Ok(out)
}

/// A bounds-checked little-endian cursor over the frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Truncated {
                expected: (self.pos as u64).saturating_add(n as u64),
                found: self.buf.len() as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
}

/// Decodes a snapshot file, validating framing, both checksum layers,
/// and every structural invariant. Never panics on hostile input; every
/// failure is a typed [`StoreError`]. Allocations are sized only from
/// lengths already proven to fit inside `bytes`.
///
/// # Errors
///
/// Every [`StoreError`] decode variant, as documented on the type.
pub fn decode_registry(bytes: &[u8]) -> Result<RegistryImage, StoreError> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(StoreError::Truncated {
            expected: (HEADER_LEN + TRAILER_LEN) as u64,
            found: bytes.len() as u64,
        });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != STORE_MAGIC {
        return Err(StoreError::BadMagic {
            found: bytes[0..4].try_into().expect("4 bytes"),
        });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version == 0 || version > STORE_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if flags != 0 {
        return Err(StoreError::Corrupt(format!("unknown flags {flags:#06x}")));
    }
    let sequence = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let total_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    if total_len < (HEADER_LEN + TRAILER_LEN) as u64 {
        return Err(StoreError::Corrupt(format!(
            "declared total length {total_len} is smaller than the fixed framing"
        )));
    }
    if (bytes.len() as u64) < total_len {
        return Err(StoreError::Truncated {
            expected: total_len,
            found: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > total_len {
        return Err(StoreError::TrailingBytes {
            expected: total_len,
            found: bytes.len() as u64,
        });
    }
    // Whole-file integrity before any section parsing: a checksummed
    // frame cannot smuggle hostile section lengths past this point.
    let body = &bytes[..bytes.len() - TRAILER_LEN];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - TRAILER_LEN..]
            .try_into()
            .expect("8 bytes"),
    );
    let computed = fnv1a(body);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch {
            what: "file".into(),
            expected: stored,
            found: computed,
        });
    }
    let model_count = u32::from_le_bytes(bytes[24..28].try_into().expect("4 bytes"));
    if model_count > MAX_MODELS {
        return Err(StoreError::Oversized(format!(
            "{model_count} models exceeds the cap of {MAX_MODELS}"
        )));
    }
    let reserved = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    if reserved != 0 {
        return Err(StoreError::Corrupt(format!(
            "non-zero reserved header word {reserved:#010x}"
        )));
    }

    let mut r = Reader {
        buf: body,
        pos: HEADER_LEN,
    };
    let mut models = Vec::new();
    for _ in 0..model_count {
        let name_len = r.u16()?;
        if name_len > MAX_NAME {
            return Err(StoreError::Oversized(format!(
                "model name of {name_len} bytes exceeds the cap of {MAX_NAME}"
            )));
        }
        let name = std::str::from_utf8(r.take(name_len as usize)?)
            .map_err(|_| StoreError::Corrupt("model name is not UTF-8".into()))?
            .to_string();
        let m = r.u32()?;
        let n = r.u32()?;
        if m > MAX_DIM || n > MAX_DIM {
            return Err(StoreError::Oversized(format!(
                "model `{name}` is {m}x{n}, cap is {MAX_DIM} per side"
            )));
        }
        if m == 0 || n == 0 {
            return Err(StoreError::Corrupt(format!(
                "model `{name}` has empty dimensions"
            )));
        }
        let chain_len = r.u32()?;
        if chain_len == 0 {
            return Err(StoreError::Corrupt(format!(
                "model `{name}` has an empty chain"
            )));
        }
        if chain_len > MAX_CHAIN {
            return Err(StoreError::Oversized(format!(
                "chain of {chain_len} versions exceeds the cap of {MAX_CHAIN}"
            )));
        }
        let cells = (m as u64) * (n as u64) + (m as u64) + (n as u64);
        let full_len = cells
            .checked_mul(8)
            .ok_or_else(|| StoreError::Oversized(format!("model `{name}` cell count overflows")))?;

        let mut chain: Vec<(u64, Arc<Rbm>)> = Vec::new();
        let mut prev_version: Option<u64> = None;
        let mut prev_bits: Option<Vec<u64>> = None;
        for _ in 0..chain_len {
            let version = r.u64()?;
            if prev_version.is_some_and(|p| version <= p) {
                return Err(StoreError::Corrupt(format!(
                    "model `{name}` chain versions are not ascending"
                )));
            }
            prev_version = Some(version);
            let tag = r.u8()?;
            let payload_len = r.u32()? as usize;
            let stored_checksum = r.u64()?;
            // The payload is proven to exist in the buffer before any
            // cell vector is allocated from its size.
            let payload = r.take(payload_len)?;
            let bits = match tag {
                0 => {
                    if payload_len as u64 != full_len {
                        return Err(StoreError::Corrupt(format!(
                            "model `{name}` v{version} full frame is {payload_len} bytes, \
                             dimensions require {full_len}"
                        )));
                    }
                    decode_full(payload, cells as usize)?
                }
                1 => {
                    let Some(prev) = &prev_bits else {
                        return Err(StoreError::Corrupt(format!(
                            "model `{name}` chain opens with a delta frame"
                        )));
                    };
                    delta_decode(prev, payload)?
                }
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown frame tag {other:#04x} in model `{name}`"
                    )));
                }
            };
            let rbm = unflatten(&bits, m as usize, n as usize)?;
            let computed = couplings_checksum(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            if computed != stored_checksum {
                return Err(StoreError::ChecksumMismatch {
                    what: format!("model `{name}` v{version}"),
                    expected: stored_checksum,
                    found: computed,
                });
            }
            prev_bits = Some(bits);
            chain.push((version, Arc::new(rbm)));
        }
        models.push(ModelChainImage { name, chain });
    }
    if r.pos != body.len() {
        return Err(StoreError::Corrupt(format!(
            "sections end at byte {} but the frame body spans {}",
            r.pos,
            body.len()
        )));
    }
    Ok(RegistryImage { sequence, models })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rbm(m: usize, n: usize, seed: u64) -> Arc<Rbm> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Arc::new(Rbm::random(m, n, 0.1, &mut rng))
    }

    fn image(models: Vec<ModelChainImage>) -> RegistryImage {
        RegistryImage {
            sequence: 7,
            models,
        }
    }

    #[test]
    fn round_trips_a_multi_model_multi_version_image() {
        let img = image(vec![
            ModelChainImage {
                name: "alpha".into(),
                chain: vec![(1, rbm(5, 3, 1)), (3, rbm(5, 3, 2)), (9, rbm(5, 3, 3))],
            },
            ModelChainImage {
                name: "beta".into(),
                chain: vec![(42, rbm(2, 7, 4))],
            },
        ]);
        let bytes = encode_registry(&img).unwrap();
        let back = decode_registry(&bytes).unwrap();
        assert_eq!(back.sequence, 7);
        assert_eq!(back.models.len(), 2);
        for (a, b) in img.models.iter().zip(&back.models) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.chain.len(), b.chain.len());
            for ((va, ra), (vb, rb)) in a.chain.iter().zip(&b.chain) {
                assert_eq!(va, vb);
                assert_eq!(**ra, **rb, "parameters must round-trip bit-identically");
            }
        }
    }

    #[test]
    fn identical_republish_deltas_are_tiny() {
        let base = rbm(50, 40, 1);
        let img = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, Arc::clone(&base)), (2, Arc::clone(&base)), (3, base)],
        }]);
        let delta = encode_registry(&img).unwrap();
        let full = encode_registry_uncompressed(&img).unwrap();
        // Two of the three versions collapse to a run op each.
        assert!(
            delta.len() < full.len() / 2,
            "delta {} vs full {}",
            delta.len(),
            full.len()
        );
        let back = decode_registry(&delta).unwrap();
        assert_eq!(*back.models[0].chain[2].1, *back.models[0].chain[0].1);
    }

    #[test]
    fn sparse_updates_compress_and_dense_updates_fall_back() {
        // Sparse: one changed weight out of 50x40.
        let v1 = rbm(50, 40, 1);
        let mut v2 = (*v1).clone();
        v2.weights_mut()[[10, 10]] += 0.25;
        let sparse = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, Arc::clone(&v1)), (2, Arc::new(v2))],
        }]);
        let delta = encode_registry(&sparse).unwrap();
        let full = encode_registry_uncompressed(&sparse).unwrap();
        assert!(delta.len() < full.len() * 6 / 10);
        assert_eq!(decode_registry(&delta).unwrap().models[0].chain.len(), 2);

        // Dense: an unrelated re-randomization. Even here the delta
        // often edges out full frames (nearby magnitudes share exponent
        // bytes), but it must never LOSE to them.
        let dense = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, rbm(20, 20, 1)), (2, rbm(20, 20, 2))],
        }]);
        let d = encode_registry(&dense).unwrap();
        let f = encode_registry_uncompressed(&dense).unwrap();
        assert!(d.len() <= f.len());

        // Adversarial: a global sign flip changes exactly the top bit
        // of every cell — each delta cell would cost 9 bytes against 8
        // full, so the encoder must fall back to a full frame.
        let v1 = rbm(20, 20, 1);
        let mut v2 = (*v1).clone();
        v2.weights_mut().mapv_inplace(|x| -x);
        v2.visible_bias_mut().mapv_inplace(|x| -x);
        v2.hidden_bias_mut().mapv_inplace(|x| -x);
        let flipped = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, v1), (2, Arc::new(v2))],
        }]);
        let d = encode_registry(&flipped).unwrap();
        let f = encode_registry_uncompressed(&flipped).unwrap();
        assert_eq!(d.len(), f.len(), "sign-flip delta must fall back to full");
        assert_eq!(decode_registry(&d).unwrap().models[0].chain.len(), 2);
    }

    #[test]
    fn header_level_rejections_are_typed() {
        let img = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, rbm(3, 2, 1))],
        }]);
        let good = encode_registry(&img).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0..4].copy_from_slice(b"NOPE");
        assert!(matches!(
            decode_registry(&bad),
            Err(StoreError::BadMagic {
                found: [b'N', b'O', b'P', b'E']
            })
        ));

        // Future version (header checksum is not consulted first —
        // an old reader must refuse before trusting anything else).
        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&(STORE_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_registry(&bad),
            Err(StoreError::UnsupportedVersion { found }) if found == STORE_VERSION + 1
        ));

        // Truncation at every boundary class.
        assert!(matches!(
            decode_registry(&good[..10]),
            Err(StoreError::Truncated { .. })
        ));
        assert!(matches!(
            decode_registry(&good[..good.len() - 1]),
            Err(StoreError::Truncated { .. })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0xAB);
        assert!(matches!(
            decode_registry(&bad),
            Err(StoreError::TrailingBytes { .. })
        ));

        // A flipped body bit fails the file checksum.
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(matches!(
            decode_registry(&bad),
            Err(StoreError::ChecksumMismatch { ref what, .. }) if what == "file"
        ));
    }

    #[test]
    fn encoder_validates_structure() {
        // Empty chain.
        let img = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![],
        }]);
        assert!(matches!(encode_registry(&img), Err(StoreError::Corrupt(_))));
        // Non-ascending versions.
        let img = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(5, rbm(3, 2, 1)), (2, rbm(3, 2, 2))],
        }]);
        assert!(matches!(encode_registry(&img), Err(StoreError::Corrupt(_))));
        // Size drift within a chain.
        let img = image(vec![ModelChainImage {
            name: "m".into(),
            chain: vec![(1, rbm(3, 2, 1)), (2, rbm(4, 2, 2))],
        }]);
        assert!(matches!(encode_registry(&img), Err(StoreError::Corrupt(_))));
        // Oversized name.
        let img = image(vec![ModelChainImage {
            name: "x".repeat(MAX_NAME as usize + 1),
            chain: vec![(1, rbm(3, 2, 1))],
        }]);
        assert!(matches!(
            encode_registry(&img),
            Err(StoreError::Oversized(_))
        ));
    }

    #[test]
    fn delta_codec_round_trips_and_rejects_malformed_payloads() {
        let prev: Vec<u64> = (0..100).map(|i| (i as f64 * 0.37).to_bits()).collect();
        let mut cur = prev.clone();
        cur[0] ^= 0xff; // low-byte change
        cur[50] = (1e300f64).to_bits(); // wide change
        cur[99] ^= 0xff00_0000_0000_0000; // top-byte change
        let payload = delta_encode(&prev, &cur);
        assert_eq!(delta_decode(&prev, &payload).unwrap(), cur);

        // Unknown opcode.
        assert!(delta_decode(&prev, &[0x09]).is_err());
        // Zero-length run.
        assert!(delta_decode(&prev, &[0x00, 0x00]).is_err());
        // Run overrunning the cell count.
        let mut p = vec![0x00];
        write_varint(&mut p, 101);
        assert!(delta_decode(&prev, &p).is_err());
        // Truncated cell bytes.
        assert!(delta_decode(&prev, &[0x04, 0x01]).is_err());
        // Non-canonical width (top emitted byte zero).
        assert!(delta_decode(&prev, &[0x02, 0x05, 0x00]).is_err());
        // Under-coverage: payload ends before all cells are accounted.
        let mut p = vec![0x00];
        write_varint(&mut p, 99);
        assert!(delta_decode(&prev, &p).is_err());
    }
}
