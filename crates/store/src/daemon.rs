//! [`SnapshotDaemon`]: background persistence for a live registry —
//! on-publish and periodic snapshots with bounded retention.

use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use ember_serve::ModelRegistry;

use crate::{SaveReport, SnapshotStore, StoreError};

/// When the daemon writes snapshots.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Upper bound between snapshots while dirty (`None` = only
    /// on-publish / manual triggers). The daemon never writes when
    /// nothing changed, so this bounds *data loss*, not disk traffic.
    pub interval: Option<Duration>,
    /// Snapshot **promptly** after every successful publication. When
    /// disabled, publications still mark the daemon dirty, but only the
    /// periodic interval (or a manual trigger) writes.
    pub on_publish: bool,
    /// Snapshots retained in the store after each write (older ones are
    /// pruned). The fallback walk in
    /// [`SnapshotStore::load_latest`] needs at least 2 to survive a
    /// torn newest file.
    pub keep_last: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            interval: None,
            on_publish: true,
            keep_last: 4,
        }
    }
}

impl DaemonConfig {
    /// Replaces the periodic bound.
    #[must_use]
    pub fn with_interval(mut self, interval: Option<Duration>) -> Self {
        self.interval = interval;
        self
    }

    /// Enables/disables snapshot-on-publish.
    #[must_use]
    pub fn with_on_publish(mut self, on_publish: bool) -> Self {
        self.on_publish = on_publish;
        self
    }

    /// Replaces the retention bound (clamped to at least 1).
    #[must_use]
    pub fn with_keep_last(mut self, keep_last: usize) -> Self {
        self.keep_last = keep_last.max(1);
        self
    }
}

/// Running totals of the daemon's work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Snapshots successfully written.
    pub snapshots: u64,
    /// Sequence of the newest successful snapshot.
    pub last_sequence: Option<u64>,
    /// Saves that failed (the registry stays dirty; the next trigger
    /// retries).
    pub failures: u64,
    /// Display of the most recent failure, if any.
    pub last_error: Option<String>,
}

struct State {
    dirty: bool,
    closing: bool,
    stats: DaemonStats,
}

struct Shared {
    store: SnapshotStore,
    registry: ModelRegistry,
    config: DaemonConfig,
    state: Mutex<State>,
    cv: Condvar,
}

impl Shared {
    /// Seals a snapshot, prunes retention, updates stats. The dirty
    /// flag is cleared *before* exporting, so a publish racing the
    /// export re-marks and gets a follow-up snapshot rather than being
    /// silently skipped.
    fn snapshot(&self) -> Result<SaveReport, StoreError> {
        self.state.lock().expect("daemon lock").dirty = false;
        let outcome = self.store.save(&self.registry);
        let mut st = self.state.lock().expect("daemon lock");
        match &outcome {
            Ok(report) => {
                st.stats.snapshots += 1;
                st.stats.last_sequence = Some(report.sequence);
            }
            Err(e) => {
                st.dirty = true; // retry on the next trigger
                st.stats.failures += 1;
                st.stats.last_error = Some(e.to_string());
            }
        }
        drop(st);
        if outcome.is_ok() {
            // Retention pruning is best-effort: a failed delete must
            // not fail the snapshot that already landed.
            let _ = self.store.prune(self.config.keep_last);
        }
        outcome
    }
}

/// A background thread that keeps a [`SnapshotStore`] in sync with a
/// live [`ModelRegistry`].
///
/// [`SnapshotDaemon::start`] installs a publish hook on the registry
/// (holding only a [`Weak`] reference back, so the registry owning the
/// hook keeps no cycle alive) and spawns a writer thread. Publications
/// mark the daemon dirty and wake it; the thread coalesces bursts —
/// publishes that land while a snapshot is being written fold into one
/// follow-up snapshot instead of queueing one file each.
///
/// Dropping the daemon uninstalls the hook, takes a final snapshot if
/// dirty (so the freshest versions survive an orderly shutdown), and
/// joins the thread.
pub struct SnapshotDaemon {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for SnapshotDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotDaemon")
            .field("config", &self.shared.config)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SnapshotDaemon {
    /// Starts the daemon over `store`, observing `registry`.
    ///
    /// An initial baseline snapshot is scheduled immediately if the
    /// registry already holds models, so even a service that never
    /// publishes again is durable from boot.
    pub fn start(store: SnapshotStore, registry: ModelRegistry, config: DaemonConfig) -> Self {
        let shared = Arc::new(Shared {
            store,
            registry: registry.clone(),
            config,
            state: Mutex::new(State {
                dirty: !registry.is_empty(),
                closing: false,
                stats: DaemonStats::default(),
            }),
            cv: Condvar::new(),
        });
        // The hook always tracks dirtiness; `on_publish` only decides
        // whether a publication wakes the writer immediately or waits
        // for the periodic interval (or a manual trigger) to notice.
        {
            let weak: Weak<Shared> = Arc::downgrade(&shared);
            let wake = shared.config.on_publish;
            registry.set_publish_hook(Some(Box::new(move |_name, _version| {
                if let Some(shared) = weak.upgrade() {
                    shared.state.lock().expect("daemon lock").dirty = true;
                    if wake {
                        shared.cv.notify_all();
                    }
                }
            })));
        }
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ember-snapshotd".into())
                .spawn(move || run(&shared))
                .expect("spawn snapshot daemon")
        };
        SnapshotDaemon {
            shared,
            thread: Some(thread),
        }
    }

    /// Seals a snapshot right now, on the caller's thread (the HTTP
    /// admin trigger). Runs even when the registry is clean — an
    /// operator asking for a snapshot gets one.
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::save`].
    pub fn snapshot_now(&self) -> Result<SaveReport, StoreError> {
        self.shared.snapshot()
    }

    /// The store this daemon writes to.
    pub fn store(&self) -> &SnapshotStore {
        &self.shared.store
    }

    /// Running totals.
    pub fn stats(&self) -> DaemonStats {
        self.shared.state.lock().expect("daemon lock").stats.clone()
    }
}

fn run(shared: &Shared) {
    let mut st = shared.state.lock().expect("daemon lock");
    loop {
        if st.closing {
            return;
        }
        if st.dirty {
            drop(st);
            let _ = shared.snapshot(); // failure recorded in stats, flag re-set
            st = shared.state.lock().expect("daemon lock");
            continue;
        }
        st = match shared.config.interval {
            Some(interval) => shared.cv.wait_timeout(st, interval).expect("daemon lock").0,
            None => shared.cv.wait(st).expect("daemon lock"),
        };
    }
}

impl Drop for SnapshotDaemon {
    fn drop(&mut self) {
        self.shared.registry.set_publish_hook(None);
        {
            let mut st = self.shared.state.lock().expect("daemon lock");
            st.closing = true;
        }
        self.shared.cv.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        // Final flush: anything published after the last write survives
        // an orderly shutdown.
        if self.shared.state.lock().expect("daemon lock").dirty {
            let _ = self.shared.snapshot();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDir;
    use ember_rbm::Rbm;
    use rand::SeedableRng;
    use std::time::Instant;

    fn rbm(seed: u64) -> Rbm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Rbm::random(3, 2, 0.1, &mut rng)
    }

    fn wait_until(deadline_ms: u64, mut ok: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(deadline_ms) {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        ok()
    }

    #[test]
    fn publishes_trigger_snapshots_and_drop_flushes() {
        let store = SnapshotStore::new(MemDir::new()).unwrap();
        let registry = ModelRegistry::new();
        let daemon = SnapshotDaemon::start(
            store.clone(),
            registry.clone(),
            DaemonConfig::default().with_keep_last(2),
        );
        registry.register("m", rbm(1)).unwrap();
        assert!(
            wait_until(2000, || daemon.stats().snapshots >= 1),
            "on-publish snapshot never landed"
        );
        registry.publish("m", rbm(2)).unwrap();
        drop(daemon); // uninstalls hook, flushes if dirty, joins
        let (restored, _) = store.restore_latest().unwrap();
        assert_eq!(restored.get("m").unwrap().version, 2, "drop must flush v2");
        // Hook is gone: further publishes don't panic or snapshot.
        registry.publish("m", rbm(3)).unwrap();
    }

    #[test]
    fn manual_snapshot_works_without_on_publish() {
        let store = SnapshotStore::new(MemDir::new()).unwrap();
        let registry = ModelRegistry::new();
        registry.register("m", rbm(1)).unwrap();
        let daemon = SnapshotDaemon::start(
            store.clone(),
            registry.clone(),
            DaemonConfig::default()
                .with_on_publish(false)
                .with_keep_last(1),
        );
        // The baseline write (registry non-empty at start) may land; a
        // manual trigger must always produce a fresh sequence.
        let report = daemon.snapshot_now().unwrap();
        assert!(report.sequence >= 1);
        assert_eq!(report.models, 1);
        assert!(
            wait_until(2000, || store.snapshots().unwrap().len() == 1),
            "keep_last=1 retention must prune"
        );
    }

    #[test]
    fn periodic_interval_bounds_staleness() {
        let store = SnapshotStore::new(MemDir::new()).unwrap();
        let registry = ModelRegistry::new();
        let daemon = SnapshotDaemon::start(
            store.clone(),
            registry.clone(),
            DaemonConfig::default()
                .with_on_publish(false)
                .with_interval(Some(Duration::from_millis(10))),
        );
        registry.register("m", rbm(1)).unwrap();
        assert!(
            wait_until(2000, || daemon.stats().snapshots >= 1),
            "periodic snapshot never landed"
        );
        // Clean registry: the daemon idles instead of rewriting.
        let count = daemon.stats().snapshots;
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(daemon.stats().snapshots, count, "no-change writes");
    }
}
