//! Storage backends: where sealed snapshot frames live.
//!
//! [`Storage`] is a tiny blob-store seam — `put` must be **atomic**
//! (readers see the old bytes or the new bytes, never a mix) — with
//! three implementations:
//!
//! * [`DiskDir`] — one file per snapshot under a directory, published
//!   via temp-file + `fsync` + `rename` (the classic crash-safe
//!   sequence: a kill at any instant leaves either the old file or the
//!   complete new one);
//! * [`MemDir`] — an in-memory map for tests and ephemeral use;
//! * [`ChaosDir`] — a fault-injecting decorator in the spirit of the
//!   serving layer's chaos substrate: scripted short writes,
//!   kill-mid-publish crashes, and seeded bit-flips on read, so the
//!   corruption-detection and fallback paths are *tested*, not assumed.

use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named-blob store with atomic publication.
///
/// Implementations must make `put` all-or-nothing at the granularity a
/// concurrent/ crash-interrupted reader can observe; `list` returns the
/// names of fully-published blobs, sorted ascending.
pub trait Storage: Send + Sync {
    /// Atomically publishes `bytes` under `name` (replacing any
    /// previous blob of that name).
    ///
    /// # Errors
    ///
    /// Propagates the backend's I/O failure; on error the previous blob
    /// (if any) must still be intact — unless the backend is a chaos
    /// decorator deliberately modeling storage that breaks this
    /// contract.
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Reads the blob named `name` in full.
    ///
    /// # Errors
    ///
    /// `NotFound` if absent; otherwise the backend's I/O failure.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Names of published blobs, sorted ascending.
    ///
    /// # Errors
    ///
    /// The backend's I/O failure.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Removes the blob named `name` (absent is not an error).
    ///
    /// # Errors
    ///
    /// The backend's I/O failure.
    fn delete(&self, name: &str) -> io::Result<()>;
}

/// Prefix of in-flight temporary files; [`DiskDir::list`] hides them so
/// a crash mid-write can never surface a torn blob as a candidate.
const TMP_PREFIX: &str = ".tmp-";

/// A directory of blobs with crash-safe publication.
///
/// `put` writes to a `.tmp-`-prefixed sibling, `fsync`s it, then
/// `rename`s over the final name and (best-effort) `fsync`s the
/// directory — so after a crash the directory holds either the old
/// blob, the new blob, or a leftover temp file that `list` ignores.
#[derive(Debug, Clone)]
pub struct DiskDir {
    root: PathBuf,
}

impl DiskDir {
    /// Opens (creating if needed) the directory at `root`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failure.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DiskDir { root })
    }

    /// The directory blobs live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Flushes the directory entry itself so the rename is durable —
    /// best-effort: not all filesystems support opening a directory for
    /// sync, and losing the *rename* (not the data) to a crash still
    /// leaves a consistent store.
    fn sync_dir(&self) {
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl Storage for DiskDir {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.root.join(format!("{TMP_PREFIX}{name}"));
        let target = self.root.join(name);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            // Data must be on the platter before the rename can make it
            // visible, else a crash could publish a hole.
            f.sync_all()?;
        }
        fs::rename(&tmp, &target)?;
        self.sync_dir();
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.root.join(name))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                if !name.starts_with(TMP_PREFIX) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.root.join(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// An in-memory blob store (handle-cloneable; clones share state).
#[derive(Debug, Clone, Default)]
pub struct MemDir {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemDir {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemDir {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("memdir lock")
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("memdir lock")
            .get(name)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob `{name}`")))
    }

    fn list(&self) -> io::Result<Vec<String>> {
        Ok(self
            .files
            .lock()
            .expect("memdir lock")
            .keys()
            .cloned()
            .collect())
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.files.lock().expect("memdir lock").remove(name);
        Ok(())
    }
}

/// One injected write fault, consumed by the next [`Storage::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The process "dies" before anything reaches storage: `put` fails,
    /// nothing is written. Models a kill before the temp file.
    CrashBeforeWrite,
    /// Only the first `keep` bytes land **under the final name** — a
    /// torn blob is visible to readers. Models storage that broke the
    /// atomic-publish contract (lying fsync, sector tearing), precisely
    /// the case the format's checksums exist to catch.
    ShortWrite {
        /// Bytes of the frame that survive.
        keep: usize,
    },
    /// The blob lands completely but `put` still reports failure —
    /// a kill between the rename and the caller observing success.
    CrashAfterWrite,
}

/// One injected read fault, consumed by the next [`Storage::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// Flip bit `bit & 7` of the byte at `offset % len` of the blob —
    /// deterministic bit rot.
    BitFlip {
        /// Byte offset (wrapped into the blob's length).
        offset: usize,
        /// Which bit of that byte to flip.
        bit: u8,
    },
}

/// A fault-injecting decorator over any [`Storage`] — the persistence
/// analogue of the serving layer's chaos substrate.
///
/// Faults come from two sources, both deterministic:
///
/// * **scripted queues** ([`ChaosDir::push_write_fault`],
///   [`ChaosDir::push_read_fault`]) — one fault per operation, consumed
///   FIFO; an empty queue means a clean operation. This is how tests
///   stage "the 3rd snapshot write tears".
/// * a **seeded read-flip rate**
///   ([`ChaosDir::with_read_flip_probability`]) — every clean `get`
///   flips one random bit with probability `p`, driven by the seeded
///   RNG, for soak-style corruption storms.
pub struct ChaosDir<S> {
    inner: S,
    rng: Mutex<StdRng>,
    write_faults: Mutex<VecDeque<WriteFault>>,
    read_faults: Mutex<VecDeque<ReadFault>>,
    flip_probability: f64,
}

impl<S: std::fmt::Debug> std::fmt::Debug for ChaosDir<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosDir")
            .field("inner", &self.inner)
            .field("flip_probability", &self.flip_probability)
            .finish()
    }
}

impl<S: Storage> ChaosDir<S> {
    /// Wraps `inner`; `seed` drives the probabilistic read flips.
    pub fn new(inner: S, seed: u64) -> Self {
        ChaosDir {
            inner,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            write_faults: Mutex::new(VecDeque::new()),
            read_faults: Mutex::new(VecDeque::new()),
            flip_probability: 0.0,
        }
    }

    /// Sets the per-`get` probability of one random flipped bit.
    #[must_use]
    pub fn with_read_flip_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.flip_probability = p;
        self
    }

    /// Queues a fault for an upcoming `put` (FIFO, one per call).
    pub fn push_write_fault(&self, fault: WriteFault) {
        self.write_faults
            .lock()
            .expect("chaos lock")
            .push_back(fault);
    }

    /// Queues a fault for an upcoming `get` (FIFO, one per call).
    pub fn push_read_fault(&self, fault: ReadFault) {
        self.read_faults
            .lock()
            .expect("chaos lock")
            .push_back(fault);
    }

    /// The wrapped backend (e.g. to inspect the directory in tests).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn injected(kind: &str) -> io::Error {
        io::Error::other(format!("injected fault: {kind}"))
    }
}

impl<S: Storage> Storage for ChaosDir<S> {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let fault = self.write_faults.lock().expect("chaos lock").pop_front();
        match fault {
            None => self.inner.put(name, bytes),
            Some(WriteFault::CrashBeforeWrite) => Err(Self::injected("crash before write")),
            Some(WriteFault::ShortWrite { keep }) => {
                let keep = keep.min(bytes.len());
                // The torn prefix lands under the FINAL name: readers
                // will find it, and only the format's checksums stand
                // between them and a corrupt restore.
                self.inner.put(name, &bytes[..keep])?;
                Err(Self::injected("short write"))
            }
            Some(WriteFault::CrashAfterWrite) => {
                self.inner.put(name, bytes)?;
                Err(Self::injected("crash after write"))
            }
        }
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut bytes = self.inner.get(name)?;
        if bytes.is_empty() {
            return Ok(bytes);
        }
        let fault = self.read_faults.lock().expect("chaos lock").pop_front();
        if let Some(ReadFault::BitFlip { offset, bit }) = fault {
            let i = offset % bytes.len();
            bytes[i] ^= 1 << (bit & 7);
            return Ok(bytes);
        }
        if self.flip_probability > 0.0 {
            let mut rng = self.rng.lock().expect("chaos rng lock");
            if rng.random::<f64>() < self.flip_probability {
                let offset = rng.random_range(0..bytes.len());
                let bit = rng.random_range(0..8u8);
                bytes[offset] ^= 1 << bit;
            }
        }
        Ok(bytes)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.inner.list()
    }

    fn delete(&self, name: &str) -> io::Result<()> {
        self.inner.delete(name)
    }
}

/// Forwarding impl so stores can share a backend with the test
/// harness that injects its faults.
impl<S: Storage + ?Sized> Storage for Arc<S> {
    fn put(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        (**self).put(name, bytes)
    }
    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        (**self).get(name)
    }
    fn list(&self) -> io::Result<Vec<String>> {
        (**self).list()
    }
    fn delete(&self, name: &str) -> io::Result<()> {
        (**self).delete(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdir_put_get_list_delete() {
        let dir = MemDir::new();
        dir.put("b", &[2]).unwrap();
        dir.put("a", &[1]).unwrap();
        assert_eq!(dir.list().unwrap(), vec!["a", "b"]);
        assert_eq!(dir.get("a").unwrap(), vec![1]);
        dir.delete("a").unwrap();
        dir.delete("a").unwrap(); // absent is fine
        assert!(dir.get("a").is_err());
    }

    #[test]
    fn chaos_write_faults_follow_the_script() {
        let chaos = ChaosDir::new(MemDir::new(), 1);
        chaos.push_write_fault(WriteFault::CrashBeforeWrite);
        chaos.push_write_fault(WriteFault::ShortWrite { keep: 2 });
        chaos.push_write_fault(WriteFault::CrashAfterWrite);

        assert!(chaos.put("a", &[1, 2, 3, 4]).is_err());
        assert!(
            chaos.inner().get("a").is_err(),
            "crash-before leaves nothing"
        );

        assert!(chaos.put("b", &[1, 2, 3, 4]).is_err());
        assert_eq!(
            chaos.inner().get("b").unwrap(),
            vec![1, 2],
            "torn blob visible"
        );

        assert!(chaos.put("c", &[9]).is_err());
        assert_eq!(
            chaos.inner().get("c").unwrap(),
            vec![9],
            "landed despite error"
        );

        // Script drained: clean writes again.
        chaos.put("d", &[7]).unwrap();
        assert_eq!(chaos.get("d").unwrap(), vec![7]);
    }

    #[test]
    fn chaos_scripted_bit_flip_hits_the_named_bit() {
        let chaos = ChaosDir::new(MemDir::new(), 1);
        chaos.put("a", &[0u8; 4]).unwrap();
        chaos.push_read_fault(ReadFault::BitFlip { offset: 6, bit: 3 });
        assert_eq!(chaos.get("a").unwrap(), vec![0, 0, 8, 0], "offset wraps");
        assert_eq!(chaos.get("a").unwrap(), vec![0, 0, 0, 0], "one-shot");
    }

    #[test]
    fn chaos_probabilistic_flips_are_seed_deterministic() {
        let run = |seed| {
            let chaos = ChaosDir::new(MemDir::new(), seed).with_read_flip_probability(0.5);
            chaos.put("a", &[0u8; 32]).unwrap();
            (0..20).map(|_| chaos.get("a").unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same corruption");
        assert!(
            run(7).iter().any(|b| b.iter().any(|&x| x != 0)),
            "a 50% rate over 20 reads must corrupt at least once"
        );
    }
}
