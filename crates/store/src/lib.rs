//! # ember-store
//!
//! Durable model lifecycle for the serving stack. The paper's central
//! economic fact (§3.2) is that substrate weights are *volatile* —
//! reprogrammed per minibatch, never durable on the Ising machine — so
//! the host's [`ModelRegistry`](ember_serve::ModelRegistry) is the only
//! place trained state exists. This crate makes that state survive the
//! host too:
//!
//! * [`format`] — the `EMBS` snapshot format: versioned, little-endian,
//!   checksummed at two layers (whole-file FNV-1a plus the serving
//!   layer's own [`couplings_checksum`](ember_core::couplings_checksum)
//!   per model version, recomputed from the *decoded* parameters), with
//!   **delta-compressed version chains** so retained history costs
//!   bytes proportional to what actually changed.
//! * [`Storage`] / [`DiskDir`] — atomic publication via temp-file +
//!   `fsync` + `rename`: a kill at any instant leaves the old snapshot
//!   or the new one, never a torn file visible to `list`.
//! * [`ChaosDir`] — a seeded fault-injecting decorator (short writes
//!   under the final name, kill-mid-publish, bit-flips on read) that
//!   the crash-recovery tests drive, the same methodology the serving
//!   layer uses for substrate faults.
//! * [`SnapshotStore`] — sequenced snapshots with newest-first load and
//!   **last-good fallback**: a corrupt newest file is stepped over (and
//!   reported), not fatal.
//! * [`SnapshotDaemon`] — on-publish + periodic background snapshots
//!   with bounded retention, wired into the registry's publish hook.
//! * [`warm_start`] — boot a
//!   [`SamplingService`](ember_serve::SamplingService) from a snapshot
//!   directory; restored parameters are bit-identical, so the
//!   warm-started service answers the same requests with the same
//!   bytes, at any shard count.
//!
//! Rollback completes the lifecycle: the registry retains a bounded
//! version history, [`ModelRegistry::rollback`](ember_serve::ModelRegistry::rollback)
//! republishes a prior version through the normal CAS path, and the
//! HTTP edge exposes it as `POST /v1/models/{name}/rollback`.
//!
//! See `examples/durable_service.rs` for the full loop: serve, publish,
//! snapshot, "crash", warm-start, verify bit-identity, roll back.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod daemon;
mod error;
pub mod format;
mod storage;
mod store;

pub use daemon::{DaemonConfig, DaemonStats, SnapshotDaemon};
pub use error::StoreError;
pub use format::{ModelChainImage, RegistryImage};
pub use storage::{ChaosDir, DiskDir, MemDir, ReadFault, Storage, WriteFault};
pub use store::{warm_start, LoadReport, SaveReport, SnapshotStore};
