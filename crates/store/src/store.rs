//! [`SnapshotStore`]: sequenced snapshots over a [`Storage`] backend,
//! with corruption-detecting load and last-good fallback.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ember_rbm::Rbm;
use ember_serve::{ModelRegistry, SamplingService, ServiceBuilder};
use ember_substrate::ReplicableSubstrate;

use crate::format::{decode_registry, encode_registry, ModelChainImage, RegistryImage};
use crate::{Storage, StoreError};

/// File-name prefix and suffix of snapshot blobs: `snap-{seq:012}.embs`.
const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".embs";

/// What one [`SnapshotStore::save`] wrote.
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// The snapshot's sequence number.
    pub sequence: u64,
    /// The blob name it was published under.
    pub file: String,
    /// Encoded frame size in bytes (delta-compressed).
    pub bytes: usize,
    /// Models captured.
    pub models: usize,
    /// Total retained versions captured across all models.
    pub versions: usize,
}

/// How a [`SnapshotStore::load_latest`] found its snapshot.
#[derive(Debug)]
pub struct LoadReport {
    /// The blob that decoded cleanly.
    pub loaded: String,
    /// The snapshot's sequence number.
    pub sequence: u64,
    /// Newer candidates that failed to decode, newest first, with the
    /// typed error each one died of — the corruption the fallback
    /// stepped over.
    pub skipped: Vec<(String, StoreError)>,
}

struct Inner {
    storage: Box<dyn Storage>,
    /// Next sequence to assign; reserved even when a save fails so a
    /// half-written casualty can never collide with a later snapshot.
    next_sequence: AtomicU64,
}

/// A store of sequenced registry snapshots on any [`Storage`] backend.
///
/// Snapshots are named `snap-{sequence:012}.embs` so lexicographic
/// order *is* recency order. [`SnapshotStore::save`] seals the whole
/// registry (every model's retained version chain, delta-compressed)
/// into one atomic blob; [`SnapshotStore::load_latest`] walks
/// candidates newest-first and returns the first one that decodes
/// cleanly, reporting — not silently swallowing — every corrupt file it
/// stepped over. Handles are cloneable and share the sequence counter.
#[derive(Clone)]
pub struct SnapshotStore {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotStore")
            .field(
                "next_sequence",
                &self.inner.next_sequence.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// Parses `snap-{seq}.embs` back to its sequence number.
fn sequence_of(name: &str) -> Option<u64> {
    name.strip_prefix(SNAP_PREFIX)?
        .strip_suffix(SNAP_SUFFIX)?
        .parse()
        .ok()
}

impl SnapshotStore {
    /// A store over `storage`, resuming the sequence counter after the
    /// newest snapshot already present.
    ///
    /// # Errors
    ///
    /// Propagates the backend's listing failure.
    pub fn new(storage: impl Storage + 'static) -> Result<Self, StoreError> {
        let boxed: Box<dyn Storage> = Box::new(storage);
        let newest = boxed
            .list()?
            .iter()
            .filter_map(|n| sequence_of(n))
            .max()
            .unwrap_or(0);
        Ok(SnapshotStore {
            inner: Arc::new(Inner {
                storage: boxed,
                next_sequence: AtomicU64::new(newest + 1),
            }),
        })
    }

    /// Convenience: a store over a [`DiskDir`](crate::DiskDir) at
    /// `root`.
    ///
    /// # Errors
    ///
    /// Directory creation or listing failure.
    pub fn open(root: impl Into<std::path::PathBuf>) -> Result<Self, StoreError> {
        Self::new(crate::DiskDir::open(root)?)
    }

    /// Snapshot blob names currently in the store, oldest first.
    ///
    /// # Errors
    ///
    /// The backend's listing failure.
    pub fn snapshots(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = self
            .inner
            .storage
            .list()?
            .into_iter()
            .filter(|n| sequence_of(n).is_some())
            .collect();
        names.sort();
        Ok(names)
    }

    /// Seals the registry's current state (taken consistently under one
    /// registry read lock) into a new snapshot blob.
    ///
    /// The sequence number is consumed even if the write fails, so a
    /// torn casualty left by a crash can never share a name with a
    /// later, good snapshot.
    ///
    /// # Errors
    ///
    /// Encoding failures ([`StoreError::Oversized`],
    /// [`StoreError::Corrupt`]) and backend write failures
    /// ([`StoreError::Io`]).
    pub fn save(&self, registry: &ModelRegistry) -> Result<SaveReport, StoreError> {
        let sequence = self.inner.next_sequence.fetch_add(1, Ordering::SeqCst);
        let models: Vec<ModelChainImage> = registry
            .export_chains()
            .into_iter()
            .map(|(name, chain)| ModelChainImage { name, chain })
            .collect();
        let image = RegistryImage { sequence, models };
        let bytes = encode_registry(&image)?;
        let file = format!("{SNAP_PREFIX}{sequence:012}{SNAP_SUFFIX}");
        self.inner.storage.put(&file, &bytes)?;
        Ok(SaveReport {
            sequence,
            file,
            bytes: bytes.len(),
            models: image.models.len(),
            versions: image.models.iter().map(|m| m.chain.len()).sum(),
        })
    }

    /// Loads the newest snapshot that decodes cleanly, walking
    /// candidates newest-first past any corrupt, torn, or unreadable
    /// file (each recorded in the report).
    ///
    /// # Errors
    ///
    /// [`StoreError::NoSnapshot`] when the store is empty or every
    /// candidate failed; listing failures as [`StoreError::Io`].
    pub fn load_latest(&self) -> Result<(RegistryImage, LoadReport), StoreError> {
        let mut names = self.snapshots()?;
        names.reverse(); // newest first
        let mut skipped = Vec::new();
        for name in names {
            let attempt = self
                .inner
                .storage
                .get(&name)
                .map_err(StoreError::from)
                .and_then(|bytes| decode_registry(&bytes));
            match attempt {
                Ok(image) => {
                    let sequence = image.sequence;
                    return Ok((
                        image,
                        LoadReport {
                            loaded: name,
                            sequence,
                            skipped,
                        },
                    ));
                }
                Err(e) => skipped.push((name, e)),
            }
        }
        Err(StoreError::NoSnapshot {
            tried: skipped.len(),
        })
    }

    /// [`SnapshotStore::load_latest`] straight into a fresh
    /// [`ModelRegistry`] (with that registry's default history limit),
    /// every model's version chain and version numbers intact.
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::load_latest`], plus [`StoreError::Serve`] if
    /// a decoded chain is rejected by the registry.
    pub fn restore_latest(&self) -> Result<(ModelRegistry, LoadReport), StoreError> {
        let (image, report) = self.load_latest()?;
        let registry = ModelRegistry::new();
        for model in image.models {
            registry.restore_chain(model.name, model.chain)?;
        }
        Ok((registry, report))
    }

    /// Deletes all but the newest `keep_last` snapshots; returns the
    /// deleted blob names.
    ///
    /// # Errors
    ///
    /// The backend's listing/deletion failure.
    pub fn prune(&self, keep_last: usize) -> Result<Vec<String>, StoreError> {
        let names = self.snapshots()?;
        let cut = names.len().saturating_sub(keep_last);
        let mut deleted = Vec::new();
        for name in &names[..cut] {
            self.inner.storage.delete(name)?;
            deleted.push(name.clone());
        }
        Ok(deleted)
    }
}

/// Boots a [`SamplingService`] from the newest good snapshot in
/// `store`: restore the registry, build the service around it, then
/// provision every restored model's serving replicas via `fabricate`
/// (called once per model with its *current* parameters; typically
/// `SubstrateSpec::fabricate_for`).
///
/// Because restored parameters are bit-identical (the format
/// round-trips `f64` bit patterns and double-checks them against the
/// stored parameter checksums) and per-request RNG streams are derived
/// from the service's master seed, a warm-started service returns **the
/// same bytes** the pre-crash service would have for the same requests.
///
/// # Errors
///
/// As [`SnapshotStore::restore_latest`], plus any
/// [`ServeError`](ember_serve::ServeError) from provisioning.
pub fn warm_start<F>(
    store: &SnapshotStore,
    builder: ServiceBuilder,
    mut fabricate: F,
) -> Result<(SamplingService, LoadReport), StoreError>
where
    F: FnMut(&str, &Rbm) -> Box<dyn ReplicableSubstrate>,
{
    let (registry, report) = store.restore_latest()?;
    let service = builder.registry(registry).build();
    for name in service.registry().names() {
        let snapshot = service
            .registry()
            .get(&name)
            .expect("model listed under the registry lock");
        let prototype = fabricate(&name, &snapshot.rbm);
        service.provision_model(&name, prototype)?;
    }
    Ok((service, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemDir;
    use rand::SeedableRng;

    fn rbm(m: usize, n: usize, seed: u64) -> Rbm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Rbm::random(m, n, 0.1, &mut rng)
    }

    #[test]
    fn save_restore_round_trips_chains_and_versions() {
        let store = SnapshotStore::new(MemDir::new()).unwrap();
        let reg = ModelRegistry::new();
        reg.register("a", rbm(4, 3, 1)).unwrap();
        reg.publish("a", rbm(4, 3, 2)).unwrap();
        reg.register("b", rbm(2, 2, 9)).unwrap();

        let report = store.save(&reg).unwrap();
        assert_eq!(report.sequence, 1);
        assert_eq!(report.models, 2);
        assert_eq!(report.versions, 3);

        let (restored, load) = store.restore_latest().unwrap();
        assert_eq!(load.sequence, 1);
        assert!(load.skipped.is_empty());
        assert_eq!(restored.get("a").unwrap().version, 2);
        assert_eq!(*restored.get("a").unwrap().rbm, *reg.get("a").unwrap().rbm);
        assert_eq!(restored.versions("a").unwrap(), vec![1, 2]);
        assert_eq!(*restored.get_version("a", 1).unwrap(), rbm(4, 3, 1));
        assert_eq!(restored.get("b").unwrap().version, 1);
        // The restored registry can roll back across the crash boundary.
        assert_eq!(restored.rollback("a", 1).unwrap(), 3);
        assert_eq!(*restored.get("a").unwrap().rbm, rbm(4, 3, 1));
    }

    #[test]
    fn sequences_resume_and_prune_keeps_the_newest() {
        let dir = MemDir::new();
        let reg = ModelRegistry::new();
        reg.register("a", rbm(2, 2, 1)).unwrap();
        {
            let store = SnapshotStore::new(dir.clone()).unwrap();
            store.save(&reg).unwrap();
            store.save(&reg).unwrap();
        }
        // A new handle over the same directory resumes, not restarts.
        let store = SnapshotStore::new(dir).unwrap();
        assert_eq!(store.save(&reg).unwrap().sequence, 3);
        assert_eq!(store.snapshots().unwrap().len(), 3);
        let deleted = store.prune(1).unwrap();
        assert_eq!(deleted.len(), 2);
        assert_eq!(store.snapshots().unwrap(), vec!["snap-000000000003.embs"]);
        assert_eq!(store.load_latest().unwrap().1.sequence, 3);
    }

    #[test]
    fn empty_store_is_a_typed_error() {
        let store = SnapshotStore::new(MemDir::new()).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(StoreError::NoSnapshot { tried: 0 })
        ));
    }
}
