//! # ember-serve
//!
//! Sampling-as-a-service over the `Substrate` seam: the paper's
//! accelerator earns its keep by amortizing substrate operations over
//! whole minibatches (§3.2), and the same economics apply to *serving* —
//! many concurrent clients each wanting a few samples or a free-running
//! chain from some model. Related work already treats the Ising machine
//! as a shared multi-tenant sampling resource (Niazi et al. drive many
//! chains through one physical sampler; Schmid et al. put the machine
//! behind a uniform sample-request interface); this crate makes that a
//! service API:
//!
//! * [`ModelRegistry`] — named, **versioned** RBMs behind one
//!   thread-safe handle; training publishes new versions, sampling
//!   always reads a consistent snapshot. A bounded per-model version
//!   history powers [`ModelRegistry::rollback`] (republish a prior
//!   version through the CAS path) and the delta-compressed durable
//!   snapshots in `ember_store`.
//! * [`SamplingService`] — a pool of worker shards
//!   (`std::thread`), each holding cloned
//!   [`ReplicableSubstrate`](ember_substrate::ReplicableSubstrate)
//!   replicas on its own deterministic
//!   [`RngStreams`](ember_rbm::RngStreams) lane, fed from a **bounded**
//!   request queue that rejects (never blocks) when full.
//! * typed requests — [`SampleRequest`] → [`SampleResponse`],
//!   [`TrainRequest`] → [`TrainResponse`] — answered through per-request
//!   channels.
//! * **request coalescing** — pending sample requests for the same
//!   `(model, gibbs_steps)` key merge into one batched substrate call
//!   ([`batch::sample_rows`]), the serving-side analogue of the paper's
//!   per-minibatch operation list; per-row RNG streams make the
//!   coalescing bit-invisible to every caller.
//! * [`ServiceStats`] — per-shard and per-model
//!   [`HardwareCounters`](ember_substrate::HardwareCounters)
//!   aggregation, batch-size and backpressure accounting.
//! * **self-healing** — the substrate is treated as fallible analog
//!   hardware: faulted groups are *reprogrammed and retried* under a
//!   deterministic [`RetryPolicy`](ember_core::RetryPolicy) (successful
//!   retries are bit-identical to the fault-free run); repeated failures
//!   trip a per-model circuit breaker that degrades to a software
//!   fallback ([`SampleResponse::degraded`]); panicking requests answer
//!   everyone with a typed [`ServeError::ShardRestarted`] and the shard
//!   re-provisions from retained prototypes; deadline-expired requests
//!   are shed; [`SamplingService::shutdown`] drains within a deadline
//!   and reports a [`DrainReport`].
//! * **overload robustness** — a bounded, deadline-aware
//!   [`ServiceBuilder::coalesce_window`] caps how long a group may wait
//!   for batch-mates; two [`Priority`] lanes drain Interactive before
//!   Bulk; admission control projects each deadlined request's
//!   completion from the measured per-row service rate and refuses
//!   provably-late work at enqueue ([`ServeError::Overloaded`]); under
//!   sustained overload queued Bulk work is shed before any Interactive
//!   request is turned away. None of this touches the per-row RNG
//!   streams: accepted requests return bit-identical samples, loaded or
//!   not. Accepted-request queue-to-answer latency is recorded in
//!   log-bucketed [`LatencyHistogram`]s
//!   ([`ShardStats::latency`], [`ServiceStats::latency`]).
//!
//! See `examples/sampling_service.rs` for two models served over all
//! three substrate backends under mixed sample/train traffic, and
//! `examples/chaos_service.rs` for the same service riding out an
//! injected fault storm.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod latency;
mod registry;
mod request;
mod service;

pub use latency::LatencyHistogram;
pub use registry::{ModelRegistry, ModelSnapshot, PublishHook};
pub use request::{
    Priority, SampleRequest, SampleResponse, ServeError, TrainRequest, TrainResponse,
};
pub use service::{
    DrainReport, ModelStats, ResponseHandle, SamplingService, ServiceBuilder, ServiceStats,
    ShardStats,
};
