use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use ember_rbm::Rbm;

use crate::ServeError;

/// A snapshot of one registry entry: the model parameters (shared, never
/// mutated in place) and the version they were published under.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The model parameters at this version.
    pub rbm: Arc<Rbm>,
    /// Monotonically increasing version, starting at 1 on registration.
    pub version: u64,
}

/// A thread-safe registry of named, versioned RBMs — the service's
/// source of truth for "which parameters does model X currently have".
///
/// Models are immutable snapshots behind `Arc`: publishing a new version
/// swaps the snapshot and bumps the version, it never mutates the old
/// one, so shards mid-flight keep sampling a consistent model. Sizes are
/// part of a model's identity — a publish that changes the layer sizes
/// is rejected (serving replicas are fabricated at registration size).
///
/// Cloning the registry clones the *handle*; all clones share state.
///
/// # Example
///
/// ```
/// use ember_serve::ModelRegistry;
/// use ember_rbm::Rbm;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let registry = ModelRegistry::new();
/// registry.register("demo", Rbm::random(4, 2, 0.1, &mut rng)).unwrap();
/// let v2 = registry.publish("demo", Rbm::random(4, 2, 0.1, &mut rng)).unwrap();
/// assert_eq!(v2, 2);
/// assert_eq!(registry.get("demo").unwrap().version, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    inner: Arc<RwLock<BTreeMap<String, ModelSnapshot>>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new model under `name` at version 1.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelExists`] if the name is taken.
    pub fn register(&self, name: impl Into<String>, rbm: Rbm) -> Result<u64, ServeError> {
        let name = name.into();
        let mut map = self.inner.write().expect("registry lock");
        if map.contains_key(&name) {
            return Err(ServeError::ModelExists(name));
        }
        map.insert(
            name,
            ModelSnapshot {
                rbm: Arc::new(rbm),
                version: 1,
            },
        );
        Ok(1)
    }

    /// Publishes new parameters for an existing model, returning the new
    /// version.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name;
    /// [`ServeError::InvalidRequest`] if the layer sizes differ from the
    /// registered model's.
    pub fn publish(&self, name: &str, rbm: Rbm) -> Result<u64, ServeError> {
        self.publish_guarded(name, rbm, None)
    }

    /// Compare-and-swap publish: succeeds only if the current version
    /// still equals `base_version` (the version the new parameters were
    /// derived from). This is how concurrent trainers avoid the
    /// lost-update race — the loser gets
    /// [`ServeError::TrainConflict`] instead of silently overwriting
    /// the winner's work.
    ///
    /// # Errors
    ///
    /// [`ServeError::TrainConflict`] if the version moved;
    /// otherwise the same errors as [`ModelRegistry::publish`].
    pub fn publish_if(&self, name: &str, rbm: Rbm, base_version: u64) -> Result<u64, ServeError> {
        self.publish_guarded(name, rbm, Some(base_version))
    }

    /// Shared publish path: look up, optionally enforce the CAS base
    /// version, validate sizes, swap the snapshot — all under one write
    /// lock.
    fn publish_guarded(
        &self,
        name: &str,
        rbm: Rbm,
        base_version: Option<u64>,
    ) -> Result<u64, ServeError> {
        let mut map = self.inner.write().expect("registry lock");
        let entry = map
            .get_mut(name)
            .ok_or_else(|| ServeError::ModelNotFound(name.to_string()))?;
        if let Some(base) = base_version {
            if entry.version != base {
                return Err(ServeError::TrainConflict {
                    model: name.to_string(),
                    base_version: base,
                    current_version: entry.version,
                });
            }
        }
        if rbm.visible_len() != entry.rbm.visible_len()
            || rbm.hidden_len() != entry.rbm.hidden_len()
        {
            return Err(ServeError::InvalidRequest(format!(
                "published `{name}` is {}x{}, registered as {}x{}",
                rbm.visible_len(),
                rbm.hidden_len(),
                entry.rbm.visible_len(),
                entry.rbm.hidden_len(),
            )));
        }
        entry.version += 1;
        entry.rbm = Arc::new(rbm);
        Ok(entry.version)
    }

    /// The current snapshot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<ModelSnapshot> {
        self.inner.read().expect("registry lock").get(name).cloned()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rbm(m: usize, n: usize, seed: u64) -> Rbm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Rbm::random(m, n, 0.1, &mut rng)
    }

    #[test]
    fn register_publish_versioning() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.register("a", rbm(3, 2, 1)).unwrap(), 1);
        assert_eq!(reg.publish("a", rbm(3, 2, 2)).unwrap(), 2);
        assert_eq!(reg.publish("a", rbm(3, 2, 3)).unwrap(), 3);
        let snap = reg.get("a").unwrap();
        assert_eq!(snap.version, 3);
        assert_eq!(snap.rbm.visible_len(), 3);
    }

    #[test]
    fn register_rejects_duplicates_and_publish_rejects_resize() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        assert_eq!(
            reg.register("a", rbm(3, 2, 2)),
            Err(ServeError::ModelExists("a".into()))
        );
        assert!(matches!(
            reg.publish("a", rbm(4, 2, 2)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert_eq!(
            reg.publish("missing", rbm(3, 2, 2)),
            Err(ServeError::ModelNotFound("missing".into()))
        );
    }

    #[test]
    fn publish_if_rejects_stale_base_version() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        // Two trainers both start from version 1; only the first lands.
        assert_eq!(reg.publish_if("a", rbm(3, 2, 2), 1).unwrap(), 2);
        assert_eq!(
            reg.publish_if("a", rbm(3, 2, 3), 1),
            Err(ServeError::TrainConflict {
                model: "a".into(),
                base_version: 1,
                current_version: 2,
            })
        );
        // The winner's parameters survive.
        assert_eq!(*reg.get("a").unwrap().rbm, rbm(3, 2, 2));
        // Retrying from the current version succeeds.
        assert_eq!(reg.publish_if("a", rbm(3, 2, 3), 2).unwrap(), 3);
    }

    #[test]
    fn snapshots_are_immutable_across_publishes() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        let before = reg.get("a").unwrap();
        reg.publish("a", rbm(3, 2, 99)).unwrap();
        // The old snapshot still points at the version-1 parameters.
        assert_eq!(before.version, 1);
        assert_eq!(*before.rbm, rbm(3, 2, 1));
        assert_ne!(*reg.get("a").unwrap().rbm, *before.rbm);
    }

    #[test]
    fn handles_share_state() {
        let reg = ModelRegistry::new();
        let other = reg.clone();
        reg.register("a", rbm(2, 2, 1)).unwrap();
        assert_eq!(other.names(), vec!["a".to_string()]);
        assert!(!other.is_empty());
    }
}
