use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, RwLock};

use ember_rbm::Rbm;

use crate::ServeError;

/// A snapshot of one registry entry: the model parameters (shared, never
/// mutated in place) and the version they were published under.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// The model parameters at this version.
    pub rbm: Arc<Rbm>,
    /// Monotonically increasing version, starting at 1 on registration.
    pub version: u64,
}

/// Observer of successful publications: called with `(name, version)`
/// after every register/publish/rollback/restore lands. Installed by
/// the persistence layer (`ember_store`'s snapshot daemon) to trigger
/// on-publish snapshots.
pub type PublishHook = Box<dyn Fn(&str, u64) + Send + Sync>;

/// One registry entry: the current snapshot plus a bounded history of
/// prior versions retained for rollback and delta-compressed snapshots.
#[derive(Debug)]
struct Entry {
    rbm: Arc<Rbm>,
    version: u64,
    /// Prior versions, ascending; bounded by the registry's
    /// `history_limit` (oldest evicted first).
    history: VecDeque<(u64, Arc<Rbm>)>,
}

struct Inner {
    models: RwLock<BTreeMap<String, Entry>>,
    /// Called (outside the models lock) after every successful
    /// publication. `RwLock` so installing a hook never contends with
    /// the read-mostly publish path.
    hook: RwLock<Option<PublishHook>>,
    history_limit: usize,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.names())
            .field("history_limit", &self.inner.history_limit)
            .finish()
    }
}

/// A thread-safe registry of named, versioned RBMs — the service's
/// source of truth for "which parameters does model X currently have".
///
/// Models are immutable snapshots behind `Arc`: publishing a new version
/// swaps the snapshot and bumps the version, it never mutates the old
/// one, so shards mid-flight keep sampling a consistent model. Sizes are
/// part of a model's identity — a publish that changes the layer sizes
/// is rejected (serving replicas are fabricated at registration size).
///
/// Every entry additionally retains a bounded **version history**
/// ([`ModelRegistry::with_history_limit`], default 8): displaced
/// snapshots are kept (cheaply, behind the same `Arc`s) so that
/// [`ModelRegistry::rollback`] can republish a prior version through
/// the normal CAS publish path, and so the persistence layer can write
/// delta-compressed version chains.
///
/// Cloning the registry clones the *handle*; all clones share state.
///
/// # Example
///
/// ```
/// use ember_serve::ModelRegistry;
/// use ember_rbm::Rbm;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let registry = ModelRegistry::new();
/// registry.register("demo", Rbm::random(4, 2, 0.1, &mut rng)).unwrap();
/// let v2 = registry.publish("demo", Rbm::random(4, 2, 0.1, &mut rng)).unwrap();
/// assert_eq!(v2, 2);
/// assert_eq!(registry.get("demo").unwrap().version, 2);
/// // The displaced version 1 is retained and can be rolled back to.
/// assert_eq!(registry.versions("demo").unwrap(), vec![1, 2]);
/// assert_eq!(registry.rollback("demo", 1).unwrap(), 3);
/// ```
#[derive(Clone)]
pub struct ModelRegistry {
    inner: Arc<Inner>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_history_limit(Self::DEFAULT_HISTORY_LIMIT)
    }
}

impl ModelRegistry {
    /// Prior versions retained per model by [`ModelRegistry::new`].
    pub const DEFAULT_HISTORY_LIMIT: usize = 8;

    /// An empty registry retaining [`Self::DEFAULT_HISTORY_LIMIT`]
    /// prior versions per model.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry retaining at most `limit` prior versions per
    /// model (`0` disables history — and with it rollback beyond the
    /// current version).
    pub fn with_history_limit(limit: usize) -> Self {
        ModelRegistry {
            inner: Arc::new(Inner {
                models: RwLock::new(BTreeMap::new()),
                hook: RwLock::new(None),
                history_limit: limit,
            }),
        }
    }

    /// The configured per-model history bound.
    pub fn history_limit(&self) -> usize {
        self.inner.history_limit
    }

    /// Installs (or with `None`, removes) the publish observer, called
    /// with `(name, new_version)` after every successful
    /// register/publish/rollback/restore. At most one hook is installed
    /// at a time; the previous one is returned-dropped. The hook runs on
    /// the publishing thread *outside* the registry lock — keep it
    /// cheap (set a flag, notify a condvar) and never re-enter the
    /// registry's write path from inside it.
    pub fn set_publish_hook(&self, hook: Option<PublishHook>) {
        *self.inner.hook.write().expect("registry hook lock") = hook;
    }

    /// Fires the publish hook, if installed. Must be called with the
    /// models lock released.
    fn notify(&self, name: &str, version: u64) {
        if let Some(hook) = self.inner.hook.read().expect("registry hook lock").as_ref() {
            hook(name, version);
        }
    }

    /// Registers a new model under `name` at version 1.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelExists`] if the name is taken.
    pub fn register(&self, name: impl Into<String>, rbm: Rbm) -> Result<u64, ServeError> {
        let name = name.into();
        {
            let mut map = self.inner.models.write().expect("registry lock");
            if map.contains_key(&name) {
                return Err(ServeError::ModelExists(name));
            }
            map.insert(
                name.clone(),
                Entry {
                    rbm: Arc::new(rbm),
                    version: 1,
                    history: VecDeque::new(),
                },
            );
        }
        self.notify(&name, 1);
        Ok(1)
    }

    /// Publishes new parameters for an existing model, returning the new
    /// version. The displaced snapshot is retained in the model's
    /// bounded history.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name;
    /// [`ServeError::InvalidRequest`] if the layer sizes differ from the
    /// registered model's.
    pub fn publish(&self, name: &str, rbm: Rbm) -> Result<u64, ServeError> {
        self.publish_arc(name, Arc::new(rbm), None)
    }

    /// Compare-and-swap publish: succeeds only if the current version
    /// still equals `base_version` (the version the new parameters were
    /// derived from). This is how concurrent trainers avoid the
    /// lost-update race — the loser gets
    /// [`ServeError::TrainConflict`] instead of silently overwriting
    /// the winner's work.
    ///
    /// # Errors
    ///
    /// [`ServeError::TrainConflict`] if the version moved;
    /// otherwise the same errors as [`ModelRegistry::publish`].
    pub fn publish_if(&self, name: &str, rbm: Rbm, base_version: u64) -> Result<u64, ServeError> {
        self.publish_arc(name, Arc::new(rbm), Some(base_version))
    }

    /// Shared publish path over an already-shared snapshot: look up,
    /// optionally enforce the CAS base version, validate sizes, retire
    /// the current snapshot into history, swap — all under one write
    /// lock. Rollback rides this same path with an `Arc` cloned out of
    /// the history.
    fn publish_arc(
        &self,
        name: &str,
        rbm: Arc<Rbm>,
        base_version: Option<u64>,
    ) -> Result<u64, ServeError> {
        let version = {
            let mut map = self.inner.models.write().expect("registry lock");
            let entry = map
                .get_mut(name)
                .ok_or_else(|| ServeError::ModelNotFound(name.to_string()))?;
            if let Some(base) = base_version {
                if entry.version != base {
                    return Err(ServeError::TrainConflict {
                        model: name.to_string(),
                        base_version: base,
                        current_version: entry.version,
                    });
                }
            }
            if rbm.visible_len() != entry.rbm.visible_len()
                || rbm.hidden_len() != entry.rbm.hidden_len()
            {
                return Err(ServeError::InvalidRequest(format!(
                    "published `{name}` is {}x{}, registered as {}x{}",
                    rbm.visible_len(),
                    rbm.hidden_len(),
                    entry.rbm.visible_len(),
                    entry.rbm.hidden_len(),
                )));
            }
            let displaced = (entry.version, Arc::clone(&entry.rbm));
            entry.history.push_back(displaced);
            while entry.history.len() > self.inner.history_limit {
                entry.history.pop_front();
            }
            entry.version += 1;
            entry.rbm = rbm;
            entry.version
        };
        self.notify(name, version);
        Ok(version)
    }

    /// Republishes the retained parameters of `version` as a **new**
    /// version (CAS against the version observed under the same lock,
    /// so a rollback can never trample a concurrent publish): serving
    /// traffic sees the version counter move forward monotonically and
    /// never a torn or rewound update. The rolled-back-from snapshot
    /// itself is retained in history, so a rollback can be rolled back.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name;
    /// [`ServeError::VersionNotFound`] if `version` is neither current
    /// nor retained in the model's bounded history.
    pub fn rollback(&self, name: &str, version: u64) -> Result<u64, ServeError> {
        let new_version = {
            let mut map = self.inner.models.write().expect("registry lock");
            let entry = map
                .get_mut(name)
                .ok_or_else(|| ServeError::ModelNotFound(name.to_string()))?;
            let target = if entry.version == version {
                Arc::clone(&entry.rbm)
            } else {
                entry
                    .history
                    .iter()
                    .find(|(v, _)| *v == version)
                    .map(|(_, rbm)| Arc::clone(rbm))
                    .ok_or(ServeError::VersionNotFound {
                        model: name.to_string(),
                        version,
                    })?
            };
            let displaced = (entry.version, Arc::clone(&entry.rbm));
            entry.history.push_back(displaced);
            while entry.history.len() > self.inner.history_limit {
                entry.history.pop_front();
            }
            entry.version += 1;
            entry.rbm = target;
            entry.version
        };
        self.notify(name, new_version);
        Ok(new_version)
    }

    /// Restores a model's whole version chain (ascending versions, the
    /// last entry becoming current) — the persistence layer's path for
    /// rebuilding a registry from a decoded snapshot with history and
    /// version numbers intact.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelExists`] if the name is taken;
    /// [`ServeError::InvalidRequest`] on an empty chain, non-ascending
    /// versions, or size drift within the chain.
    pub fn restore_chain(
        &self,
        name: impl Into<String>,
        chain: Vec<(u64, Arc<Rbm>)>,
    ) -> Result<u64, ServeError> {
        let name = name.into();
        let Some(last) = chain.last() else {
            return Err(ServeError::InvalidRequest(format!(
                "restored chain for `{name}` is empty"
            )));
        };
        let (m, n) = (last.1.visible_len(), last.1.hidden_len());
        let mut prev = None;
        for (version, rbm) in &chain {
            if prev.is_some_and(|p| *version <= p) {
                return Err(ServeError::InvalidRequest(format!(
                    "restored chain for `{name}` has non-ascending versions"
                )));
            }
            prev = Some(*version);
            if rbm.visible_len() != m || rbm.hidden_len() != n {
                return Err(ServeError::InvalidRequest(format!(
                    "restored chain for `{name}` changes size at v{version}"
                )));
            }
        }
        let version = {
            let mut map = self.inner.models.write().expect("registry lock");
            if map.contains_key(&name) {
                return Err(ServeError::ModelExists(name));
            }
            let mut history: VecDeque<(u64, Arc<Rbm>)> = chain.into_iter().collect();
            let (version, rbm) = history.pop_back().expect("chain checked non-empty");
            map.insert(
                name.clone(),
                Entry {
                    rbm,
                    version,
                    history,
                },
            );
            version
        };
        self.notify(&name, version);
        Ok(version)
    }

    /// The current snapshot of `name`, if registered.
    pub fn get(&self, name: &str) -> Option<ModelSnapshot> {
        self.inner
            .models
            .read()
            .expect("registry lock")
            .get(name)
            .map(|entry| ModelSnapshot {
                rbm: Arc::clone(&entry.rbm),
                version: entry.version,
            })
    }

    /// The retained parameters of `name` at exactly `version` (current
    /// or in the bounded history).
    pub fn get_version(&self, name: &str, version: u64) -> Option<Arc<Rbm>> {
        let map = self.inner.models.read().expect("registry lock");
        let entry = map.get(name)?;
        if entry.version == version {
            return Some(Arc::clone(&entry.rbm));
        }
        entry
            .history
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, rbm)| Arc::clone(rbm))
    }

    /// Every retained version of `name`, ascending (history + current),
    /// or `None` if unregistered.
    pub fn versions(&self, name: &str) -> Option<Vec<u64>> {
        let map = self.inner.models.read().expect("registry lock");
        let entry = map.get(name)?;
        let mut versions: Vec<u64> = entry.history.iter().map(|(v, _)| *v).collect();
        versions.push(entry.version);
        Some(versions)
    }

    /// A consistent export of every model's full retained chain
    /// (ascending versions, last entry current), taken under one read
    /// lock — what the persistence layer encodes into a snapshot file.
    /// The parameters ride out as `Arc` clones; nothing is copied.
    #[allow(clippy::type_complexity)]
    pub fn export_chains(&self) -> Vec<(String, Vec<(u64, Arc<Rbm>)>)> {
        let map = self.inner.models.read().expect("registry lock");
        map.iter()
            .map(|(name, entry)| {
                let mut chain: Vec<(u64, Arc<Rbm>)> = entry
                    .history
                    .iter()
                    .map(|(v, rbm)| (*v, Arc::clone(rbm)))
                    .collect();
                chain.push((entry.version, Arc::clone(&entry.rbm)));
                (name.clone(), chain)
            })
            .collect()
    }

    /// Registered model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner
            .models
            .read()
            .expect("registry lock")
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.inner.models.read().expect("registry lock").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn rbm(m: usize, n: usize, seed: u64) -> Rbm {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Rbm::random(m, n, 0.1, &mut rng)
    }

    #[test]
    fn register_publish_versioning() {
        let reg = ModelRegistry::new();
        assert_eq!(reg.register("a", rbm(3, 2, 1)).unwrap(), 1);
        assert_eq!(reg.publish("a", rbm(3, 2, 2)).unwrap(), 2);
        assert_eq!(reg.publish("a", rbm(3, 2, 3)).unwrap(), 3);
        let snap = reg.get("a").unwrap();
        assert_eq!(snap.version, 3);
        assert_eq!(snap.rbm.visible_len(), 3);
    }

    #[test]
    fn register_rejects_duplicates_and_publish_rejects_resize() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        assert_eq!(
            reg.register("a", rbm(3, 2, 2)),
            Err(ServeError::ModelExists("a".into()))
        );
        assert!(matches!(
            reg.publish("a", rbm(4, 2, 2)),
            Err(ServeError::InvalidRequest(_))
        ));
        assert_eq!(
            reg.publish("missing", rbm(3, 2, 2)),
            Err(ServeError::ModelNotFound("missing".into()))
        );
    }

    #[test]
    fn publish_if_rejects_stale_base_version() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        // Two trainers both start from version 1; only the first lands.
        assert_eq!(reg.publish_if("a", rbm(3, 2, 2), 1).unwrap(), 2);
        assert_eq!(
            reg.publish_if("a", rbm(3, 2, 3), 1),
            Err(ServeError::TrainConflict {
                model: "a".into(),
                base_version: 1,
                current_version: 2,
            })
        );
        // The winner's parameters survive.
        assert_eq!(*reg.get("a").unwrap().rbm, rbm(3, 2, 2));
        // Retrying from the current version succeeds.
        assert_eq!(reg.publish_if("a", rbm(3, 2, 3), 2).unwrap(), 3);
    }

    #[test]
    fn snapshots_are_immutable_across_publishes() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        let before = reg.get("a").unwrap();
        reg.publish("a", rbm(3, 2, 99)).unwrap();
        // The old snapshot still points at the version-1 parameters.
        assert_eq!(before.version, 1);
        assert_eq!(*before.rbm, rbm(3, 2, 1));
        assert_ne!(*reg.get("a").unwrap().rbm, *before.rbm);
    }

    #[test]
    fn handles_share_state() {
        let reg = ModelRegistry::new();
        let other = reg.clone();
        reg.register("a", rbm(2, 2, 1)).unwrap();
        assert_eq!(other.names(), vec!["a".to_string()]);
        assert!(!other.is_empty());
    }

    #[test]
    fn history_retains_displaced_versions_up_to_the_limit() {
        let reg = ModelRegistry::with_history_limit(2);
        reg.register("a", rbm(3, 2, 1)).unwrap();
        for seed in 2..=5 {
            reg.publish("a", rbm(3, 2, seed)).unwrap();
        }
        // Versions 1..=5 published; only the last 2 displaced (3, 4)
        // plus the current (5) are retained.
        assert_eq!(reg.versions("a").unwrap(), vec![3, 4, 5]);
        assert!(reg.get_version("a", 2).is_none());
        assert_eq!(*reg.get_version("a", 3).unwrap(), rbm(3, 2, 3));
        assert_eq!(*reg.get_version("a", 5).unwrap(), rbm(3, 2, 5));
    }

    #[test]
    fn rollback_republishes_a_prior_version_as_a_new_one() {
        let reg = ModelRegistry::new();
        reg.register("a", rbm(3, 2, 1)).unwrap();
        reg.publish("a", rbm(3, 2, 2)).unwrap();
        reg.publish("a", rbm(3, 2, 3)).unwrap();
        // Roll back to v1: the version counter moves FORWARD.
        assert_eq!(reg.rollback("a", 1).unwrap(), 4);
        let snap = reg.get("a").unwrap();
        assert_eq!(snap.version, 4);
        assert_eq!(*snap.rbm, rbm(3, 2, 1));
        // The rolled-back-from v3 is itself retained: roll forward again.
        assert_eq!(reg.rollback("a", 3).unwrap(), 5);
        assert_eq!(*reg.get("a").unwrap().rbm, rbm(3, 2, 3));
        // Unknown versions are a typed error.
        assert_eq!(
            reg.rollback("a", 99),
            Err(ServeError::VersionNotFound {
                model: "a".into(),
                version: 99,
            })
        );
        assert_eq!(
            reg.rollback("missing", 1),
            Err(ServeError::ModelNotFound("missing".into()))
        );
    }

    #[test]
    fn zero_history_limit_disables_rollback_beyond_current() {
        let reg = ModelRegistry::with_history_limit(0);
        reg.register("a", rbm(3, 2, 1)).unwrap();
        reg.publish("a", rbm(3, 2, 2)).unwrap();
        assert_eq!(reg.versions("a").unwrap(), vec![2]);
        assert!(matches!(
            reg.rollback("a", 1),
            Err(ServeError::VersionNotFound { .. })
        ));
        // Rolling back to the current version still works (republish).
        assert_eq!(reg.rollback("a", 2).unwrap(), 3);
    }

    #[test]
    fn restore_chain_rebuilds_history_and_validates() {
        fn arc(m: usize, n: usize, seed: u64) -> Arc<Rbm> {
            Arc::new(rbm(m, n, seed))
        }
        let reg = ModelRegistry::new();
        reg.restore_chain("a", vec![(2, arc(3, 2, 2)), (5, arc(3, 2, 5))])
            .unwrap();
        assert_eq!(reg.get("a").unwrap().version, 5);
        assert_eq!(reg.versions("a").unwrap(), vec![2, 5]);
        assert_eq!(*reg.get_version("a", 2).unwrap(), rbm(3, 2, 2));
        // Duplicate name, empty chain, unordered versions, size drift.
        assert!(matches!(
            reg.restore_chain("a", vec![(1, arc(3, 2, 1))]),
            Err(ServeError::ModelExists(_))
        ));
        assert!(matches!(
            reg.restore_chain("b", vec![]),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            reg.restore_chain("b", vec![(5, arc(3, 2, 1)), (2, arc(3, 2, 2))]),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            reg.restore_chain("b", vec![(1, arc(3, 2, 1)), (2, arc(4, 2, 2))]),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn publish_hook_fires_on_every_publication_path() {
        let reg = ModelRegistry::new();
        let count = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        {
            let count = Arc::clone(&count);
            let seen = Arc::clone(&seen);
            reg.set_publish_hook(Some(Box::new(move |name, version| {
                count.fetch_add(1, Ordering::SeqCst);
                seen.lock().unwrap().push((name.to_string(), version));
            })));
        }
        reg.register("a", rbm(3, 2, 1)).unwrap();
        reg.publish("a", rbm(3, 2, 2)).unwrap();
        reg.rollback("a", 1).unwrap();
        reg.restore_chain("b", vec![(7, Arc::new(rbm(2, 2, 7)))])
            .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(
            *seen.lock().unwrap(),
            vec![
                ("a".to_string(), 1),
                ("a".to_string(), 2),
                ("a".to_string(), 3),
                ("b".to_string(), 7),
            ]
        );
        // Failed publications do not fire.
        let _ = reg.register("a", rbm(3, 2, 9));
        assert_eq!(count.load(Ordering::SeqCst), 4);
        // Uninstalling stops notifications.
        reg.set_publish_hook(None);
        reg.publish("a", rbm(3, 2, 5)).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }
}
