use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ember_rbm::{Rbm, RngStreams};
use ember_substrate::{HardwareCounters, ReplicableSubstrate};

use crate::batch::{self, ChainRequest};
use crate::{
    ModelRegistry, SampleRequest, SampleResponse, ServeError, TrainRequest, TrainResponse,
};

/// Builder for [`SamplingService`] (see there for the architecture).
///
/// Defaults: 2 shards, a 1024-row queue, coalescing on with batches of
/// up to 64 rows, master seed `0x5EED`.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    shards: usize,
    queue_rows: usize,
    max_coalesce_rows: usize,
    coalescing: bool,
    program_retention: bool,
    master_seed: u64,
    registry: Option<ModelRegistry>,
}

impl ServiceBuilder {
    /// Number of worker shards (threads), each owning its own substrate
    /// replicas.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Row-weighted capacity of the bounded ingress queue: a sample
    /// request weighs its `n_samples`, a training request weighs 1.
    /// Submissions beyond capacity are **rejected** with
    /// [`ServeError::QueueFull`], never blocked.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn queue_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "queue capacity must be at least one row");
        self.queue_rows = rows;
        self
    }

    /// Upper bound on the rows one coalesced batch may gather.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn max_coalesce_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "coalesce bound must be at least one row");
        self.max_coalesce_rows = rows;
        self
    }

    /// Enables or disables request coalescing. Disabled, every request
    /// is executed alone (the request-at-a-time baseline the
    /// `serve-throughput` bench measures against).
    #[must_use]
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Treats a replica's programmed weights as retained across jobs.
    ///
    /// By default the service assumes **no retention**: analog coupling
    /// weights live on leaky gate charges, so every job re-programs its
    /// replica — the paper's §3.2 accounting, where each minibatch pays
    /// the `m·n + m + n` programming words. Coalescing exists precisely
    /// to amortize that per-job cost over many requests. Enabling
    /// retention models an idealized substrate that re-programs only
    /// when the registry version moved; the sampled bits are identical
    /// either way (programming is deterministic).
    #[must_use]
    pub fn program_retention(mut self, retained: bool) -> Self {
        self.program_retention = retained;
        self
    }

    /// Master seed of the per-shard [`RngStreams`] lanes (used to seed
    /// requests submitted without an explicit seed).
    #[must_use]
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Serves models from an existing registry handle instead of a fresh
    /// one.
    #[must_use]
    pub fn registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Starts the worker shards and returns the running service.
    pub fn build(self) -> SamplingService {
        let registry = self.registry.unwrap_or_default();
        let core = Arc::new(Core {
            state: Mutex::new(QueueState {
                open: true,
                queued_rows: 0,
                queue: VecDeque::new(),
                controls: (0..self.shards).map(|_| Vec::new()).collect(),
            }),
            cv: Condvar::new(),
            stats: Mutex::new(StatsInner {
                shards: vec![ShardStats::default(); self.shards],
                models: BTreeMap::new(),
                rejected: 0,
            }),
            queue_rows: self.queue_rows,
            max_coalesce_rows: self.max_coalesce_rows,
            coalescing: self.coalescing,
            program_retention: self.program_retention,
        });
        let streams = RngStreams::new(self.master_seed);
        let workers = (0..self.shards)
            .map(|shard| {
                let core = Arc::clone(&core);
                let registry = registry.clone();
                let lane = streams.subfamily(shard as u64);
                std::thread::Builder::new()
                    .name(format!("ember-serve-shard-{shard}"))
                    .spawn(move || run_shard(&core, &registry, shard, lane))
                    .expect("spawn serving shard")
            })
            .collect();
        SamplingService {
            core,
            registry,
            workers,
        }
    }
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            shards: 2,
            queue_rows: 1024,
            max_coalesce_rows: 64,
            coalescing: true,
            program_retention: false,
            master_seed: 0x5EED,
            registry: None,
        }
    }
}

/// The in-flight side of a submitted request: await the response with
/// [`ResponseHandle::wait`].
#[derive(Debug)]
pub struct ResponseHandle<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> ResponseHandle<T> {
    /// Blocks until the executing shard answers.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// executing.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// Sampling-as-a-service over the [`Substrate`](ember_substrate::Substrate)
/// seam: a pool of worker shards serving named, versioned models to many
/// concurrent clients.
///
/// # Architecture
///
/// * A [`ModelRegistry`] holds the named, versioned [`Rbm`]s.
/// * [`SamplingService::register_model`] fabricates nothing itself: the
///   caller provides a **prototype substrate** (see
///   `ember_core::SubstrateSpec`), which is cloned into every shard via
///   [`ReplicableSubstrate::clone_boxed`] — all shards realize the same
///   physical machine, heterogeneous backends coexist per model.
/// * Requests enter a **bounded, row-weighted queue** (backpressure:
///   [`ServeError::QueueFull`] instead of blocking) and are answered
///   through per-request `mpsc` channels.
/// * An idle shard pops the queue head and **coalesces** every other
///   pending sample request with the same `(model, gibbs_steps)` key
///   into one batched kernel call
///   ([`batch::sample_rows`]) — the serving-side analogue of the paper's
///   per-minibatch §3.2 operation list: program once, quantize once,
///   whole-batch conditional samples, scatter rows back to callers.
///   Chains carry per-row RNG streams, so coalescing, sharding, and
///   scheduling are invisible in the sampled bits.
/// * Programming is paid **per coalesced group**, not per request: the
///   default volatile-weights model re-programs a replica for every job
///   (the paper's per-minibatch `m·n + m + n` word accounting — what
///   coalescing amortizes); [`ServiceBuilder::program_retention`]
///   switches to an idealized retained-weights substrate that
///   re-programs only when the registry version moves.
/// * [`TrainRequest`]s run CD-k on the shard's replica and publish the
///   update back to the registry as a new version.
///
/// Dropping the service closes the queue, drains the remaining work, and
/// joins the shards.
///
/// # Example
///
/// ```
/// use ember_serve::{SamplingService, SampleRequest};
/// use ember_core::{GsConfig, SubstrateSpec};
/// use ember_rbm::Rbm;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let rbm = Rbm::random(6, 3, 0.5, &mut rng);
/// let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
/// let service = SamplingService::builder().shards(2).build();
/// service.register_model("demo", rbm, proto).unwrap();
/// let resp = service
///     .sample(SampleRequest::new("demo").with_samples(4).with_seed(1))
///     .unwrap();
/// assert_eq!(resp.samples.dim(), (4, 6));
/// ```
#[derive(Debug)]
pub struct SamplingService {
    core: Arc<Core>,
    registry: ModelRegistry,
    workers: Vec<JoinHandle<()>>,
}

impl SamplingService {
    /// A builder with serving defaults.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The registry handle this service serves from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Registers `rbm` under `name` (version 1) and provisions every
    /// shard with a replica of `prototype`.
    ///
    /// The prototype must be fabricated at the model's size; fabricate
    /// it once (e.g. via `ember_core::SubstrateSpec::fabricate_for`) so
    /// all replicas share one fabricated identity.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] on size mismatch,
    /// [`ServeError::ModelExists`] on a duplicate name,
    /// [`ServeError::ServiceClosed`] after shutdown.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        rbm: Rbm,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Result<u64, ServeError> {
        let name = name.into();
        if prototype.visible_len() != rbm.visible_len()
            || prototype.hidden_len() != rbm.hidden_len()
        {
            return Err(ServeError::InvalidRequest(format!(
                "prototype is {}x{}, model `{name}` is {}x{}",
                prototype.visible_len(),
                prototype.hidden_len(),
                rbm.visible_len(),
                rbm.hidden_len(),
            )));
        }
        // Deep-copying a replica per shard is expensive (weights +
        // variation maps); do it before taking the service lock.
        let replicas = self.clone_per_shard(prototype);
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }
        let version = self.registry.register(name.clone(), rbm)?;
        Self::broadcast_replicas(&mut st, name, replicas);
        drop(st);
        self.core.cv.notify_all();
        Ok(version)
    }

    /// Provisions every shard with a replica of `prototype` for a model
    /// that is **already in the registry** — the path for serving a
    /// registry shared with another service
    /// ([`ServiceBuilder::registry`]), whose pre-existing entries this
    /// service has no replicas for. [`SamplingService::register_model`]
    /// is `ModelRegistry::register` + this.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name,
    /// [`ServeError::InvalidRequest`] on size mismatch,
    /// [`ServeError::ServiceClosed`] after shutdown.
    pub fn provision_model(
        &self,
        name: impl Into<String>,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let snapshot = self
            .registry
            .get(&name)
            .ok_or_else(|| ServeError::ModelNotFound(name.clone()))?;
        if prototype.visible_len() != snapshot.rbm.visible_len()
            || prototype.hidden_len() != snapshot.rbm.hidden_len()
        {
            return Err(ServeError::InvalidRequest(format!(
                "prototype is {}x{}, model `{name}` is {}x{}",
                prototype.visible_len(),
                prototype.hidden_len(),
                snapshot.rbm.visible_len(),
                snapshot.rbm.hidden_len(),
            )));
        }
        let replicas = self.clone_per_shard(prototype);
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }
        Self::broadcast_replicas(&mut st, name, replicas);
        drop(st);
        self.core.cv.notify_all();
        Ok(())
    }

    /// One replica per shard, cloned from `prototype` (which becomes the
    /// last shard's replica). Runs outside any lock — the deep copies
    /// depend on nothing but the prototype.
    fn clone_per_shard(
        &self,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Vec<Box<dyn ReplicableSubstrate>> {
        let mut replicas: Vec<Box<dyn ReplicableSubstrate>> = (1..self.workers.len())
            .map(|_| prototype.clone_boxed())
            .collect();
        replicas.push(prototype);
        replicas
    }

    /// Pushes an `AddModel` control (with its pre-cloned replica) into
    /// every shard inbox, under the queue lock so no shard can see a
    /// request for the model before its replica.
    fn broadcast_replicas(
        st: &mut QueueState,
        name: String,
        replicas: Vec<Box<dyn ReplicableSubstrate>>,
    ) {
        debug_assert_eq!(replicas.len(), st.controls.len());
        for (shard, replica) in replicas.into_iter().enumerate() {
            st.controls[shard].push(Control::AddModel {
                name: name.clone(),
                replica,
            });
        }
    }

    /// Submits a sample request; returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Validation errors ([`ServeError::ModelNotFound`],
    /// [`ServeError::InvalidRequest`]), [`ServeError::QueueFull`] under
    /// backpressure, [`ServeError::ServiceClosed`] after shutdown.
    pub fn submit(
        &self,
        request: SampleRequest,
    ) -> Result<ResponseHandle<SampleResponse>, ServeError> {
        let snapshot = self
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::ModelNotFound(request.model.clone()))?;
        if request.n_samples == 0 {
            return Err(ServeError::InvalidRequest("n_samples must be ≥ 1".into()));
        }
        if request.gibbs_steps == 0 {
            return Err(ServeError::InvalidRequest("gibbs_steps must be ≥ 1".into()));
        }
        if let Some(clamp) = &request.clamp {
            if clamp.len() != snapshot.rbm.visible_len() {
                return Err(ServeError::InvalidRequest(format!(
                    "clamp has {} levels, model `{}` has {} visible units",
                    clamp.len(),
                    request.model,
                    snapshot.rbm.visible_len(),
                )));
            }
            if clamp.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
                return Err(ServeError::InvalidRequest(
                    "clamp levels must lie in [0, 1]".into(),
                ));
            }
        }
        let weight = request.n_samples;
        let (tx, rx) = mpsc::channel();
        self.enqueue(weight, Queued::Sample(QueuedSample { request, reply: tx }))?;
        Ok(ResponseHandle { rx })
    }

    /// Convenience: [`SamplingService::submit`] + wait.
    pub fn sample(&self, request: SampleRequest) -> Result<SampleResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Submits a training request; returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Same classes as [`SamplingService::submit`].
    pub fn submit_train(
        &self,
        request: TrainRequest,
    ) -> Result<ResponseHandle<TrainResponse>, ServeError> {
        let snapshot = self
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::ModelNotFound(request.model.clone()))?;
        if request.data.ncols() != snapshot.rbm.visible_len() {
            return Err(ServeError::InvalidRequest(format!(
                "training data has {} columns, model `{}` has {} visible units",
                request.data.ncols(),
                request.model,
                snapshot.rbm.visible_len(),
            )));
        }
        if request.data.nrows() == 0 || request.batch_size == 0 || request.epochs == 0 {
            return Err(ServeError::InvalidRequest(
                "training needs data rows, batch_size ≥ 1 and epochs ≥ 1".into(),
            ));
        }
        let (tx, rx) = mpsc::channel();
        self.enqueue(1, Queued::Train(QueuedTrain { request, reply: tx }))?;
        Ok(ResponseHandle { rx })
    }

    /// Convenience: [`SamplingService::submit_train`] + wait.
    pub fn train(&self, request: TrainRequest) -> Result<TrainResponse, ServeError> {
        self.submit_train(request)?.wait()
    }

    /// A consistent snapshot of the service's accounting.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.core.stats.lock().expect("stats lock");
        ServiceStats {
            shards: inner.shards.clone(),
            models: inner.models.clone(),
            rejected: inner.rejected,
        }
    }

    fn enqueue(&self, weight: usize, item: Queued) -> Result<(), ServeError> {
        let weight = weight.max(1);
        if weight > self.core.queue_rows {
            // Heavier than the whole queue: no amount of retrying will
            // ever get this accepted, so it is a validation error, not
            // transient backpressure.
            return Err(ServeError::InvalidRequest(format!(
                "request weighs {weight} rows but the queue holds at most {}; \
                 split it or raise `ServiceBuilder::queue_rows`",
                self.core.queue_rows,
            )));
        }
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }
        if st.queued_rows + weight > self.core.queue_rows {
            drop(st);
            self.core.stats.lock().expect("stats lock").rejected += 1;
            return Err(ServeError::QueueFull);
        }
        st.queued_rows += weight;
        st.queue.push_back(item);
        drop(st);
        self.core.cv.notify_all();
        Ok(())
    }
}

impl Drop for SamplingService {
    /// Graceful shutdown: close the queue (new submissions fail), let
    /// the shards drain what is already queued, join them.
    fn drop(&mut self) {
        {
            let mut st = self.core.state.lock().expect("service lock");
            st.open = false;
        }
        self.core.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Per-shard accounting (one entry per worker in
/// [`ServiceStats::shards`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Sample requests answered.
    pub sample_requests: u64,
    /// Chain rows sampled.
    pub rows: u64,
    /// Batched kernel executions (coalesced groups).
    pub batches: u64,
    /// Rows of the largest coalesced batch executed.
    pub largest_batch: u64,
    /// Training requests executed.
    pub train_requests: u64,
    /// Hardware events of this shard's replicas.
    pub counters: HardwareCounters,
}

/// Per-model accounting (keyed by model name in
/// [`ServiceStats::models`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Sample requests answered for this model.
    pub sample_requests: u64,
    /// Chain rows sampled from this model.
    pub rows: u64,
    /// Training requests executed on this model.
    pub train_requests: u64,
    /// Hardware events spent serving this model, summed over shards.
    pub counters: HardwareCounters,
}

/// A snapshot of the service's per-shard and per-model accounting.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// One entry per worker shard.
    pub shards: Vec<ShardStats>,
    /// Aggregates per model name.
    pub models: BTreeMap<String, ModelStats>,
    /// Requests rejected by backpressure ([`ServeError::QueueFull`]).
    pub rejected: u64,
}

impl ServiceStats {
    /// Total chain rows sampled across shards.
    pub fn total_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.rows).sum()
    }

    /// Total batched kernel executions across shards.
    pub fn total_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Mean rows per batched execution — the realized coalescing factor
    /// (1.0 means every request ran alone).
    pub fn mean_coalesced_rows(&self) -> f64 {
        let batches = self.total_batches();
        if batches == 0 {
            0.0
        } else {
            self.total_rows() as f64 / batches as f64
        }
    }

    /// Total sampling calls served by the bit-packed kernel, summed
    /// over shards (see
    /// [`HardwareCounters::packed_kernel_calls`]).
    pub fn total_packed_kernel_calls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.packed_kernel_calls)
            .sum()
    }

    /// Total sampling calls served by the dense/scalar fallback kernel,
    /// summed over shards.
    pub fn total_dense_kernel_calls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.dense_kernel_calls)
            .sum()
    }

    /// Fraction of kernel-served sampling calls that ran bit-packed
    /// (`0.0` when no sampling call has executed yet) — the
    /// one-number health check that the serving hot path is actually
    /// exercising the fast kernel.
    pub fn packed_kernel_fraction(&self) -> f64 {
        let packed = self.total_packed_kernel_calls();
        let total = packed + self.total_dense_kernel_calls();
        if total == 0 {
            0.0
        } else {
            packed as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// Internals: the shared queue and the shard workers.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct Core {
    state: Mutex<QueueState>,
    cv: Condvar,
    stats: Mutex<StatsInner>,
    queue_rows: usize,
    max_coalesce_rows: usize,
    coalescing: bool,
    program_retention: bool,
}

#[derive(Debug)]
struct QueueState {
    open: bool,
    queued_rows: usize,
    queue: VecDeque<Queued>,
    /// Per-shard control inboxes (model provisioning), drained by a
    /// shard before it takes new work.
    controls: Vec<Vec<Control>>,
}

enum Control {
    AddModel {
        name: String,
        replica: Box<dyn ReplicableSubstrate>,
    },
}

impl std::fmt::Debug for Control {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Control::AddModel { name, replica } => f
                .debug_struct("AddModel")
                .field("name", name)
                .field("backend", &replica.name())
                .finish(),
        }
    }
}

#[derive(Debug)]
enum Queued {
    Sample(QueuedSample),
    Train(QueuedTrain),
}

#[derive(Debug)]
struct QueuedSample {
    request: SampleRequest,
    reply: mpsc::Sender<Result<SampleResponse, ServeError>>,
}

#[derive(Debug)]
struct QueuedTrain {
    request: TrainRequest,
    reply: mpsc::Sender<Result<TrainResponse, ServeError>>,
}

#[derive(Debug)]
struct StatsInner {
    shards: Vec<ShardStats>,
    models: BTreeMap<String, ModelStats>,
    rejected: u64,
}

enum Work {
    Controls(Vec<Control>),
    Sample(Vec<QueuedSample>),
    Train(QueuedTrain),
    Exit,
}

/// One provisioned model replica on a shard. `programmed_version` only
/// carries meaning when program retention is enabled; without it the
/// replica's analog weights are treated as volatile and every job
/// re-programs (`None` always forces reprogramming).
struct Replica {
    substrate: Box<dyn ReplicableSubstrate>,
    programmed_version: Option<u64>,
}

/// Blocks until this shard has work: control messages first, then the
/// queue head — coalesced with every pending same-`(model, gibbs_steps)`
/// sample request up to the row bound — then shutdown once the queue is
/// drained.
fn next_work(core: &Core, shard: usize) -> Work {
    let mut st = core.state.lock().expect("service lock");
    loop {
        if !st.controls[shard].is_empty() {
            return Work::Controls(std::mem::take(&mut st.controls[shard]));
        }
        match st.queue.pop_front() {
            Some(Queued::Train(train)) => {
                st.queued_rows -= 1;
                return Work::Train(train);
            }
            Some(Queued::Sample(first)) => {
                st.queued_rows -= first.request.n_samples.max(1);
                let mut members = vec![first];
                if core.coalescing {
                    // One forward pass over the queue (O(n), done while
                    // holding the service lock): take every same-key
                    // sample request up to the row bound, keep the rest
                    // in order.
                    let mut rows = members[0].request.n_samples.max(1);
                    let key_model = members[0].request.model.clone();
                    let key_steps = members[0].request.gibbs_steps;
                    let mut kept = VecDeque::with_capacity(st.queue.len());
                    while let Some(item) = st.queue.pop_front() {
                        match item {
                            Queued::Sample(s)
                                if rows < core.max_coalesce_rows
                                    && s.request.model == key_model
                                    && s.request.gibbs_steps == key_steps
                                    && rows + s.request.n_samples.max(1)
                                        <= core.max_coalesce_rows =>
                            {
                                let weight = s.request.n_samples.max(1);
                                st.queued_rows -= weight;
                                rows += weight;
                                members.push(s);
                            }
                            other => kept.push_back(other),
                        }
                    }
                    st.queue = kept;
                }
                return Work::Sample(members);
            }
            None => {
                if !st.open {
                    return Work::Exit;
                }
                st = core.cv.wait(st).expect("service lock");
            }
        }
    }
}

/// The shard worker: drains controls, serves coalesced sample groups and
/// training jobs until shutdown. `lane` is this shard's deterministic
/// RNG-stream family, consumed (one stream per event) to seed requests
/// submitted without an explicit seed.
fn run_shard(core: &Core, registry: &ModelRegistry, shard: usize, lane: RngStreams) {
    let mut replicas: HashMap<String, Replica> = HashMap::new();
    let mut lane_next: u64 = 0;
    let mut lane_seed = move || {
        let seed = lane.seed(lane_next);
        lane_next += 1;
        seed
    };
    loop {
        match next_work(core, shard) {
            Work::Exit => return,
            Work::Controls(controls) => {
                for Control::AddModel { name, replica } in controls {
                    replicas.insert(
                        name,
                        Replica {
                            substrate: replica,
                            programmed_version: None,
                        },
                    );
                }
            }
            Work::Sample(members) => {
                serve_sample_group(
                    core,
                    registry,
                    shard,
                    &mut replicas,
                    members,
                    &mut lane_seed,
                );
            }
            Work::Train(train) => {
                serve_train(core, registry, shard, &mut replicas, train, &mut lane_seed);
            }
        }
    }
}

/// Executes one coalesced group: program-if-stale, one batched kernel
/// run, scatter the rows back to the member requests.
fn serve_sample_group(
    core: &Core,
    registry: &ModelRegistry,
    shard: usize,
    replicas: &mut HashMap<String, Replica>,
    members: Vec<QueuedSample>,
    lane_seed: &mut impl FnMut() -> u64,
) {
    let model = members[0].request.model.clone();
    let gibbs_steps = members[0].request.gibbs_steps;
    let (Some(snapshot), Some(replica)) = (registry.get(&model), replicas.get_mut(&model)) else {
        // Registration is atomic (registry + provisioning under one
        // lock), so this means the model vanished mid-flight.
        for member in members {
            let _ = member
                .reply
                .send(Err(ServeError::ModelNotFound(model.clone())));
        }
        return;
    };

    // §3.2 steps 1–2, once per coalesced group: volatile analog weights
    // are re-programmed for every job unless retention is enabled and
    // the registry version has not moved.
    if replica.programmed_version != Some(snapshot.version) {
        replica.substrate.program(
            &snapshot.rbm.weights().view(),
            &snapshot.rbm.visible_bias().view(),
            &snapshot.rbm.hidden_bias().view(),
        );
        replica.programmed_version = core.program_retention.then_some(snapshot.version);
    }

    // Expand members to chain rows; remember each member's row range.
    let mut rows: Vec<ChainRequest> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(members.len());
    for member in &members {
        let master_seed = member.request.seed.unwrap_or_else(&mut *lane_seed);
        let start = rows.len();
        rows.extend(batch::expand_request(&member.request, master_seed));
        ranges.push((start, rows.len()));
    }

    let before = *replica.substrate.counters();
    let samples = batch::sample_rows(&mut *replica.substrate, &rows, gibbs_steps);
    let delta = replica.substrate.counters().delta_since(&before);

    // Account first, reply second: once a caller holds its response,
    // `SamplingService::stats` already reflects the work it paid for.
    {
        let mut stats = core.stats.lock().expect("stats lock");
        let shard_stats = &mut stats.shards[shard];
        shard_stats.sample_requests += members.len() as u64;
        shard_stats.rows += rows.len() as u64;
        shard_stats.batches += 1;
        shard_stats.largest_batch = shard_stats.largest_batch.max(rows.len() as u64);
        shard_stats.counters.merge(&delta);
        let model_stats = stats.models.entry(model).or_default();
        model_stats.sample_requests += members.len() as u64;
        model_stats.rows += rows.len() as u64;
        model_stats.counters.merge(&delta);
    }

    // Scatter rows back to the callers: each member's rows are a
    // contiguous range of the group result.
    for (member, (start, end)) in members.iter().zip(&ranges) {
        let own = samples.slice(ndarray::s![*start..*end, ..]).to_owned();
        let _ = member.reply.send(Ok(SampleResponse {
            samples: own,
            counters: delta,
            shard,
            model_version: snapshot.version,
            coalesced_rows: rows.len(),
        }));
    }
}

/// Executes one training job on this shard's replica and publishes the
/// updated parameters as a new model version.
fn serve_train(
    core: &Core,
    registry: &ModelRegistry,
    shard: usize,
    replicas: &mut HashMap<String, Replica>,
    train: QueuedTrain,
    lane_seed: &mut impl FnMut() -> u64,
) {
    let QueuedTrain { request, reply } = train;
    let (Some(snapshot), Some(replica)) = (
        registry.get(&request.model),
        replicas.get_mut(&request.model),
    ) else {
        let _ = reply.send(Err(ServeError::ModelNotFound(request.model.clone())));
        return;
    };

    let mut rbm = (*snapshot.rbm).clone();
    let mut rng = StdRng::seed_from_u64(request.seed.unwrap_or_else(&mut *lane_seed));
    let before = *replica.substrate.counters();
    let stats = request.trainer.train_with(
        &mut rbm,
        &request.data,
        request.batch_size,
        &mut *replica.substrate,
        request.epochs,
        &mut rng,
    );
    let delta = replica.substrate.counters().delta_since(&before);
    // The replica now holds the last *mid-training* programming; force a
    // reprogram from the published version before the next sample group.
    replica.programmed_version = None;

    // Compare-and-swap publish: if another shard published meanwhile
    // (concurrent training on the same model), fail with TrainConflict
    // instead of silently discarding that update — the caller re-trains
    // from the current snapshot.
    let result = registry
        .publish_if(&request.model, rbm, snapshot.version)
        .map(|new_version| TrainResponse {
            stats,
            new_version,
            shard,
            counters: delta,
        });

    {
        let mut service_stats = core.stats.lock().expect("stats lock");
        service_stats.shards[shard].train_requests += 1;
        service_stats.shards[shard].counters.merge(&delta);
        let model_stats = service_stats.models.entry(request.model).or_default();
        model_stats.train_requests += 1;
        model_stats.counters.merge(&delta);
    }
    let _ = reply.send(result);
}
