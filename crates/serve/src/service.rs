use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ember_core::recovery::verify_programming;
use ember_core::{GsConfig, RetryPolicy, SubstrateSpec};
use ember_rbm::{Rbm, RngStreams};
use ember_substrate::{HardwareCounters, ReplicableSubstrate, SubstrateFault};

use crate::batch::{self, ChainRequest};
use crate::registry::ModelSnapshot;
use crate::{
    LatencyHistogram, ModelRegistry, Priority, SampleRequest, SampleResponse, ServeError,
    TrainRequest, TrainResponse,
};

/// Queue-lane indices ([`Priority::Interactive`] /
/// [`Priority::Bulk`]); shards drain the lower index first.
const LANE_INTERACTIVE: usize = 0;
const LANE_BULK: usize = 1;
const LANES: usize = 2;

fn lane_index(priority: Priority) -> usize {
    match priority {
        Priority::Interactive => LANE_INTERACTIVE,
        Priority::Bulk => LANE_BULK,
    }
}

/// Builder for [`SamplingService`] (see there for the architecture).
///
/// Defaults: 2 shards, a 1024-row queue, coalescing on with batches of
/// up to 64 rows and a zero coalescing window (dispatch immediately),
/// master seed `0x5EED`, the default
/// [`RetryPolicy`] against substrate faults, and a circuit breaker that
/// degrades a model to the software fallback after 3 consecutive
/// retry-exhausted groups.
#[derive(Debug, Clone)]
pub struct ServiceBuilder {
    shards: usize,
    queue_rows: usize,
    max_coalesce_rows: usize,
    coalescing: bool,
    coalesce_window: Duration,
    program_retention: bool,
    master_seed: u64,
    retry_policy: RetryPolicy,
    breaker_threshold: u32,
    registry: Option<ModelRegistry>,
}

impl ServiceBuilder {
    /// Number of worker shards (threads), each owning its own substrate
    /// replicas.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// Row-weighted capacity of the bounded ingress queue: a sample
    /// request weighs its `n_samples`, a training request weighs 1.
    /// Submissions beyond capacity are **rejected** with
    /// [`ServeError::QueueFull`], never blocked.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn queue_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "queue capacity must be at least one row");
        self.queue_rows = rows;
        self
    }

    /// Upper bound on the rows one coalesced batch may gather.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn max_coalesce_rows(mut self, rows: usize) -> Self {
        assert!(rows >= 1, "coalesce bound must be at least one row");
        self.max_coalesce_rows = rows;
        self
    }

    /// Enables or disables request coalescing. Disabled, every request
    /// is executed alone (the request-at-a-time baseline the
    /// `serve-throughput` bench measures against).
    #[must_use]
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalescing = on;
        self
    }

    /// Bounded coalescing window: how long an idle shard may hold a
    /// popped sample group open, gathering same-`(model, gibbs_steps)`
    /// batch-mates, before it must dispatch. A group dispatches when it
    /// is **full** ([`ServiceBuilder::max_coalesce_rows`]) *or* when its
    /// oldest member has waited the window out since enqueue — so a lone
    /// request's latency is bounded by `window + service_time` instead
    /// of depending on unrelated traffic. The wait is deadline-aware
    /// (the shard never holds a member past its
    /// [`SampleRequest::deadline`] to gather company) and
    /// priority-aware (a `Bulk` group dispatches early the moment
    /// `Interactive` work arrives).
    ///
    /// `Duration::ZERO` (the default) dispatches immediately with
    /// whatever is already queued — the pre-window behavior. The window
    /// only shapes *scheduling*; sampled bits are unchanged either way.
    #[must_use]
    pub fn coalesce_window(mut self, window: Duration) -> Self {
        self.coalesce_window = window;
        self
    }

    /// Treats a replica's programmed weights as retained across jobs.
    ///
    /// By default the service assumes **no retention**: analog coupling
    /// weights live on leaky gate charges, so every job re-programs its
    /// replica — the paper's §3.2 accounting, where each minibatch pays
    /// the `m·n + m + n` programming words. Coalescing exists precisely
    /// to amortize that per-job cost over many requests. Enabling
    /// retention models an idealized substrate that re-programs only
    /// when the registry version moved; the sampled bits are identical
    /// either way (programming is deterministic).
    #[must_use]
    pub fn program_retention(mut self, retained: bool) -> Self {
        self.program_retention = retained;
        self
    }

    /// Master seed of the per-shard [`RngStreams`] lanes (used to seed
    /// requests submitted without an explicit seed, and the shards'
    /// backoff jitter).
    #[must_use]
    pub fn master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Recovery schedule against [`SubstrateFault`]s: how many times a
    /// shard **reprograms and re-runs** a faulted group before giving
    /// up, and how it backs off in between. Retried chains recreate
    /// their RNG streams from their seeds, so a successful retry is
    /// bit-identical to a fault-free run. `RetryPolicy::none()` fails
    /// fast on the first fault.
    #[must_use]
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Consecutive retry-exhausted groups on one model before its
    /// circuit breaker trips and the model **degrades** to each shard's
    /// deterministic `SoftwareGibbs` fallback (responses then carry
    /// [`SampleResponse::degraded`], and the model is listed in
    /// [`ServiceStats::degraded`]).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    #[must_use]
    pub fn breaker_threshold(mut self, threshold: u32) -> Self {
        assert!(threshold >= 1, "breaker threshold must be at least 1");
        self.breaker_threshold = threshold;
        self
    }

    /// Serves models from an existing registry handle instead of a fresh
    /// one.
    #[must_use]
    pub fn registry(mut self, registry: ModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Starts the worker shards and returns the running service.
    pub fn build(self) -> SamplingService {
        let registry = self.registry.unwrap_or_default();
        let core = Arc::new(Core {
            state: Mutex::new(QueueState {
                open: true,
                queued_rows: 0,
                in_flight: 0,
                lanes: std::array::from_fn(|_| VecDeque::new()),
                controls: (0..self.shards).map(|_| Vec::new()).collect(),
            }),
            cv: Condvar::new(),
            stats: Mutex::new(StatsInner {
                shards: vec![ShardStats::default(); self.shards],
                models: BTreeMap::new(),
                rejected: 0,
                admission_rejected: 0,
                shed_bulk: 0,
            }),
            breakers: Mutex::new(BTreeMap::new()),
            prototypes: Mutex::new(HashMap::new()),
            queue_rows: self.queue_rows,
            max_coalesce_rows: self.max_coalesce_rows,
            coalescing: self.coalescing,
            coalesce_window: self.coalesce_window,
            program_retention: self.program_retention,
            retry_policy: self.retry_policy,
            breaker_threshold: self.breaker_threshold,
        });
        let streams = RngStreams::new(self.master_seed);
        let workers = (0..self.shards)
            .map(|shard| {
                let core = Arc::clone(&core);
                let registry = registry.clone();
                let lane = streams.subfamily(shard as u64);
                std::thread::Builder::new()
                    .name(format!("ember-serve-shard-{shard}"))
                    .spawn(move || run_shard(&core, &registry, shard, lane))
                    .expect("spawn serving shard")
            })
            .collect();
        SamplingService {
            core,
            registry,
            workers,
        }
    }
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        ServiceBuilder {
            shards: 2,
            queue_rows: 1024,
            max_coalesce_rows: 64,
            coalescing: true,
            coalesce_window: Duration::ZERO,
            program_retention: false,
            master_seed: 0x5EED,
            retry_policy: RetryPolicy::default(),
            breaker_threshold: 3,
            registry: None,
        }
    }
}

/// The in-flight side of a submitted request: await the response with
/// [`ResponseHandle::wait`].
#[derive(Debug)]
pub struct ResponseHandle<T> {
    rx: mpsc::Receiver<Result<T, ServeError>>,
}

impl<T> ResponseHandle<T> {
    /// Blocks until the executing shard answers.
    pub fn wait(self) -> Result<T, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Disconnected))
    }

    /// Non-blocking poll: `None` while the request is still queued or
    /// executing.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

/// The outcome of [`SamplingService::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// `true` if every queued and in-flight request completed within the
    /// drain deadline; `false` if the deadline expired first.
    pub drained: bool,
    /// Requests still queued at the deadline, each answered with a typed
    /// [`ServeError::ServiceClosed`] instead of being executed (always
    /// `0` when `drained`).
    pub aborted_requests: usize,
}

/// Sampling-as-a-service over the [`Substrate`](ember_substrate::Substrate)
/// seam: a pool of worker shards serving named, versioned models to many
/// concurrent clients.
///
/// # Architecture
///
/// * A [`ModelRegistry`] holds the named, versioned [`Rbm`]s.
/// * [`SamplingService::register_model`] fabricates nothing itself: the
///   caller provides a **prototype substrate** (see
///   `ember_core::SubstrateSpec`), which is cloned into every shard via
///   [`ReplicableSubstrate::clone_boxed`] — all shards realize the same
///   physical machine, heterogeneous backends coexist per model. The
///   service retains its own prototype clone for shard recovery.
/// * Requests enter a **bounded, row-weighted queue** (backpressure:
///   [`ServeError::QueueFull`] with a drain-time `retry_after` hint
///   instead of blocking) and are answered through per-request `mpsc`
///   channels.
/// * An idle shard pops the queue head and **coalesces** every other
///   pending sample request with the same `(model, gibbs_steps)` key
///   into one batched kernel call
///   ([`batch::try_sample_rows`]) — the serving-side analogue of the
///   paper's per-minibatch §3.2 operation list: program once, quantize
///   once, whole-batch conditional samples, scatter rows back to
///   callers. Chains carry per-row RNG streams, so coalescing, sharding,
///   and scheduling are invisible in the sampled bits.
/// * Programming is paid **per coalesced group**, not per request: the
///   default volatile-weights model re-programs a replica for every job
///   (the paper's per-minibatch `m·n + m + n` word accounting — what
///   coalescing amortizes); [`ServiceBuilder::program_retention`]
///   switches to an idealized retained-weights substrate that
///   re-programs only when the registry version moves.
/// * [`TrainRequest`]s run CD-k on the shard's replica and publish the
///   update back to the registry as a new version.
///
/// # Fault posture
///
/// The substrate is *analog hardware* and treated as fallible
/// throughout:
///
/// * Every group runs through the fallible seam (`try_program` /
///   `try_sample_*`), with readback-checksum verification of
///   programmings and a binary sanity screen on every sampled batch.
/// * A faulted group is **reprogrammed and retried** under the
///   builder's [`RetryPolicy`] (volatile weights: the upset that broke
///   the read may have disturbed the couplings). Retries recreate every
///   chain RNG from its seed, so a successful retry returns exactly the
///   fault-free bits. Exhausted retries answer every member with a
///   typed [`ServeError::SubstrateFault`].
/// * Consecutive exhausted groups trip a **per-model circuit breaker**
///   ([`ServiceBuilder::breaker_threshold`]): the model degrades to a
///   deterministic per-shard `SoftwareGibbs` fallback (responses carry
///   [`SampleResponse::degraded`]; [`ServiceStats::degraded`] lists the
///   model).
/// * Workers run every request under `catch_unwind`: a panicking
///   request answers **all** its group members with
///   [`ServeError::ShardRestarted`] — nobody hangs on a dropped reply
///   channel — and the shard re-provisions its replicas from the
///   retained prototypes before taking the next job
///   ([`ShardStats::restarts`]).
/// * Requests past their [`SampleRequest::deadline`] are **shed** with
///   [`ServeError::DeadlineExceeded`] before any substrate time is
///   spent ([`ShardStats::shed_requests`]).
/// * [`SamplingService::shutdown`] drains within an explicit deadline;
///   dropping the service still drains everything, without a bound.
///
/// # Example
///
/// ```
/// use ember_serve::{SamplingService, SampleRequest};
/// use ember_core::{GsConfig, SubstrateSpec};
/// use ember_rbm::Rbm;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let rbm = Rbm::random(6, 3, 0.5, &mut rng);
/// let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
/// let service = SamplingService::builder().shards(2).build();
/// service.register_model("demo", rbm, proto).unwrap();
/// let resp = service
///     .sample(SampleRequest::new("demo").with_samples(4).with_seed(1))
///     .unwrap();
/// assert_eq!(resp.samples.dim(), (4, 6));
/// ```
#[derive(Debug)]
pub struct SamplingService {
    core: Arc<Core>,
    registry: ModelRegistry,
    workers: Vec<JoinHandle<()>>,
}

impl SamplingService {
    /// A builder with serving defaults.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The registry handle this service serves from.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Registers `rbm` under `name` (version 1) and provisions every
    /// shard with a replica of `prototype`.
    ///
    /// The prototype must be fabricated at the model's size; fabricate
    /// it once (e.g. via `ember_core::SubstrateSpec::fabricate_for`) so
    /// all replicas share one fabricated identity. The service keeps its
    /// own clone of the prototype to re-provision a shard that dies
    /// mid-request.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] on size mismatch,
    /// [`ServeError::ModelExists`] on a duplicate name,
    /// [`ServeError::ServiceClosed`] after shutdown.
    pub fn register_model(
        &self,
        name: impl Into<String>,
        rbm: Rbm,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Result<u64, ServeError> {
        let name = name.into();
        if prototype.visible_len() != rbm.visible_len()
            || prototype.hidden_len() != rbm.hidden_len()
        {
            return Err(ServeError::InvalidRequest(format!(
                "prototype is {}x{}, model `{name}` is {}x{}",
                prototype.visible_len(),
                prototype.hidden_len(),
                rbm.visible_len(),
                rbm.hidden_len(),
            )));
        }
        // Deep-copying a replica per shard is expensive (weights +
        // variation maps); do it before taking the service lock. One
        // extra clone is retained for shard recovery.
        let retained = prototype.clone_boxed();
        let replicas = self.clone_per_shard(prototype);
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }
        let version = self.registry.register(name.clone(), rbm)?;
        self.core
            .prototypes
            .lock()
            .expect("prototype lock")
            .insert(name.clone(), retained);
        Self::broadcast_replicas(&mut st, name, replicas);
        drop(st);
        self.core.cv.notify_all();
        Ok(version)
    }

    /// Provisions every shard with a replica of `prototype` for a model
    /// that is **already in the registry** — the path for serving a
    /// registry shared with another service
    /// ([`ServiceBuilder::registry`]), whose pre-existing entries this
    /// service has no replicas for. [`SamplingService::register_model`]
    /// is `ModelRegistry::register` + this.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name,
    /// [`ServeError::InvalidRequest`] on size mismatch,
    /// [`ServeError::ServiceClosed`] after shutdown.
    pub fn provision_model(
        &self,
        name: impl Into<String>,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Result<(), ServeError> {
        let name = name.into();
        let snapshot = self
            .registry
            .get(&name)
            .ok_or_else(|| ServeError::ModelNotFound(name.clone()))?;
        if prototype.visible_len() != snapshot.rbm.visible_len()
            || prototype.hidden_len() != snapshot.rbm.hidden_len()
        {
            return Err(ServeError::InvalidRequest(format!(
                "prototype is {}x{}, model `{name}` is {}x{}",
                prototype.visible_len(),
                prototype.hidden_len(),
                snapshot.rbm.visible_len(),
                snapshot.rbm.hidden_len(),
            )));
        }
        let retained = prototype.clone_boxed();
        let replicas = self.clone_per_shard(prototype);
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }
        self.core
            .prototypes
            .lock()
            .expect("prototype lock")
            .insert(name.clone(), retained);
        Self::broadcast_replicas(&mut st, name, replicas);
        drop(st);
        self.core.cv.notify_all();
        Ok(())
    }

    /// Republishes the retained parameters of `version` of `model` as a
    /// new version through the registry's CAS publish path (see
    /// [`ModelRegistry::rollback`]). Serving shards pick up the rolled
    /// back parameters exactly like any other publish — per-request
    /// snapshot reads mean no in-flight request ever sees a torn
    /// update, and responses report the new (higher) version.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for an unregistered name,
    /// [`ServeError::VersionNotFound`] if `version` fell out of the
    /// registry's bounded history.
    pub fn rollback(&self, model: &str, version: u64) -> Result<u64, ServeError> {
        self.registry.rollback(model, version)
    }

    /// One replica per shard, cloned from `prototype` (which becomes the
    /// last shard's replica). Runs outside any lock — the deep copies
    /// depend on nothing but the prototype.
    fn clone_per_shard(
        &self,
        prototype: Box<dyn ReplicableSubstrate>,
    ) -> Vec<Box<dyn ReplicableSubstrate>> {
        let mut replicas: Vec<Box<dyn ReplicableSubstrate>> = (1..self.workers.len())
            .map(|_| prototype.clone_boxed())
            .collect();
        replicas.push(prototype);
        replicas
    }

    /// Pushes an `AddModel` control (with its pre-cloned replica) into
    /// every shard inbox, under the queue lock so no shard can see a
    /// request for the model before its replica.
    fn broadcast_replicas(
        st: &mut QueueState,
        name: String,
        replicas: Vec<Box<dyn ReplicableSubstrate>>,
    ) {
        debug_assert_eq!(replicas.len(), st.controls.len());
        for (shard, replica) in replicas.into_iter().enumerate() {
            st.controls[shard].push(Control::AddModel {
                name: name.clone(),
                replica,
            });
        }
    }

    /// Submits a sample request; returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Validation errors ([`ServeError::ModelNotFound`],
    /// [`ServeError::InvalidRequest`]), [`ServeError::QueueFull`] under
    /// backpressure, [`ServeError::Overloaded`] when admission control
    /// projects (from the measured per-row service rate) that the
    /// request's still-future deadline cannot be met,
    /// [`ServeError::ServiceClosed`] after shutdown.
    pub fn submit(
        &self,
        request: SampleRequest,
    ) -> Result<ResponseHandle<SampleResponse>, ServeError> {
        let snapshot = self
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::ModelNotFound(request.model.clone()))?;
        if request.n_samples == 0 {
            return Err(ServeError::InvalidRequest("n_samples must be ≥ 1".into()));
        }
        if request.gibbs_steps == 0 {
            return Err(ServeError::InvalidRequest("gibbs_steps must be ≥ 1".into()));
        }
        if let Some(clamp) = &request.clamp {
            if clamp.len() != snapshot.rbm.visible_len() {
                return Err(ServeError::InvalidRequest(format!(
                    "clamp has {} levels, model `{}` has {} visible units",
                    clamp.len(),
                    request.model,
                    snapshot.rbm.visible_len(),
                )));
            }
            if clamp.iter().any(|&x| !(0.0..=1.0).contains(&x)) {
                return Err(ServeError::InvalidRequest(
                    "clamp levels must lie in [0, 1]".into(),
                ));
            }
        }
        let weight = request.n_samples;
        let priority = request.priority;
        let deadline = request.deadline;
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            weight,
            priority,
            deadline,
            Queued::Sample(QueuedSample {
                request,
                reply: tx,
                enqueued_at: Instant::now(),
            }),
        )?;
        Ok(ResponseHandle { rx })
    }

    /// Convenience: [`SamplingService::submit`] + wait.
    pub fn sample(&self, request: SampleRequest) -> Result<SampleResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Submits a training request; returns immediately with a handle.
    ///
    /// # Errors
    ///
    /// Same classes as [`SamplingService::submit`].
    pub fn submit_train(
        &self,
        request: TrainRequest,
    ) -> Result<ResponseHandle<TrainResponse>, ServeError> {
        let snapshot = self
            .registry
            .get(&request.model)
            .ok_or_else(|| ServeError::ModelNotFound(request.model.clone()))?;
        if request.data.ncols() != snapshot.rbm.visible_len() {
            return Err(ServeError::InvalidRequest(format!(
                "training data has {} columns, model `{}` has {} visible units",
                request.data.ncols(),
                request.model,
                snapshot.rbm.visible_len(),
            )));
        }
        if request.data.nrows() == 0 || request.batch_size == 0 || request.epochs == 0 {
            return Err(ServeError::InvalidRequest(
                "training needs data rows, batch_size ≥ 1 and epochs ≥ 1".into(),
            ));
        }
        let (tx, rx) = mpsc::channel();
        // Training rides the Bulk lane: it is throughput work, drained
        // after interactive sampling and shed first under pressure.
        self.enqueue(
            1,
            Priority::Bulk,
            None,
            Queued::Train(QueuedTrain {
                request,
                reply: tx,
                enqueued_at: Instant::now(),
            }),
        )?;
        Ok(ResponseHandle { rx })
    }

    /// Convenience: [`SamplingService::submit_train`] + wait.
    pub fn train(&self, request: TrainRequest) -> Result<TrainResponse, ServeError> {
        self.submit_train(request)?.wait()
    }

    /// A consistent snapshot of the service's accounting.
    pub fn stats(&self) -> ServiceStats {
        let inner = self.core.stats.lock().expect("stats lock");
        let degraded = self
            .core
            .breakers
            .lock()
            .expect("breaker lock")
            .iter()
            .filter(|(_, b)| b.tripped)
            .map(|(name, _)| name.clone())
            .collect();
        ServiceStats {
            shards: inner.shards.clone(),
            models: inner.models.clone(),
            rejected: inner.rejected,
            admission_rejected: inner.admission_rejected,
            shed_bulk: inner.shed_bulk,
            degraded,
        }
    }

    /// Graceful drain: closes the queue (new submissions fail with
    /// [`ServeError::ServiceClosed`]), waits up to `deadline` for every
    /// queued and in-flight request to complete, then joins the shards.
    ///
    /// If the deadline expires first, requests **still queued** are
    /// answered with a typed [`ServeError::ServiceClosed`] (counted in
    /// [`DrainReport::aborted_requests`]) instead of being executed;
    /// requests already executing on a shard are allowed to finish —
    /// the substrate seam has no preemption — so the final join may
    /// outlast the deadline by up to one group's compute time.
    ///
    /// Dropping the service instead drains *everything* with no bound.
    pub fn shutdown(mut self, deadline: Duration) -> DrainReport {
        let deadline_at = Instant::now() + deadline;
        {
            let mut st = self.core.state.lock().expect("service lock");
            st.open = false;
        }
        self.core.cv.notify_all();

        let mut st = self.core.state.lock().expect("service lock");
        let drained = loop {
            if st.lanes.iter().all(|lane| lane.is_empty()) && st.in_flight == 0 {
                break true;
            }
            let now = Instant::now();
            if now >= deadline_at {
                break false;
            }
            let (guard, _) = self
                .core
                .cv
                .wait_timeout(st, deadline_at - now)
                .expect("service lock");
            st = guard;
        };
        let mut aborted = 0usize;
        if !drained {
            for lane in &mut st.lanes {
                while let Some(item) = lane.pop_front() {
                    aborted += 1;
                    item.reject(ServeError::ServiceClosed);
                }
            }
            st.queued_rows = 0;
        }
        drop(st);
        self.core.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            drained,
            aborted_requests: aborted,
        }
    }

    fn enqueue(
        &self,
        weight: usize,
        priority: Priority,
        deadline: Option<Instant>,
        item: Queued,
    ) -> Result<(), ServeError> {
        let weight = weight.max(1);
        if weight > self.core.queue_rows {
            // Heavier than the whole queue: no amount of retrying will
            // ever get this accepted, so it is a validation error, not
            // transient backpressure.
            return Err(ServeError::InvalidRequest(format!(
                "request weighs {weight} rows but the queue holds at most {}; \
                 split it or raise `ServiceBuilder::queue_rows`",
                self.core.queue_rows,
            )));
        }
        let shards = self.workers.len().max(1);
        // Measured per-row service rate, read before the queue lock (a
        // slightly stale estimate is fine; the lock order stays
        // state-free → stats-free).
        let per_row = per_row_nanos(&self.core.stats.lock().expect("stats lock"));
        let mut st = self.core.state.lock().expect("service lock");
        if !st.open {
            return Err(ServeError::ServiceClosed);
        }

        // Admission control: a request whose deadline is still in the
        // future but provably unreachable — the backlog ahead of it plus
        // its own rows, at the measured per-row rate, projects past the
        // deadline — is refused *now*, before it wastes queue space and
        // substrate time. An already-expired deadline is NOT refused
        // here: it flows to the shard's shed path and keeps its
        // established [`ServeError::DeadlineExceeded`] answer.
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if deadline > now {
                let projected = drain_estimate(st.queued_rows + weight, per_row, shards);
                if now + projected > deadline {
                    let retry_after = drain_estimate(st.queued_rows, per_row, shards);
                    drop(st);
                    self.core
                        .stats
                        .lock()
                        .expect("stats lock")
                        .admission_rejected += 1;
                    return Err(ServeError::Overloaded { retry_after });
                }
            }
        }

        // Sustained-overload shedder: before an Interactive request is
        // turned away, evict queued Bulk work (newest first, so the
        // Bulk lane still drains FIFO) until there is room. Evicted
        // requests get a typed `Overloaded` with the same drain hint a
        // rejection would carry.
        let mut shed_bulk = 0u64;
        if st.queued_rows + weight > self.core.queue_rows && priority == Priority::Interactive {
            let retry_after = drain_estimate(st.queued_rows, per_row, shards);
            while st.queued_rows + weight > self.core.queue_rows {
                let Some(victim) = st.lanes[LANE_BULK].pop_back() else {
                    break;
                };
                st.queued_rows -= victim.weight();
                shed_bulk += 1;
                victim.reject(ServeError::Overloaded { retry_after });
            }
        }
        if st.queued_rows + weight > self.core.queue_rows {
            let backlog_rows = st.queued_rows;
            drop(st);
            let mut stats = self.core.stats.lock().expect("stats lock");
            stats.rejected += 1;
            stats.shed_bulk += shed_bulk;
            let retry_after = drain_estimate(backlog_rows, per_row_nanos(&stats), shards);
            return Err(ServeError::QueueFull { retry_after });
        }
        st.queued_rows += weight;
        st.lanes[lane_index(priority)].push_back(item);
        drop(st);
        if shed_bulk > 0 {
            self.core.stats.lock().expect("stats lock").shed_bulk += shed_bulk;
        }
        self.core.cv.notify_all();
        Ok(())
    }
}

impl Drop for SamplingService {
    /// Graceful shutdown: close the queue (new submissions fail), let
    /// the shards drain what is already queued, join them. For a
    /// *bounded* drain use [`SamplingService::shutdown`].
    fn drop(&mut self) {
        {
            let mut st = self.core.state.lock().expect("service lock");
            st.open = false;
        }
        self.core.cv.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Observed mean per-row service time in nanoseconds — the measured
/// rate behind both the `retry_after` hints and admission control.
/// Before any row has been served, assumes 1 ms/row; floored at 1 µs.
fn per_row_nanos(stats: &StatsInner) -> u64 {
    let (rows, busy) = stats
        .shards
        .iter()
        .fold((0u64, 0u64), |(r, b), s| (r + s.rows, b + s.busy_nanos));
    match busy.checked_div(rows) {
        None => 1_000_000,
        Some(per_row) => per_row.max(1_000),
    }
}

/// Estimated time for `backlog_rows` to drain at `per_row` nanoseconds
/// per row across `shards` workers; floored at 100 µs so the hint is
/// never a busy-loop invitation.
fn drain_estimate(backlog_rows: usize, per_row: u64, shards: usize) -> Duration {
    let nanos = (backlog_rows as u64).saturating_mul(per_row) / shards.max(1) as u64;
    Duration::from_nanos(nanos.max(100_000))
}

/// Per-shard accounting (one entry per worker in
/// [`ServiceStats::shards`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ShardStats {
    /// Sample requests answered.
    pub sample_requests: u64,
    /// Chain rows sampled.
    pub rows: u64,
    /// Batched kernel executions (coalesced groups).
    pub batches: u64,
    /// Rows of the largest coalesced batch executed.
    pub largest_batch: u64,
    /// Training requests executed.
    pub train_requests: u64,
    /// Times this shard died mid-request (panic) and was re-provisioned
    /// from the retained prototypes.
    pub restarts: u64,
    /// Requests shed past their deadline without substrate work.
    pub shed_requests: u64,
    /// Wall-clock nanoseconds this shard spent executing sample groups
    /// (drives the [`ServeError::QueueFull`] `retry_after` hint and
    /// admission control's drain projection).
    pub busy_nanos: u64,
    /// Hardware events of this shard's replicas.
    pub counters: HardwareCounters,
    /// Queue-to-answer latency of every sample request this shard
    /// answered successfully (enqueue → response sent), log-bucketed.
    /// Shed, faulted, and rejected requests are not recorded here — the
    /// histogram describes what accepted callers experienced.
    pub latency: LatencyHistogram,
}

/// Per-model accounting (keyed by model name in
/// [`ServiceStats::models`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ModelStats {
    /// Sample requests answered for this model.
    pub sample_requests: u64,
    /// Chain rows sampled from this model.
    pub rows: u64,
    /// Training requests executed on this model.
    pub train_requests: u64,
    /// Sample requests answered by the software fallback after the
    /// model's circuit breaker tripped.
    pub degraded_requests: u64,
    /// Sample requests answered with [`ServeError::SubstrateFault`]
    /// after the retry budget was exhausted.
    pub failed_requests: u64,
    /// Hardware events spent serving this model, summed over shards
    /// (fault and retry totals live in
    /// [`HardwareCounters::substrate_faults`] /
    /// [`HardwareCounters::recovery_retries`] and friends).
    pub counters: HardwareCounters,
}

/// A snapshot of the service's per-shard and per-model accounting —
/// `Serialize` so the HTTP edge's `GET /v1/stats` emits it as JSON
/// directly (and `Deserialize` so clients get the typed snapshot back).
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// One entry per worker shard.
    pub shards: Vec<ShardStats>,
    /// Aggregates per model name.
    pub models: BTreeMap<String, ModelStats>,
    /// Requests rejected by backpressure ([`ServeError::QueueFull`]).
    pub rejected: u64,
    /// Requests refused at enqueue by admission control
    /// ([`ServeError::Overloaded`]): their still-future deadline was
    /// projected unreachable at the measured per-row service rate.
    pub admission_rejected: u64,
    /// Queued Bulk requests evicted by the sustained-overload shedder
    /// to admit Interactive work (answered with
    /// [`ServeError::Overloaded`]).
    pub shed_bulk: u64,
    /// Models whose circuit breaker has tripped: they are currently
    /// served by the `SoftwareGibbs` fallback, not their registered
    /// substrate.
    pub degraded: Vec<String>,
}

impl ServiceStats {
    /// Total chain rows sampled across shards.
    pub fn total_rows(&self) -> u64 {
        self.shards.iter().map(|s| s.rows).sum()
    }

    /// Total batched kernel executions across shards.
    pub fn total_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Mean rows per batched execution — the realized coalescing factor
    /// (1.0 means every request ran alone).
    pub fn mean_coalesced_rows(&self) -> f64 {
        let batches = self.total_batches();
        if batches == 0 {
            0.0
        } else {
            self.total_rows() as f64 / batches as f64
        }
    }

    /// Total sampling calls served by the bit-packed kernel, summed
    /// over shards (see
    /// [`HardwareCounters::packed_kernel_calls`]).
    pub fn total_packed_kernel_calls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.packed_kernel_calls)
            .sum()
    }

    /// Total sampling calls served by the dense/scalar fallback kernel,
    /// summed over shards.
    pub fn total_dense_kernel_calls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.dense_kernel_calls)
            .sum()
    }

    /// Fraction of kernel-served sampling calls that ran bit-packed
    /// (`0.0` when no sampling call has executed yet) — the
    /// one-number health check that the serving hot path is actually
    /// exercising the fast kernel.
    pub fn packed_kernel_fraction(&self) -> f64 {
        let packed = self.total_packed_kernel_calls();
        let total = packed + self.total_dense_kernel_calls();
        if total == 0 {
            0.0
        } else {
            packed as f64 / total as f64
        }
    }

    /// Total sampling calls whose inner field loops executed on a
    /// vector SIMD tier (AVX2/NEON), summed over shards (see
    /// [`HardwareCounters::simd_kernel_calls`]).
    pub fn total_simd_kernel_calls(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.simd_kernel_calls)
            .sum()
    }

    /// Fraction of kernel-served sampling calls that ran on a vector
    /// SIMD tier (`0.0` when no sampling call has executed yet) — the
    /// deployment health check that this box is on the fast tier and
    /// not silently running the scalar fallback (`1.0` on an AVX2/NEON
    /// host, `0.0` under `EMBER_FORCE_SCALAR`).
    pub fn simd_kernel_fraction(&self) -> f64 {
        let total = self.total_packed_kernel_calls() + self.total_dense_kernel_calls();
        if total == 0 {
            0.0
        } else {
            self.total_simd_kernel_calls() as f64 / total as f64
        }
    }

    /// Total shard restarts (mid-request panics recovered by
    /// re-provisioning).
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Total requests shed past their deadline.
    pub fn total_shed_requests(&self) -> u64 {
        self.shards.iter().map(|s| s.shed_requests).sum()
    }

    /// Total substrate fault events observed across shards (hard
    /// faults + corrupted programmings + corrupted reads).
    pub fn total_fault_events(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.total_fault_events())
            .sum()
    }

    /// Total recovery retries executed across shards.
    pub fn total_recovery_retries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.recovery_retries)
            .sum()
    }

    /// Service-wide queue-to-answer latency: every shard's histogram
    /// merged. `latency().p99()` is the one number the tail-latency
    /// trajectory tracks.
    pub fn latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.shards {
            merged.merge(&shard.latency);
        }
        merged
    }
}

// ---------------------------------------------------------------------
// Internals: the shared queue and the shard workers.
// ---------------------------------------------------------------------

struct Core {
    state: Mutex<QueueState>,
    cv: Condvar,
    stats: Mutex<StatsInner>,
    /// Per-model circuit-breaker state.
    breakers: Mutex<BTreeMap<String, Breaker>>,
    /// Retained prototype per model, for re-provisioning a restarted
    /// shard.
    prototypes: Mutex<HashMap<String, Box<dyn ReplicableSubstrate>>>,
    queue_rows: usize,
    max_coalesce_rows: usize,
    coalescing: bool,
    coalesce_window: Duration,
    program_retention: bool,
    retry_policy: RetryPolicy,
    breaker_threshold: u32,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("queue_rows", &self.queue_rows)
            .field("max_coalesce_rows", &self.max_coalesce_rows)
            .field("coalescing", &self.coalescing)
            .field("coalesce_window", &self.coalesce_window)
            .field("program_retention", &self.program_retention)
            .field("retry_policy", &self.retry_policy)
            .field("breaker_threshold", &self.breaker_threshold)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct QueueState {
    open: bool,
    queued_rows: usize,
    /// Requests popped by a shard but not yet answered — what a bounded
    /// drain waits on besides the queue itself.
    in_flight: usize,
    /// One FIFO lane per [`Priority`], drained Interactive-first
    /// (`LANE_INTERACTIVE` / `LANE_BULK`).
    lanes: [VecDeque<Queued>; LANES],
    /// Per-shard control inboxes (model provisioning), drained by a
    /// shard before it takes new work.
    controls: Vec<Vec<Control>>,
}

#[derive(Debug, Clone, Default)]
struct Breaker {
    consecutive_failures: u32,
    tripped: bool,
}

enum Control {
    AddModel {
        name: String,
        replica: Box<dyn ReplicableSubstrate>,
    },
}

impl std::fmt::Debug for Control {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Control::AddModel { name, replica } => f
                .debug_struct("AddModel")
                .field("name", name)
                .field("backend", &replica.name())
                .finish(),
        }
    }
}

#[derive(Debug)]
enum Queued {
    Sample(QueuedSample),
    Train(QueuedTrain),
}

impl Queued {
    /// Row weight this item holds in the bounded queue.
    fn weight(&self) -> usize {
        match self {
            Queued::Sample(s) => s.request.n_samples.max(1),
            Queued::Train(_) => 1,
        }
    }

    /// Answers the caller with `err` without executing (shed / abort).
    fn reject(self, err: ServeError) {
        match self {
            Queued::Sample(sample) => {
                let _ = sample.reply.send(Err(err));
            }
            Queued::Train(train) => {
                let _ = train.reply.send(Err(err));
            }
        }
    }
}

#[derive(Debug)]
struct QueuedSample {
    request: SampleRequest,
    reply: mpsc::Sender<Result<SampleResponse, ServeError>>,
    /// When the request entered the queue — the latency histograms
    /// measure from here to the reply, and the coalescing window counts
    /// down from the *oldest* member's enqueue.
    enqueued_at: Instant,
}

#[derive(Debug)]
struct QueuedTrain {
    request: TrainRequest,
    reply: mpsc::Sender<Result<TrainResponse, ServeError>>,
    #[allow(dead_code)]
    enqueued_at: Instant,
}

#[derive(Debug)]
struct StatsInner {
    shards: Vec<ShardStats>,
    models: BTreeMap<String, ModelStats>,
    rejected: u64,
    admission_rejected: u64,
    shed_bulk: u64,
}

enum Work {
    Controls(Vec<Control>),
    Sample(Vec<QueuedSample>),
    Train(QueuedTrain),
    Exit,
}

/// One provisioned model replica on a shard. `programmed_version` only
/// carries meaning when program retention is enabled; without it the
/// replica's analog weights are treated as volatile and every job
/// re-programs (`None` always forces reprogramming). `fallback` is the
/// lazily fabricated `SoftwareGibbs` standing in after the model's
/// circuit breaker trips.
struct Replica {
    substrate: Box<dyn ReplicableSubstrate>,
    programmed_version: Option<u64>,
    fallback: Option<Box<dyn ReplicableSubstrate>>,
}

impl Replica {
    fn new(substrate: Box<dyn ReplicableSubstrate>) -> Self {
        Replica {
            substrate,
            programmed_version: None,
            fallback: None,
        }
    }
}

/// One forward pass over `lane` (O(n), done while holding the service
/// lock): moves every same-`(model, gibbs_steps)` sample request into
/// `members` up to the row bound, keeping the rest in order.
fn gather_same_key(
    lane: &mut VecDeque<Queued>,
    queued_rows: &mut usize,
    key_model: &str,
    key_steps: usize,
    max_rows: usize,
    rows: &mut usize,
    members: &mut Vec<QueuedSample>,
) {
    let mut kept = VecDeque::with_capacity(lane.len());
    while let Some(item) = lane.pop_front() {
        match item {
            Queued::Sample(s)
                if *rows < max_rows
                    && s.request.model == key_model
                    && s.request.gibbs_steps == key_steps
                    && *rows + s.request.n_samples.max(1) <= max_rows =>
            {
                let weight = s.request.n_samples.max(1);
                *queued_rows -= weight;
                *rows += weight;
                members.push(s);
            }
            other => kept.push_back(other),
        }
    }
    *lane = kept;
}

/// Blocks until this shard has work: control messages first, then the
/// head of the highest-priority non-empty lane (Interactive before
/// Bulk) — coalesced with every pending same-`(model, gibbs_steps)`
/// sample request *in the same lane* up to the row bound — then
/// shutdown once the lanes are drained. Taken work is counted in-flight
/// until [`finish_work`].
///
/// With a non-zero [`ServiceBuilder::coalesce_window`], a group that is
/// not yet full lingers on the condvar gathering late-arriving
/// batch-mates until the window (counted from its **oldest** member's
/// enqueue) runs out. The wait is cut short the moment the group fills,
/// the service closes, any member's deadline approaches, or — for a
/// Bulk group — Interactive work arrives (no priority inversion behind
/// a lingering Bulk batch).
fn next_work(core: &Core, shard: usize) -> Work {
    let mut st = core.state.lock().expect("service lock");
    loop {
        if !st.controls[shard].is_empty() {
            return Work::Controls(std::mem::take(&mut st.controls[shard]));
        }
        let lane_idx = if st.lanes[LANE_INTERACTIVE].is_empty() {
            LANE_BULK
        } else {
            LANE_INTERACTIVE
        };
        match st.lanes[lane_idx].pop_front() {
            Some(Queued::Train(train)) => {
                st.queued_rows -= 1;
                st.in_flight += 1;
                return Work::Train(train);
            }
            Some(Queued::Sample(first)) => {
                let mut rows = first.request.n_samples.max(1);
                st.queued_rows -= rows;
                let key_model = first.request.model.clone();
                let key_steps = first.request.gibbs_steps;
                let mut members = vec![first];
                st.in_flight += 1;
                if core.coalescing {
                    {
                        let state = &mut *st;
                        gather_same_key(
                            &mut state.lanes[lane_idx],
                            &mut state.queued_rows,
                            &key_model,
                            key_steps,
                            core.max_coalesce_rows,
                            &mut rows,
                            &mut members,
                        );
                    }
                    if core.coalesce_window > Duration::ZERO && rows < core.max_coalesce_rows {
                        // Earliest of: window out (from the oldest
                        // member's enqueue) or any member's deadline.
                        let mut wake = members[0].enqueued_at + core.coalesce_window;
                        for m in &members {
                            if let Some(d) = m.request.deadline {
                                wake = wake.min(d);
                            }
                        }
                        loop {
                            if rows >= core.max_coalesce_rows || !st.open {
                                break;
                            }
                            if lane_idx == LANE_BULK && !st.lanes[LANE_INTERACTIVE].is_empty() {
                                break;
                            }
                            let now = Instant::now();
                            if now >= wake {
                                break;
                            }
                            let (guard, _) =
                                core.cv.wait_timeout(st, wake - now).expect("service lock");
                            st = guard;
                            let before = members.len();
                            {
                                let state = &mut *st;
                                gather_same_key(
                                    &mut state.lanes[lane_idx],
                                    &mut state.queued_rows,
                                    &key_model,
                                    key_steps,
                                    core.max_coalesce_rows,
                                    &mut rows,
                                    &mut members,
                                );
                            }
                            for m in &members[before..] {
                                if let Some(d) = m.request.deadline {
                                    wake = wake.min(d);
                                }
                            }
                        }
                    }
                }
                return Work::Sample(members);
            }
            None => {
                if !st.open {
                    return Work::Exit;
                }
                st = core.cv.wait(st).expect("service lock");
            }
        }
    }
}

/// Marks one in-flight work item answered and wakes any bounded drain
/// waiting on the count.
fn finish_work(core: &Core) {
    let mut st = core.state.lock().expect("service lock");
    st.in_flight -= 1;
    drop(st);
    core.cv.notify_all();
}

/// The shard worker: drains controls, serves coalesced sample groups and
/// training jobs until shutdown. `lane` is this shard's deterministic
/// RNG-stream family, consumed (one stream per event) to seed requests
/// submitted without an explicit seed.
///
/// Every request executes under `catch_unwind`: a panic mid-group
/// answers all members with [`ServeError::ShardRestarted`] (no caller is
/// ever left hanging on a dropped reply channel) and the shard
/// re-provisions its replicas from the retained prototypes before
/// taking the next job.
fn run_shard(core: &Core, registry: &ModelRegistry, shard: usize, lane: RngStreams) {
    let mut replicas: HashMap<String, Replica> = HashMap::new();
    // Backoff jitter draws from a dedicated stream far outside the
    // request-seeding sequence, so fault recovery never perturbs the
    // seeds handed to seedless requests.
    let mut backoff_rng = StdRng::seed_from_u64(lane.seed(u64::MAX));
    let mut lane_next: u64 = 0;
    let mut lane_seed = move || {
        let seed = lane.seed(lane_next);
        lane_next += 1;
        seed
    };
    loop {
        match next_work(core, shard) {
            Work::Exit => return,
            Work::Controls(controls) => {
                for Control::AddModel { name, replica } in controls {
                    replicas.insert(name, Replica::new(replica));
                }
            }
            Work::Sample(members) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_sample_group(
                        core,
                        registry,
                        shard,
                        &mut replicas,
                        &members,
                        &mut lane_seed,
                        &mut backoff_rng,
                    )
                }));
                match outcome {
                    Ok(replies) => {
                        debug_assert_eq!(replies.len(), members.len());
                        for (member, reply) in members.iter().zip(replies) {
                            let _ = member.reply.send(reply);
                        }
                    }
                    Err(_) => {
                        for member in &members {
                            let _ = member.reply.send(Err(ServeError::ShardRestarted { shard }));
                        }
                        restart_shard(core, registry, shard, &mut replicas);
                    }
                }
                finish_work(core);
            }
            Work::Train(QueuedTrain { request, reply, .. }) => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    serve_train(
                        core,
                        registry,
                        shard,
                        &mut replicas,
                        &request,
                        &mut lane_seed,
                    )
                }));
                match outcome {
                    Ok(result) => {
                        let _ = reply.send(result);
                    }
                    Err(_) => {
                        let _ = reply.send(Err(ServeError::ShardRestarted { shard }));
                        restart_shard(core, registry, shard, &mut replicas);
                    }
                }
                finish_work(core);
            }
        }
    }
}

/// Rebuilds a shard's replica set after a mid-request panic: every
/// registered model gets a fresh clone of its retained prototype. The
/// poisoned replicas (whatever state the panic left them in) are
/// dropped wholesale.
fn restart_shard(
    core: &Core,
    registry: &ModelRegistry,
    shard: usize,
    replicas: &mut HashMap<String, Replica>,
) {
    replicas.clear();
    {
        let prototypes = core.prototypes.lock().expect("prototype lock");
        for (name, prototype) in prototypes.iter() {
            if registry.get(name).is_some() {
                replicas.insert(name.clone(), Replica::new(prototype.clone_boxed()));
            }
        }
    }
    core.stats.lock().expect("stats lock").shards[shard].restarts += 1;
}

/// Programs `substrate` with the snapshot's parameters through the
/// fallible seam, then verifies the readback checksum (vacuous on
/// backends without readback).
fn program_verified<S: ember_substrate::Substrate + ?Sized>(
    substrate: &mut S,
    snapshot: &ModelSnapshot,
) -> Result<(), SubstrateFault> {
    let weights = snapshot.rbm.weights().view();
    let visible_bias = snapshot.rbm.visible_bias().view();
    let hidden_bias = snapshot.rbm.hidden_bias().view();
    substrate.try_program(&weights, &visible_bias, &hidden_bias)?;
    verify_programming(substrate, &weights, &visible_bias, &hidden_bias)
}

/// The degraded-service substrate: a `SoftwareGibbs` fabricated
/// deterministically from the model *name* (not the shard index), so
/// every shard's fallback realizes the same machine and degraded
/// responses stay shard-invariant.
fn fabricate_fallback(model: &str, snapshot: &ModelSnapshot) -> Box<dyn ReplicableSubstrate> {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in model.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = StdRng::seed_from_u64(hash);
    SubstrateSpec::software(GsConfig::default()).fabricate(
        snapshot.rbm.visible_len(),
        snapshot.rbm.hidden_len(),
        &mut rng,
    )
}

/// Executes one coalesced group and returns one reply per member (in
/// member order): shed expired deadlines, program-if-stale through the
/// verified fallible seam, run the batched kernel with
/// reprogram-and-retry under the service's [`RetryPolicy`], scatter the
/// rows back — or degrade to the software fallback when the model's
/// circuit breaker has tripped.
fn serve_sample_group(
    core: &Core,
    registry: &ModelRegistry,
    shard: usize,
    replicas: &mut HashMap<String, Replica>,
    members: &[QueuedSample],
    lane_seed: &mut impl FnMut() -> u64,
    backoff_rng: &mut StdRng,
) -> Vec<Result<SampleResponse, ServeError>> {
    let started = Instant::now();
    let model = members[0].request.model.clone();
    let gibbs_steps = members[0].request.gibbs_steps;
    let (Some(snapshot), Some(replica)) = (registry.get(&model), replicas.get_mut(&model)) else {
        // Registration is atomic (registry + provisioning under one
        // lock), so this means the model vanished mid-flight.
        return members
            .iter()
            .map(|_| Err(ServeError::ModelNotFound(model.clone())))
            .collect();
    };

    // Deadline shedding: a member already past due gets its typed error
    // now and costs zero substrate time.
    let now = Instant::now();
    let mut replies: Vec<Option<Result<SampleResponse, ServeError>>> =
        (0..members.len()).map(|_| None).collect();
    let mut live: Vec<usize> = Vec::with_capacity(members.len());
    for (i, member) in members.iter().enumerate() {
        match member.request.deadline {
            Some(deadline) if now >= deadline => {
                replies[i] = Some(Err(ServeError::DeadlineExceeded));
            }
            _ => live.push(i),
        }
    }
    let shed = (members.len() - live.len()) as u64;
    if live.is_empty() {
        core.stats.lock().expect("stats lock").shards[shard].shed_requests += shed;
        return replies
            .into_iter()
            .map(|r| r.expect("every member shed"))
            .collect();
    }

    // Expand live members to chain rows; remember each member's range.
    let mut rows: Vec<ChainRequest> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(live.len());
    for &i in &live {
        let master_seed = members[i].request.seed.unwrap_or_else(&mut *lane_seed);
        let start = rows.len();
        rows.extend(batch::expand_request(&members[i].request, master_seed));
        ranges.push((start, rows.len()));
    }

    let degraded = core
        .breakers
        .lock()
        .expect("breaker lock")
        .get(&model)
        .map(|b| b.tripped)
        .unwrap_or(false);

    let (outcome, delta, retries) = if degraded {
        // Circuit broken: serve from the deterministic software
        // fallback. Volatile-weights discipline still applies — program
        // it for this group from the current snapshot.
        let fallback = replica
            .fallback
            .get_or_insert_with(|| fabricate_fallback(&model, &snapshot));
        fallback.program(
            &snapshot.rbm.weights().view(),
            &snapshot.rbm.visible_bias().view(),
            &snapshot.rbm.hidden_bias().view(),
        );
        let before = *fallback.counters();
        let samples = batch::sample_rows(&mut **fallback, &rows, gibbs_steps);
        let delta = fallback.counters().delta_since(&before);
        (Ok(samples), delta, 0u32)
    } else {
        let before = *replica.substrate.counters();
        let mut retries = 0u32;
        let outcome = loop {
            // §3.2 steps 1–2, once per coalesced group — through the
            // fallible seam, with readback verification. After any
            // fault the volatile couplings are assumed disturbed, so
            // `programmed_version` is cleared and this re-runs.
            let programmed = if replica.programmed_version == Some(snapshot.version) {
                Ok(())
            } else {
                program_verified(&mut *replica.substrate, &snapshot).map(|()| {
                    replica.programmed_version = core.program_retention.then_some(snapshot.version);
                })
            };
            let fault = match programmed {
                Err(fault) => fault,
                Ok(()) => {
                    match batch::try_sample_rows(&mut *replica.substrate, &rows, gibbs_steps) {
                        Ok(samples) => break Ok(samples),
                        Err(fault) => fault,
                    }
                }
            };
            replica.programmed_version = None;
            if retries >= core.retry_policy.max_retries {
                break Err(fault);
            }
            retries += 1;
            replica.substrate.counters_mut().recovery_retries += 1;
            std::thread::sleep(core.retry_policy.backoff(retries, backoff_rng));
        };
        let delta = replica.substrate.counters().delta_since(&before);

        // Breaker bookkeeping: consecutive exhausted groups trip the
        // model into degraded (fallback) service; any primary success
        // resets the count.
        let mut breakers = core.breakers.lock().expect("breaker lock");
        let breaker = breakers.entry(model.clone()).or_default();
        match &outcome {
            Ok(_) => breaker.consecutive_failures = 0,
            Err(_) => {
                breaker.consecutive_failures += 1;
                if breaker.consecutive_failures >= core.breaker_threshold {
                    breaker.tripped = true;
                }
            }
        }
        drop(breakers);
        (outcome, delta, retries)
    };

    // Account first, reply second: once a caller holds its response,
    // `SamplingService::stats` already reflects the work it paid for.
    {
        let mut stats = core.stats.lock().expect("stats lock");
        {
            let shard_stats = &mut stats.shards[shard];
            shard_stats.shed_requests += shed;
            shard_stats.busy_nanos += started.elapsed().as_nanos() as u64;
            shard_stats.counters.merge(&delta);
            if outcome.is_ok() {
                shard_stats.sample_requests += live.len() as u64;
                shard_stats.rows += rows.len() as u64;
                shard_stats.batches += 1;
                shard_stats.largest_batch = shard_stats.largest_batch.max(rows.len() as u64);
                // Queue-to-answer latency of every member about to get
                // a successful reply (the histogram describes accepted
                // requests only).
                let answered = Instant::now();
                for &i in &live {
                    shard_stats
                        .latency
                        .record(answered.saturating_duration_since(members[i].enqueued_at));
                }
            }
        }
        let model_stats = stats.models.entry(model.clone()).or_default();
        model_stats.counters.merge(&delta);
        let _ = retries; // retries are visible via counters.recovery_retries
        if outcome.is_ok() {
            model_stats.sample_requests += live.len() as u64;
            model_stats.rows += rows.len() as u64;
            if degraded {
                model_stats.degraded_requests += live.len() as u64;
            }
        } else {
            model_stats.failed_requests += live.len() as u64;
        }
    }

    // Scatter rows back to the callers: each live member's rows are a
    // contiguous range of the group result.
    match outcome {
        Ok(samples) => {
            for (&i, (start, end)) in live.iter().zip(&ranges) {
                let own = samples.slice(ndarray::s![*start..*end, ..]).to_owned();
                replies[i] = Some(Ok(SampleResponse {
                    samples: own,
                    counters: delta,
                    shard,
                    model_version: snapshot.version,
                    coalesced_rows: rows.len(),
                    degraded,
                }));
            }
        }
        Err(fault) => {
            for &i in &live {
                replies[i] = Some(Err(ServeError::SubstrateFault {
                    model: model.clone(),
                    fault: fault.clone(),
                }));
            }
        }
    }
    replies
        .into_iter()
        .map(|r| r.expect("every member answered"))
        .collect()
}

/// Executes one training job on this shard's replica and publishes the
/// updated parameters as a new model version.
fn serve_train(
    core: &Core,
    registry: &ModelRegistry,
    shard: usize,
    replicas: &mut HashMap<String, Replica>,
    request: &TrainRequest,
    lane_seed: &mut impl FnMut() -> u64,
) -> Result<TrainResponse, ServeError> {
    let (Some(snapshot), Some(replica)) = (
        registry.get(&request.model),
        replicas.get_mut(&request.model),
    ) else {
        return Err(ServeError::ModelNotFound(request.model.clone()));
    };

    let mut rbm = (*snapshot.rbm).clone();
    let mut rng = StdRng::seed_from_u64(request.seed.unwrap_or_else(&mut *lane_seed));
    let before = *replica.substrate.counters();
    let stats = request.trainer.train_with(
        &mut rbm,
        &request.data,
        request.batch_size,
        &mut *replica.substrate,
        request.epochs,
        &mut rng,
    );
    let delta = replica.substrate.counters().delta_since(&before);
    // The replica now holds the last *mid-training* programming; force a
    // reprogram from the published version before the next sample group.
    replica.programmed_version = None;

    // Compare-and-swap publish: if another shard published meanwhile
    // (concurrent training on the same model), fail with TrainConflict
    // instead of silently discarding that update — the caller re-trains
    // from the current snapshot.
    let result = registry
        .publish_if(&request.model, rbm, snapshot.version)
        .map(|new_version| TrainResponse {
            stats,
            new_version,
            shard,
            counters: delta,
        });

    {
        let mut service_stats = core.stats.lock().expect("stats lock");
        service_stats.shards[shard].train_requests += 1;
        service_stats.shards[shard].counters.merge(&delta);
        let model_stats = service_stats
            .models
            .entry(request.model.clone())
            .or_default();
        model_stats.train_requests += 1;
        model_stats.counters.merge(&delta);
    }
    result
}
