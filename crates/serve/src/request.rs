use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use ndarray::{Array1, Array2};

use ember_rbm::{CdTrainer, EpochStats};
use ember_substrate::{HardwareCounters, SubstrateFault};

/// Scheduling lane of a [`SampleRequest`].
///
/// The service keeps one queue lane per priority. Shards always drain
/// the `Interactive` lane first, and under sustained overload the
/// admission shedder evicts queued `Bulk` work (answering it with
/// [`ServeError::Overloaded`]) before it ever rejects an `Interactive`
/// request. Training requests ride the `Bulk` lane.
///
/// Lane order is pure *scheduling*: it never changes the bits of a
/// request that is served, because every chain's RNG stream is derived
/// from the request seed alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive foreground work — drained first, shed last.
    #[default]
    Interactive,
    /// Throughput work (batch scoring, speculative sampling) — drained
    /// after `Interactive`, shed first under pressure.
    Bulk,
}

impl Priority {
    /// Canonical lowercase wire name (`"interactive"` / `"bulk"`), as
    /// carried by the `X-Ember-Priority` HTTP header.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    /// Parses a case-insensitive wire name.
    pub fn parse(name: &str) -> Option<Priority> {
        match name.trim().to_ascii_lowercase().as_str() {
            "interactive" => Some(Priority::Interactive),
            "bulk" => Some(Priority::Bulk),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A request for conditional/free-running samples from a registered
/// model.
///
/// Semantics: the request expands to [`SampleRequest::n_samples`]
/// independent Gibbs chains. Chain `j` runs on its own deterministic RNG
/// stream derived from the request seed (`RngStreams::new(seed).seed(j)`
/// — the same per-chain discipline as `ember_rbm::gibbs::sample_model_par`),
/// starts from [`SampleRequest::clamp`] (or a random visible state drawn
/// from the chain's stream), takes [`SampleRequest::gibbs_steps`] full
/// Gibbs steps through the substrate, and contributes its final visible
/// configuration as one row of the response.
///
/// Because every chain's bits depend only on (model parameters, clamp,
/// steps, its stream) — see `Substrate::sample_hidden_batch_rows` — the
/// response is **bit-identical no matter how the service coalesces,
/// shards, or reorders requests**, provided a `seed` is given.
///
/// # Example
///
/// ```
/// use ember_serve::SampleRequest;
///
/// let req = SampleRequest::new("mnist-784x200")
///     .with_samples(16)
///     .with_gibbs_steps(5)
///     .with_seed(42);
/// assert_eq!(req.n_samples, 16);
/// ```
#[derive(Debug, Clone)]
pub struct SampleRequest {
    /// Registered model name.
    pub model: String,
    /// Number of independent chains (= response rows) to draw.
    pub n_samples: usize,
    /// Full Gibbs steps per chain (the `k` of CD-k; ≥ 1).
    pub gibbs_steps: usize,
    /// Initial visible levels in `[0, 1]` shared by every chain (data to
    /// reconstruct / denoise / daydream from). `None` starts each chain
    /// from a random visible state drawn from its own stream — a
    /// free-running model sample.
    pub clamp: Option<Array1<f64>>,
    /// Master seed of the request's chain streams. `None` lets the
    /// executing shard draw one from its own deterministic lane (the
    /// response is then reproducible per shard sequence, not globally).
    pub seed: Option<u64>,
    /// Latest useful answer time. A request still queued (or picked up
    /// by a shard) past its deadline is **shed** with
    /// [`ServeError::DeadlineExceeded`] instead of wasting substrate
    /// time on an answer nobody is waiting for. `None` never expires.
    pub deadline: Option<Instant>,
    /// Scheduling lane (default [`Priority::Interactive`]). See
    /// [`Priority`] for drain and shed ordering.
    pub priority: Priority,
}

impl SampleRequest {
    /// One free-running single-sample request for `model` (1 chain,
    /// 1 Gibbs step, no clamp, shard-lane seeding).
    pub fn new(model: impl Into<String>) -> Self {
        SampleRequest {
            model: model.into(),
            n_samples: 1,
            gibbs_steps: 1,
            clamp: None,
            seed: None,
            deadline: None,
            priority: Priority::Interactive,
        }
    }

    /// Returns a copy requesting `n` samples.
    #[must_use]
    pub fn with_samples(mut self, n: usize) -> Self {
        self.n_samples = n;
        self
    }

    /// Returns a copy taking `k` Gibbs steps per chain.
    #[must_use]
    pub fn with_gibbs_steps(mut self, k: usize) -> Self {
        self.gibbs_steps = k;
        self
    }

    /// Returns a copy with every chain starting from `levels`.
    #[must_use]
    pub fn with_clamp(mut self, levels: Array1<f64>) -> Self {
        self.clamp = Some(levels);
        self
    }

    /// Returns a copy with a fixed master seed (full reproducibility).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Returns a copy that expires at `deadline`.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy that expires `budget` from now.
    #[must_use]
    pub fn with_deadline_in(self, budget: Duration) -> Self {
        self.with_deadline(Instant::now() + budget)
    }

    /// Returns a copy scheduled on the given [`Priority`] lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// The samples drawn for one [`SampleRequest`], plus execution metadata.
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// One final visible configuration per requested chain
    /// (`n_samples × visible_len`).
    pub samples: Array2<f64>,
    /// Hardware-event delta of the coalesced execution this request rode
    /// in (the *whole group's* events — prorate by
    /// `samples.nrows() / coalesced_rows` for a per-request estimate).
    pub counters: HardwareCounters,
    /// Index of the worker shard that executed the request.
    pub shard: usize,
    /// Version of the model the samples were drawn from.
    pub model_version: u64,
    /// Total rows of the coalesced batch this request was executed in
    /// (≥ `samples.nrows()`; equal when the request ran alone).
    pub coalesced_rows: usize,
    /// `true` when the per-model circuit breaker had tripped and this
    /// response was served by the shard's `SoftwareGibbs` **fallback**
    /// instead of the registered (faulting) substrate. Degraded samples
    /// are valid model samples, but not the registered backend's bits.
    pub degraded: bool,
}

/// A request to run CD-k training epochs on a registered model.
///
/// The executing shard snapshots the model from the registry, trains it
/// through its own substrate replica
/// (`CdTrainer::train_with`), and publishes the result back as a new
/// model version — subsequent sample requests (on any shard) see the
/// updated weights.
#[derive(Debug, Clone)]
pub struct TrainRequest {
    /// Registered model name.
    pub model: String,
    /// Training data, rows = samples (`rows × visible_len`).
    pub data: Array2<f64>,
    /// The CD-k trainer to run (k, learning rate, momentum, decay).
    pub trainer: CdTrainer,
    /// Minibatch size.
    pub batch_size: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Seed of the training RNG. `None` lets the shard draw one from its
    /// lane.
    pub seed: Option<u64>,
}

impl TrainRequest {
    /// One CD-1 epoch over `data` with learning rate 0.05 and batch 10.
    pub fn new(model: impl Into<String>, data: Array2<f64>) -> Self {
        TrainRequest {
            model: model.into(),
            data,
            trainer: CdTrainer::new(1, 0.05),
            batch_size: 10,
            epochs: 1,
            seed: None,
        }
    }

    /// Returns a copy using the given trainer.
    #[must_use]
    pub fn with_trainer(mut self, trainer: CdTrainer) -> Self {
        self.trainer = trainer;
        self
    }

    /// Returns a copy with the given minibatch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Returns a copy running `epochs` epochs.
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Returns a copy with a fixed training seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }
}

/// The outcome of one [`TrainRequest`].
#[derive(Debug, Clone)]
pub struct TrainResponse {
    /// Final epoch's statistics.
    pub stats: EpochStats,
    /// Model version the trained parameters were published under.
    pub new_version: u64,
    /// Index of the worker shard that trained.
    pub shard: usize,
    /// Hardware-event delta of the training run on the shard's replica.
    pub counters: HardwareCounters,
}

/// Errors surfaced by the serving API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// The named model is not in the registry.
    ModelNotFound(String),
    /// A model is already registered under this name.
    ModelExists(String),
    /// The request failed validation (reason inside).
    InvalidRequest(String),
    /// A training run raced another publish on the same model: the
    /// trained parameters were derived from `base_version` but the
    /// registry already holds `current_version`, so publishing them
    /// would silently discard the other update. Re-submit to train from
    /// the current snapshot.
    TrainConflict {
        /// The contended model.
        model: String,
        /// The version this training run started from.
        base_version: u64,
        /// The version found at publish time.
        current_version: u64,
    },
    /// A rollback named a version that is neither the model's current
    /// one nor retained in its bounded history (old versions are
    /// evicted once the history limit is exceeded).
    VersionNotFound {
        /// The model whose history was searched.
        model: String,
        /// The requested (absent) version.
        version: u64,
    },
    /// The bounded request queue is at capacity; the request was
    /// **rejected, not blocked** — retry later or shed load.
    QueueFull {
        /// Estimated time until the present backlog has drained, derived
        /// from the queue depth and the observed per-row service time —
        /// the value an HTTP edge would emit as `429` + `Retry-After`.
        /// A hint, not a reservation: the queue may refill.
        retry_after: Duration,
    },
    /// The request expired ([`SampleRequest::deadline`]) before a shard
    /// could answer it; the work was shed, no substrate time was spent.
    DeadlineExceeded,
    /// Admission control refused the request at enqueue: from the
    /// measured per-row service rate the queue projected that the
    /// request's completion would already miss its deadline (or the
    /// sustained-overload shedder evicted this queued `Bulk` request to
    /// admit `Interactive` work). No substrate time was spent; retry
    /// after the hint, or relax the deadline / lower the priority
    /// pressure.
    Overloaded {
        /// Estimated time until the backlog ahead of the request would
        /// have drained — the value an HTTP edge emits as `429` +
        /// `Retry-After`. A hint, not a reservation.
        retry_after: Duration,
    },
    /// The executing shard exhausted the service's retry policy against
    /// a faulting substrate; the underlying hardware fault is attached.
    /// Repeated occurrences trip the model's circuit breaker (subsequent
    /// requests degrade to the software fallback instead of erroring).
    SubstrateFault {
        /// The model whose replica faulted.
        model: String,
        /// The last fault observed after all retries.
        fault: SubstrateFault,
    },
    /// The executing shard panicked mid-request and was restarted (its
    /// replicas re-provisioned from the registered prototypes). The
    /// request itself was **not** completed — resubmit it; the restarted
    /// shard serves again immediately.
    ShardRestarted {
        /// Index of the shard that died and was restarted.
        shard: usize,
    },
    /// The service has been shut down.
    ServiceClosed,
    /// The executing shard disappeared before answering (service dropped
    /// mid-flight).
    Disconnected,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelNotFound(name) => write!(f, "model `{name}` is not registered"),
            ServeError::ModelExists(name) => {
                write!(f, "model `{name}` is already registered")
            }
            ServeError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            ServeError::TrainConflict {
                model,
                base_version,
                current_version,
            } => write!(
                f,
                "training on `{model}` raced another publish (trained from v{base_version}, \
                 registry is at v{current_version}); re-submit to train from the current snapshot"
            ),
            ServeError::VersionNotFound { model, version } => write!(
                f,
                "model `{model}` has no retained version {version} (evicted or never published)"
            ),
            ServeError::QueueFull { retry_after } => write!(
                f,
                "request queue is full (backpressure); retry after ~{:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline expired before a shard could serve it")
            }
            ServeError::Overloaded { retry_after } => write!(
                f,
                "service overloaded: projected completion misses the deadline; \
                 retry after ~{:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            ServeError::SubstrateFault { model, fault } => write!(
                f,
                "substrate serving `{model}` faulted beyond the retry budget: {fault}"
            ),
            ServeError::ShardRestarted { shard } => write!(
                f,
                "shard {shard} panicked mid-request and was restarted; resubmit"
            ),
            ServeError::ServiceClosed => write!(f, "service is shut down"),
            ServeError::Disconnected => write!(f, "serving shard disconnected"),
        }
    }
}

impl Error for ServeError {}
