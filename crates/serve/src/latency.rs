//! Log-bucketed latency histograms for the serving data path.
//!
//! Tail latency cannot be summarized by an average: an open-loop flood
//! at 2× capacity shows a p50 that looks healthy while p99.9 has left
//! the building. The service therefore records every accepted sample
//! request's queue-to-answer latency into a [`LatencyHistogram`] — a
//! fixed-size array of logarithmic buckets (4 sub-buckets per octave,
//! ≤ ~19% relative bucket width) covering 1 ns to ~5 s. Recording is a
//! single increment, merging shard histograms is element-wise addition,
//! and quantiles are a cumulative walk; nothing allocates after
//! construction, so the histogram can sit inside the per-shard stats
//! that every request already touches.
//!
//! The same type backs three surfaces: live [`ShardStats`] /
//! [`ServiceStats`](crate::ServiceStats) snapshots, the HTTP edge's
//! `GET /v1/stats` JSON, and the open-loop bench harness's
//! `latency-*` trajectory rows.
//!
//! [`ShardStats`]: crate::ShardStats

use std::fmt;
use std::time::Duration;

/// Sub-buckets per power-of-two octave. 4 gives ≤ 2^(1/4)−1 ≈ 19%
/// relative error at the bucket boundary — plenty for p50/p99/p99.9
/// reporting.
const SUBS_PER_OCTAVE: u64 = 4;

/// Octaves covered: bucket 0 starts at 1 ns; the last octave tops out
/// at 2^32 ns ≈ 4.3 s. Anything slower clamps into the final bucket.
const OCTAVES: usize = 33;

/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUBS_PER_OCTAVE as usize;

/// A fixed-memory logarithmic histogram of durations (nanosecond
/// resolution, ~19% relative bucket width, 1 ns ..= ~4.3 s range).
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use ember_serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// // p50 lands in the 3 ms bucket; the bound is the bucket's upper edge.
/// assert!(h.p50() >= Duration::from_millis(3));
/// assert!(h.p50() < Duration::from_millis(4));
/// // The 100 ms outlier owns the tail.
/// assert!(h.p99() >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket counts (log-spaced; see module docs).
    counts: Vec<u64>,
    /// Total recorded samples.
    total: u64,
    /// Sum of recorded nanoseconds (saturating) — for `mean`.
    sum_nanos: u64,
    /// Largest recorded value in nanoseconds.
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Bucket index of a nanosecond value (clamped into range).
    fn index(nanos: u64) -> usize {
        let v = nanos.max(1);
        let octave = 63 - v.leading_zeros() as u64;
        // Two bits immediately below the leading bit select the
        // sub-bucket; octaves 0 and 1 have fewer mantissa bits and
        // collapse toward sub-bucket 0 (sub-nanosecond precision is
        // irrelevant here).
        let sub = if octave >= 2 {
            (v >> (octave - 2)) & (SUBS_PER_OCTAVE - 1)
        } else {
            0
        };
        ((octave * SUBS_PER_OCTAVE + sub) as usize).min(BUCKETS - 1)
    }

    /// Upper edge of bucket `idx` in nanoseconds (inclusive bound used
    /// when reporting quantiles).
    fn upper_edge(idx: usize) -> u64 {
        if idx >= BUCKETS - 1 {
            // The final bucket absorbs everything past the range; its
            // only honest upper bound is the observed maximum (the
            // caller clamps against `max_nanos`).
            return u64::MAX;
        }
        let octave = (idx as u64) / SUBS_PER_OCTAVE;
        let sub = (idx as u64) % SUBS_PER_OCTAVE;
        // 2^octave * (1 + (sub+1)/4) == lower edge of the next bucket.
        (1u64 << octave) + ((sub + 1) << octave) / SUBS_PER_OCTAVE
    }

    /// Records one duration.
    pub fn record(&mut self, latency: Duration) {
        self.record_nanos(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records one latency expressed in nanoseconds.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.counts[Self::index(nanos)] += 1;
        self.total += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Element-wise accumulation of another histogram (shard → service
    /// roll-up).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean recorded latency (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_nanos / self.total)
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// The latency at quantile `q` in `[0, 1]` — the upper edge of the
    /// bucket containing the `ceil(q · count)`-th sample, clamped to the
    /// observed maximum. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Duration::from_nanos(Self::upper_edge(idx).min(self.max_nanos));
            }
        }
        Duration::from_nanos(self.max_nanos)
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    pub fn p999(&self) -> Duration {
        self.quantile(0.999)
    }
}

impl fmt::Display for LatencyHistogram {
    /// Compact single-line summary: `n=…, p50=…, p99=…, p99.9=…, max=…`
    /// with millisecond formatting — what the examples print in their
    /// stats dumps.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        write!(
            f,
            "n={}, p50={:.2} ms, p99={:.2} ms, p99.9={:.2} ms, max={:.2} ms",
            self.total,
            ms(self.p50()),
            ms(self.p99()),
            ms(self.p999()),
            ms(self.max()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn quantiles_bound_recorded_values_within_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.count(), 1000);
        // p50 ≈ 500 µs within one ~19%-wide bucket (upper-edge bias).
        let p50 = h.p50().as_nanos() as f64;
        assert!((416e3..=640e3).contains(&p50), "p50 = {p50} ns");
        // p99 ≈ 990 µs, same tolerance.
        let p99 = h.p99().as_nanos() as f64;
        assert!((830e3..=1300e3).contains(&p99), "p99 = {p99} ns");
        // The maximum is exact.
        assert_eq!(h.max(), Duration::from_micros(1000));
        // Quantiles never exceed the observed maximum.
        assert!(h.p999() <= h.max());
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(1 + i * i * 37);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn extreme_values_clamp_instead_of_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(3600));
        h.record_nanos(u64::MAX);
        assert_eq!(h.count(), 3);
        assert!(h.p999() >= Duration::from_secs(3600));
    }
}
