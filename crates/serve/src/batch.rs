//! The direct batched sampling path: the deterministic per-row chain
//! kernel that both the [`crate::SamplingService`] shards and offline
//! callers run.
//!
//! The kernel is the serving-side analogue of the paper's per-minibatch
//! §3.2 operation list: program once (done by the caller), quantize the
//! whole batch of clamp levels once, then realize every chain's k Gibbs
//! steps by alternating whole-batch `sample_hidden_batch_rows` /
//! `sample_visible_batch_rows` calls on the substrate. Each row carries
//! its **own RNG stream**, so a row's bits depend only on (programmed
//! model, its init, its seed, step count) — which is exactly why the
//! service may coalesce rows from unrelated requests into one batch, or
//! split them across shards, without changing a single bit of anyone's
//! response. Equivalence is pinned by
//! `crates/serve/tests/coalescing_equivalence.rs` at 1/2/8 shards.

use ndarray::Array2;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use ember_rbm::RngStreams;
use ember_substrate::{Substrate, SubstrateFault};

use crate::SampleRequest;

/// One independent Gibbs chain: an optional initial visible state and
/// the seed of the chain's private RNG stream.
#[derive(Debug, Clone)]
pub struct ChainRequest {
    /// Initial visible levels in `[0, 1]`. `None` draws a random visible
    /// state from the chain's own stream.
    pub init: Option<ndarray::Array1<f64>>,
    /// Seed of the chain's RNG stream.
    pub seed: u64,
}

/// Expands a [`SampleRequest`] into its chain rows: chain `j` gets
/// stream `RngStreams::new(master_seed).seed(j)` — the per-chain seed
/// discipline of `ember_rbm::gibbs::sample_model_par`. `master_seed` is
/// the request's seed (or the shard-lane seed assigned to a seedless
/// request).
pub fn expand_request(request: &SampleRequest, master_seed: u64) -> Vec<ChainRequest> {
    let streams = RngStreams::new(master_seed);
    (0..request.n_samples)
        .map(|j| ChainRequest {
            init: request.clamp.clone(),
            seed: streams.seed(j as u64),
        })
        .collect()
}

/// Runs `gibbs_steps` full Gibbs steps for every chain in `rows` on an
/// already-programmed substrate and returns each chain's final visible
/// configuration (`rows.len() × visible_len`).
///
/// Row `i` of the result depends only on the programmed parameters and
/// `rows[i]` — never on the other rows (see
/// [`Substrate::sample_hidden_batch_rows`]) — so any partition of `rows`
/// into separate calls, on any identically-programmed replicas, yields
/// bit-identical rows.
///
/// # Panics
///
/// Panics if `gibbs_steps == 0`, `rows` is empty, or an init row's width
/// differs from the substrate's visible size.
pub fn sample_rows<S: Substrate + ?Sized>(
    substrate: &mut S,
    rows: &[ChainRequest],
    gibbs_steps: usize,
) -> Array2<f64> {
    let (mut rngs, mut v) = init_chains(substrate, rows, gibbs_steps);
    let mut h = {
        let mut lanes = rng_lanes(&mut rngs);
        substrate.sample_hidden_batch_rows(&v, &mut lanes)
    };
    for step in 0..gibbs_steps {
        let mut lanes = rng_lanes(&mut rngs);
        v = substrate.sample_visible_batch_rows(&h, &mut lanes);
        if step + 1 < gibbs_steps {
            let mut lanes = rng_lanes(&mut rngs);
            h = substrate.sample_hidden_batch_rows(&v, &mut lanes);
        }
    }
    v
}

/// The fallible twin of [`sample_rows`]: identical chain semantics, but
/// every substrate read goes through the **fallible seam**
/// ([`Substrate::try_sample_hidden_batch_rows`] /
/// [`Substrate::try_sample_visible_batch_rows`]), and — on substrates
/// that declare themselves [`Substrate::is_fallible`] — every returned
/// batch passes the host's binary sanity screen
/// (`ember_core::recovery::screen_samples`) before it is fed back into
/// the next half-step, so a corrupted read is caught at the read that
/// produced it, never silently laundered into downstream bits.
/// Infallible backends (the default) skip the screens: the fault
/// machinery costs nothing on the fault-free hot path.
///
/// On an infallible substrate this is bit-identical to [`sample_rows`].
/// On a fault the per-row RNGs die with the call; the caller reprograms
/// the volatile couplings and re-invokes with the same `rows`, which
/// recreates every chain stream from its seed — a successful retry is
/// therefore bit-identical to a fault-free run.
///
/// # Errors
///
/// Any [`SubstrateFault`] raised by the substrate, plus
/// [`SubstrateFault::CorruptSamples`] from the sanity screen.
///
/// # Panics
///
/// As [`sample_rows`]: empty `rows`, zero `gibbs_steps`, or a clamp
/// width mismatch.
pub fn try_sample_rows<S: Substrate + ?Sized>(
    substrate: &mut S,
    rows: &[ChainRequest],
    gibbs_steps: usize,
) -> Result<Array2<f64>, SubstrateFault> {
    let screened = substrate.is_fallible();
    let screen = |batch: &Array2<f64>| -> Result<(), SubstrateFault> {
        if screened {
            ember_core::recovery::screen_samples(batch)
        } else {
            Ok(())
        }
    };
    let (mut rngs, mut v) = init_chains(substrate, rows, gibbs_steps);
    let mut h = {
        let mut lanes = rng_lanes(&mut rngs);
        substrate.try_sample_hidden_batch_rows(&v, &mut lanes)?
    };
    screen(&h)?;
    for step in 0..gibbs_steps {
        {
            let mut lanes = rng_lanes(&mut rngs);
            v = substrate.try_sample_visible_batch_rows(&h, &mut lanes)?;
        }
        screen(&v)?;
        if step + 1 < gibbs_steps {
            {
                let mut lanes = rng_lanes(&mut rngs);
                h = substrate.try_sample_hidden_batch_rows(&v, &mut lanes)?;
            }
            screen(&h)?;
        }
    }
    Ok(v)
}

/// Shared chain setup of [`sample_rows`] / [`try_sample_rows`]: one RNG
/// per chain seeded from its stream, and the quantized initial visible
/// batch.
fn init_chains<S: Substrate + ?Sized>(
    substrate: &S,
    rows: &[ChainRequest],
    gibbs_steps: usize,
) -> (Vec<StdRng>, Array2<f64>) {
    assert!(gibbs_steps >= 1, "need at least one Gibbs step");
    assert!(!rows.is_empty(), "need at least one chain");
    let m = substrate.visible_len();
    let mut rngs: Vec<StdRng> = rows
        .iter()
        .map(|row| StdRng::seed_from_u64(row.seed))
        .collect();

    // Initial visible levels: the clamp, or a random state from the
    // chain's own stream (drawn before the chain consumes it further).
    let mut v0 = Array2::zeros((rows.len(), m));
    for ((row, rng), mut out) in rows
        .iter()
        .zip(rngs.iter_mut())
        .zip(v0.axis_iter_mut(ndarray::Axis(0)))
    {
        match &row.init {
            Some(levels) => {
                assert_eq!(levels.len(), m, "clamp width mismatch");
                out.assign(levels);
            }
            None => {
                for x in out.iter_mut() {
                    *x = f64::from(rng.random_bool(0.5));
                }
            }
        }
    }

    // §3.2 step 3, once for the whole coalesced batch: multi-bit data
    // levels pass through the substrate's DTC model; everything after
    // this point is binary feedback. An exactly-binary gather (random
    // inits, 0/1 clamps — the common serving case) skips the conversion
    // pass outright: every `quantize_batch` implementation is the
    // identity on `{0, 1}` by contract, and the skipped copy keeps the
    // gathered batch bit-packable for the substrate's fast kernel.
    let v = if ember_core::kernels::is_binary(&v0) {
        v0
    } else {
        substrate.quantize_batch(&v0)
    };
    (rngs, v)
}

/// Reborrows each chain's RNG as an object-safe lane slice.
fn rng_lanes(rngs: &mut [StdRng]) -> Vec<&mut dyn RngCore> {
    rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_core::{GsConfig, SubstrateSpec};
    use ember_rbm::Rbm;
    use ndarray::arr1;

    fn setup() -> (Rbm, Box<dyn ember_substrate::ReplicableSubstrate>) {
        let mut rng = StdRng::seed_from_u64(7);
        let rbm = Rbm::random(6, 4, 0.6, &mut rng);
        let sub = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
        (rbm, sub)
    }

    #[test]
    fn rows_are_invariant_to_batch_partition() {
        let (_, proto) = setup();
        let rows: Vec<ChainRequest> = (0..10)
            .map(|i| ChainRequest {
                init: (i % 2 == 0).then(|| arr1(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0])),
                seed: 1000 + i,
            })
            .collect();
        let mut all = proto.clone_boxed();
        let full = sample_rows(&mut *all, &rows, 3);
        // Any partition — here singletons — reproduces the same rows.
        for (i, row) in rows.iter().enumerate() {
            let mut solo = proto.clone_boxed();
            let alone = sample_rows(&mut *solo, std::slice::from_ref(row), 3);
            assert_eq!(full.row(i), alone.row(0), "row {i}");
        }
    }

    #[test]
    fn expand_request_uses_per_chain_streams() {
        let req = SampleRequest::new("m").with_samples(3).with_seed(5);
        let rows = expand_request(&req, 5);
        let streams = RngStreams::new(5);
        assert_eq!(rows.len(), 3);
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(row.seed, streams.seed(j as u64));
            assert!(row.init.is_none());
        }
        let seeds: std::collections::HashSet<u64> = rows.iter().map(|r| r.seed).collect();
        assert_eq!(seeds.len(), 3, "chain streams must not collide");
    }

    #[test]
    #[should_panic(expected = "at least one Gibbs step")]
    fn rejects_zero_steps() {
        let (_, mut sub) = setup();
        let rows = [ChainRequest {
            init: None,
            seed: 1,
        }];
        let _ = sample_rows(&mut *sub, &rows, 0);
    }
}
