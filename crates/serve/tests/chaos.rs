//! Chaos suite: the full service matrix (1/2/8 shards × all three
//! substrate backends) under seeded fault injection.
//!
//! The invariants pinned here are the robustness contract of
//! `SamplingService`:
//!
//! * **No hangs, every request answered** — each submission resolves to
//!   a response or a *typed* error, under fault storms included.
//! * **Recovered means bit-identical** — a request whose faults were
//!   absorbed by the reprogram-and-retry loop returns exactly the
//!   fault-free bits (per-row RNG streams are recreated from seeds on
//!   every attempt).
//! * **Exhaustion degrades, never lies** — retry-exhausted requests get
//!   `ServeError::SubstrateFault`; enough of them in a row trip the
//!   model's circuit breaker into the deterministic software fallback,
//!   flagged via `SampleResponse::degraded`.
//! * **Deadlines shed, drains bound shutdown.**

use std::time::{Duration, Instant};

use ember_brim::BrimConfig;
use ember_core::{GsConfig, RetryPolicy, SubstrateSpec};
use ember_rbm::Rbm;
use ember_serve::{SampleRequest, SamplingService, ServeError};
use ember_substrate::{ChaosConfig, ChaosSubstrate};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "m";
const REQUESTS: u64 = 12;

fn backends() -> Vec<(&'static str, SubstrateSpec)> {
    vec![
        ("software", SubstrateSpec::software(GsConfig::default())),
        ("brim", SubstrateSpec::brim(BrimConfig::default())),
        ("annealer", SubstrateSpec::annealer()),
    ]
}

fn request(i: u64) -> SampleRequest {
    SampleRequest::new(MODEL)
        .with_samples(2)
        .with_gibbs_steps(2)
        .with_seed(1_000 + i)
}

/// A fast retry policy for tests: same shape as the default, but with
/// microsecond backoffs so fault storms don't slow the suite down.
fn fast_retries(max_retries: u32) -> RetryPolicy {
    RetryPolicy::default()
        .with_max_retries(max_retries)
        .with_backoff(Duration::from_micros(50), 2.0, Duration::from_millis(1))
}

#[test]
fn seeded_faults_recover_bit_identically_across_shards_and_backends() {
    for (backend, spec) in backends() {
        // One fabricated machine per backend; golden and chaotic
        // services serve clones of the *same* physical identity.
        let mut rng = StdRng::seed_from_u64(0xFAB);
        let rbm = Rbm::random(12, 6, 0.4, &mut rng);
        let proto = spec.fabricate_for(&rbm, &mut rng);

        let golden_service = SamplingService::builder().shards(1).build();
        golden_service
            .register_model(MODEL, rbm.clone(), proto.clone_boxed())
            .unwrap();
        let golden: Vec<Array2<f64>> = (0..REQUESTS)
            .map(|i| golden_service.sample(request(i)).unwrap().samples)
            .collect();

        for shards in [1usize, 2, 8] {
            let chaotic = Box::new(ChaosSubstrate::new(
                proto.clone_boxed(),
                ChaosConfig::new(0xBAD_5EED ^ shards as u64).with_fault_rate(0.01),
            ));
            let service = SamplingService::builder()
                .shards(shards)
                .retry_policy(fast_retries(8))
                .build();
            service.register_model(MODEL, rbm.clone(), chaotic).unwrap();

            let handles: Vec<_> = (0..REQUESTS)
                .map(|i| service.submit(request(i)).unwrap())
                .collect();
            for (i, handle) in handles.into_iter().enumerate() {
                let resp = handle.wait().unwrap_or_else(|e| {
                    panic!("{backend} @ {shards} shards: request {i} failed: {e}")
                });
                assert!(
                    !resp.degraded,
                    "{backend} @ {shards} shards: breaker must not trip at 1% faults"
                );
                assert_eq!(
                    resp.samples, golden[i],
                    "{backend} @ {shards} shards: request {i} recovered to different bits"
                );
            }
        }
    }
}

#[test]
fn heavy_faults_are_absorbed_and_counted() {
    // 5% on every fault class: most groups need at least one retry; all
    // must still recover to the fault-free bits, and the accounting must
    // show the storm happened.
    let mut rng = StdRng::seed_from_u64(0xFAB);
    let rbm = Rbm::random(12, 6, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);

    let golden_service = SamplingService::builder().shards(1).build();
    golden_service
        .register_model(MODEL, rbm.clone(), proto.clone_boxed())
        .unwrap();

    let chaotic = Box::new(ChaosSubstrate::new(
        proto.clone_boxed(),
        ChaosConfig::new(77).with_fault_rate(0.05),
    ));
    let service = SamplingService::builder()
        .shards(1)
        .retry_policy(fast_retries(12))
        .build();
    service.register_model(MODEL, rbm, chaotic).unwrap();

    for i in 0..20 {
        let golden = golden_service.sample(request(i)).unwrap().samples;
        let resp = service.sample(request(i)).unwrap();
        assert_eq!(resp.samples, golden, "request {i}");
    }
    let stats = service.stats();
    assert!(
        stats.total_fault_events() > 0,
        "a 5% schedule over 20 requests must inject something"
    );
    assert!(
        stats.total_recovery_retries() > 0,
        "absorbed faults must be visible as recovery retries"
    );
    assert!(stats.degraded.is_empty(), "no breaker should trip");
    assert_eq!(stats.models[MODEL].failed_requests, 0);
}

#[test]
fn exhausted_retries_trip_the_breaker_into_deterministic_degraded_service() {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    let rbm = Rbm::random(10, 5, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);

    // Every programming and read hard-faults: retries can never succeed.
    let chaotic = Box::new(ChaosSubstrate::new(
        proto,
        ChaosConfig::new(9).with_hard_fault_rate(1.0),
    ));
    let service = SamplingService::builder()
        .shards(2)
        .retry_policy(fast_retries(1))
        .breaker_threshold(2)
        .build();
    service.register_model(MODEL, rbm, chaotic).unwrap();

    // The first `breaker_threshold` requests exhaust their budgets and
    // surface the typed fault...
    for i in 0..2 {
        match service.sample(request(i)) {
            Err(ServeError::SubstrateFault { model, .. }) => assert_eq!(model, MODEL),
            other => panic!("request {i}: expected SubstrateFault, got {other:?}"),
        }
    }
    // ...then the breaker trips and the model degrades to the software
    // fallback: requests succeed again, flagged as degraded.
    let a = service.sample(request(100)).unwrap();
    assert!(a.degraded, "post-trip responses must be flagged degraded");
    // The fallback is fabricated from the model *name*, not the shard,
    // so a repeated seeded request is bit-identical wherever it lands.
    let b = service.sample(request(100)).unwrap();
    assert_eq!(
        a.samples, b.samples,
        "degraded service must stay deterministic"
    );

    let stats = service.stats();
    assert_eq!(stats.degraded, vec![MODEL.to_string()]);
    assert_eq!(stats.models[MODEL].failed_requests, 2);
    assert!(stats.models[MODEL].degraded_requests >= 2);
}

#[test]
fn expired_deadlines_are_shed_without_substrate_work() {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    let rbm = Rbm::random(8, 4, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
    let service = SamplingService::builder().shards(1).build();
    service.register_model(MODEL, rbm, proto).unwrap();

    // Already past due at submission: the shard must shed it with the
    // typed error instead of sampling.
    let doomed = service
        .submit(request(0).with_deadline(Instant::now() - Duration::from_millis(1)))
        .unwrap();
    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
    assert_eq!(service.stats().total_shed_requests(), 1);

    // An undated request right behind it is unaffected.
    let resp = service.sample(request(1)).unwrap();
    assert_eq!(resp.samples.nrows(), 2);
}

#[test]
fn graceful_shutdown_drains_everything_within_the_deadline() {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    let rbm = Rbm::random(8, 4, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
    let service = SamplingService::builder().shards(2).build();
    service.register_model(MODEL, rbm, proto).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|i| service.submit(request(i)).unwrap())
        .collect();
    let report = service.shutdown(Duration::from_secs(30));
    assert!(report.drained, "a light queue must drain well inside 30s");
    assert_eq!(report.aborted_requests, 0);
    for handle in handles {
        assert!(handle.wait().is_ok(), "drained requests must be answered");
    }
}

#[test]
fn expired_drain_aborts_queued_requests_with_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    let rbm = Rbm::random(8, 4, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
    // No faults — just a guaranteed 2 ms latency spike on every sample
    // call, making each request reliably slow (~200 ms at 50 steps).
    let pinned = Box::new(ChaosSubstrate::new(
        proto,
        ChaosConfig::new(1).with_latency_spikes(1.0, Duration::from_millis(2)),
    ));
    let service = SamplingService::builder()
        .shards(1)
        .coalescing(false)
        .build();
    service.register_model(MODEL, rbm, pinned).unwrap();

    // Pin the single shard and give it ample time to pick the request
    // up, then stack a backlog behind it.
    let slow = service
        .submit(SampleRequest::new(MODEL).with_gibbs_steps(50).with_seed(0))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let queued: Vec<_> = (1..4)
        .map(|i| {
            service
                .submit(SampleRequest::new(MODEL).with_gibbs_steps(50).with_seed(i))
                .unwrap()
        })
        .collect();

    // A zero-length drain window: the backlog cannot complete in time.
    let report = service.shutdown(Duration::ZERO);
    assert!(!report.drained);
    assert_eq!(report.aborted_requests, 3, "the whole backlog is aborted");
    // The in-flight request still finishes (no preemption mid-kernel)...
    assert!(slow.wait().is_ok());
    // ...while every aborted one gets the typed close, not a hang.
    for handle in queued {
        assert!(matches!(handle.wait(), Err(ServeError::ServiceClosed)));
    }
}
