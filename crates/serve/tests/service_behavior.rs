//! Service-level behavior: bounded-queue backpressure (reject, never
//! deadlock), coalescing under load, training-through-the-service with
//! version publication, and validation errors.

use ember_core::{GsConfig, SubstrateSpec};
use ember_rbm::{CdTrainer, Rbm};
use ember_serve::{SampleRequest, SamplingService, ServeError, TrainRequest};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(m: usize, n: usize) -> (Rbm, Box<dyn ember_substrate::ReplicableSubstrate>) {
    let mut rng = StdRng::seed_from_u64(4);
    let rbm = Rbm::random(m, n, 0.3, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate(m, n, &mut rng);
    (rbm, proto)
}

/// A request slow enough (many steps on a mid-size model) to pin a shard
/// while the test manipulates the queue behind it.
fn slow_request(seed: u64) -> SampleRequest {
    SampleRequest::new("m")
        .with_gibbs_steps(400)
        .with_seed(seed)
}

#[test]
fn bounded_queue_rejects_rather_than_deadlocks_when_full() {
    let (rbm, proto) = fixture(64, 32);
    let service = SamplingService::builder().shards(1).queue_rows(2).build();
    service.register_model("m", rbm, proto).unwrap();

    // Occupy the single shard, then keep submitting until the two-row
    // queue is at capacity: the next submission must be REJECTED with
    // QueueFull — not block, not deadlock.
    let mut handles = vec![service.submit(slow_request(0)).unwrap()];
    let mut saw_full = false;
    for i in 1..200 {
        match service.submit(slow_request(i)) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::QueueFull { retry_after }) => {
                assert!(
                    retry_after >= std::time::Duration::from_micros(100),
                    "retry_after hint must be a usable, non-zero pause"
                );
                saw_full = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(saw_full, "a 2-row queue must fill under a pinned shard");
    assert!(service.stats().rejected >= 1);

    // No deadlock: every accepted request still completes.
    for handle in handles {
        let resp = handle.wait().unwrap();
        assert_eq!(resp.samples.nrows(), 1);
    }
}

#[test]
fn pending_same_key_requests_coalesce_into_one_batch() {
    let (rbm, proto) = fixture(64, 32);
    let service = SamplingService::builder().shards(1).queue_rows(256).build();
    service.register_model("m", rbm, proto).unwrap();

    // Pin the shard, then queue 16 fast same-key requests: when the
    // shard frees up it must take them as one coalesced batch.
    let slow = service.submit(slow_request(1)).unwrap();
    let fast: Vec<_> = (0..16)
        .map(|i| {
            service
                .submit(
                    SampleRequest::new("m")
                        .with_gibbs_steps(1)
                        .with_seed(100 + i),
                )
                .unwrap()
        })
        .collect();
    slow.wait().unwrap();
    for handle in fast {
        let resp = handle.wait().unwrap();
        assert_eq!(resp.coalesced_rows, 16, "all 16 should ride one batch");
    }
    let stats = service.stats();
    assert_eq!(stats.shards[0].largest_batch, 16);
    assert_eq!(stats.total_batches(), 2); // the slow one + the coalesced one
    assert!(stats.mean_coalesced_rows() > 8.0);
}

#[test]
fn disabling_coalescing_serves_request_at_a_time() {
    let (rbm, proto) = fixture(32, 16);
    let service = SamplingService::builder()
        .shards(1)
        .coalescing(false)
        .build();
    service.register_model("m", rbm, proto).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            service
                .submit(SampleRequest::new("m").with_seed(i))
                .unwrap()
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.wait().unwrap().coalesced_rows, 1);
    }
    assert_eq!(service.stats().total_batches(), 8);
}

#[test]
fn train_through_service_publishes_a_version_and_matches_direct_training() {
    let (rbm, proto) = fixture(8, 4);
    let data = Array2::from_shape_fn((24, 8), |(i, _)| f64::from(i % 2 == 0));
    let trainer = CdTrainer::new(1, 0.05);

    // Direct reference: same snapshot, replica, seed, entry point.
    let mut expected = rbm.clone();
    let mut replica = proto.clone_boxed();
    let mut rng = StdRng::seed_from_u64(77);
    let expected_stats = trainer.train_with(&mut expected, &data, 6, &mut *replica, 2, &mut rng);

    let service = SamplingService::builder().shards(2).build();
    service.register_model("m", rbm, proto).unwrap();
    let resp = service
        .train(
            TrainRequest::new("m", data)
                .with_trainer(trainer)
                .with_batch_size(6)
                .with_epochs(2)
                .with_seed(77),
        )
        .unwrap();
    assert_eq!(resp.new_version, 2);
    assert_eq!(resp.stats, expected_stats);
    assert!(resp.counters.phase_points > 0);

    let snapshot = service.registry().get("m").unwrap();
    assert_eq!(snapshot.version, 2);
    assert_eq!(*snapshot.rbm, expected, "published parameters must match");

    // Sampling continues against the new version.
    let sampled = service
        .sample(SampleRequest::new("m").with_seed(5))
        .unwrap();
    assert_eq!(sampled.model_version, 2);
    assert_eq!(service.stats().models["m"].train_requests, 1);
}

#[test]
fn submit_validates_against_the_registry() {
    let (rbm, proto) = fixture(6, 3);
    let service = SamplingService::builder().shards(1).build();
    service.register_model("m", rbm, proto).unwrap();

    assert!(matches!(
        service.sample(SampleRequest::new("ghost")),
        Err(ServeError::ModelNotFound(_))
    ));
    assert!(matches!(
        service.sample(SampleRequest::new("m").with_samples(0)),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        service.sample(SampleRequest::new("m").with_gibbs_steps(0)),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        service.sample(SampleRequest::new("m").with_clamp(ndarray::Array1::zeros(5))),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        service.sample(SampleRequest::new("m").with_clamp(ndarray::Array1::from_elem(6, 1.5))),
        Err(ServeError::InvalidRequest(_))
    ));
    assert!(matches!(
        service.train(TrainRequest::new("m", Array2::zeros((4, 5)))),
        Err(ServeError::InvalidRequest(_))
    ));

    let (other, wrong_proto) = fixture(9, 3);
    assert!(matches!(
        service.register_model("n", other, {
            let (_, p) = fixture(6, 3);
            p
        }),
        Err(ServeError::InvalidRequest(_))
    ));
    drop(wrong_proto);
}

#[test]
fn oversized_requests_are_invalid_not_backpressure() {
    // Heavier than the whole queue can ever hold: retrying would never
    // help, so this must be a validation error, not QueueFull.
    let (rbm, proto) = fixture(6, 3);
    let service = SamplingService::builder().shards(1).queue_rows(8).build();
    service.register_model("m", rbm, proto).unwrap();
    assert!(matches!(
        service.submit(SampleRequest::new("m").with_samples(9)),
        Err(ServeError::InvalidRequest(_))
    ));
    // At exactly the capacity it is accepted.
    let resp = service
        .sample(SampleRequest::new("m").with_samples(8).with_seed(1))
        .unwrap();
    assert_eq!(resp.samples.nrows(), 8);
    assert_eq!(service.stats().rejected, 0);
}

#[test]
fn shared_registry_models_are_served_after_provisioning() {
    // Service A registers; service B shares the registry and provisions
    // its own replicas for the pre-existing model.
    let (rbm, proto) = fixture(6, 3);
    let a = SamplingService::builder().shards(1).build();
    a.register_model("m", rbm, proto.clone_boxed()).unwrap();

    let b = SamplingService::builder()
        .shards(2)
        .registry(a.registry().clone())
        .build();
    // Visible in the registry but not yet provisioned on B's shards:
    // the executing shard reports the model as unservable.
    assert!(matches!(
        b.sample(SampleRequest::new("m").with_seed(3)),
        Err(ServeError::ModelNotFound(_))
    ));
    b.provision_model("m", proto.clone_boxed()).unwrap();
    let via_b = b.sample(SampleRequest::new("m").with_seed(3)).unwrap();
    let via_a = a.sample(SampleRequest::new("m").with_seed(3)).unwrap();
    assert_eq!(via_b.samples, via_a.samples, "same model, same seed");

    // provision_model validates like register_model.
    assert!(matches!(
        b.provision_model("ghost", proto.clone_boxed()),
        Err(ServeError::ModelNotFound(_))
    ));
    let (_, wrong) = fixture(9, 3);
    assert!(matches!(
        b.provision_model("m", wrong),
        Err(ServeError::InvalidRequest(_))
    ));
}

#[test]
fn concurrent_training_loses_no_updates() {
    // Two clients train the same model concurrently on a 2-shard
    // service: either both land (serialized on one shard) or the loser
    // gets TrainConflict — never a silent lost update.
    let (rbm, proto) = fixture(8, 4);
    let service = SamplingService::builder().shards(2).build();
    service.register_model("m", rbm, proto).unwrap();
    let data = Array2::from_shape_fn((16, 8), |(i, _)| f64::from(i % 2 == 0));
    let h1 = service
        .submit_train(TrainRequest::new("m", data.clone()).with_seed(1))
        .unwrap();
    let h2 = service
        .submit_train(TrainRequest::new("m", data).with_seed(2))
        .unwrap();
    let results = [h1.wait(), h2.wait()];
    let won = results.iter().filter(|r| r.is_ok()).count();
    let conflicted = results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::TrainConflict { .. })))
        .count();
    assert_eq!(won + conflicted, 2, "unexpected failure: {results:?}");
    assert!(won >= 1, "at least one trainer must land");
    // The registry version reflects exactly the publishes that landed.
    assert_eq!(service.registry().get("m").unwrap().version, 1 + won as u64);
}

#[test]
fn seedless_requests_are_served_from_the_shard_lane() {
    let (rbm, proto) = fixture(6, 3);
    let service = SamplingService::builder().shards(1).build();
    service.register_model("m", rbm, proto).unwrap();
    let a = service
        .sample(SampleRequest::new("m").with_samples(3))
        .unwrap();
    let b = service
        .sample(SampleRequest::new("m").with_samples(3))
        .unwrap();
    assert_eq!(a.samples.dim(), (3, 6));
    // Successive lane seeds differ, so the two draws are (almost surely)
    // different — the service is not replaying one stream.
    assert_ne!(a.samples, b.samples);
}

#[test]
fn mixed_model_traffic_keeps_per_model_accounting() {
    let (rbm_a, proto_a) = fixture(6, 3);
    let (rbm_b, proto_b) = fixture(10, 5);
    let service = SamplingService::builder().shards(2).build();
    service.register_model("a", rbm_a, proto_a).unwrap();
    service.register_model("b", rbm_b, proto_b).unwrap();
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let name = if i % 2 == 0 { "a" } else { "b" };
            service
                .submit(SampleRequest::new(name).with_seed(i))
                .unwrap()
        })
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let resp = handle.wait().unwrap();
        assert_eq!(resp.samples.ncols(), if i % 2 == 0 { 6 } else { 10 });
    }
    let stats = service.stats();
    assert_eq!(stats.models["a"].sample_requests, 6);
    assert_eq!(stats.models["b"].sample_requests, 6);
    assert_eq!(stats.total_rows(), 12);
}

#[test]
fn serving_binary_traffic_runs_on_the_packed_kernel() {
    // A served Gibbs chain is binary end to end (random binary inits,
    // exact {0, 1} feedback), so every sampling call of every shard
    // must be served by the bit-packed kernel — and the service stats
    // must say so.
    let (rbm, proto) = fixture(32, 16);
    let service = SamplingService::builder().shards(2).build();
    service.register_model("m", rbm, proto).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            service
                .submit(SampleRequest::new("m").with_samples(2).with_seed(i))
                .unwrap()
        })
        .collect();
    for handle in handles {
        handle.wait().unwrap();
    }
    let stats = service.stats();
    assert!(stats.total_packed_kernel_calls() > 0);
    assert_eq!(stats.total_dense_kernel_calls(), 0);
    assert_eq!(stats.packed_kernel_fraction(), 1.0);
    // The per-response counter delta carries the same attribution.
    let resp = service
        .sample(SampleRequest::new("m").with_seed(99))
        .unwrap();
    assert!(resp.counters.packed_kernel_calls > 0);
    assert_eq!(resp.counters.dense_kernel_calls, 0);
}

#[test]
fn panicking_request_does_not_hang_its_neighbors() {
    // Regression: a panic mid-request used to kill the worker thread and
    // leave every queued caller blocked forever on a dropped reply
    // channel. Now the panicking request gets a typed ShardRestarted,
    // the shard re-provisions, and the queue keeps draining.
    let (rbm, proto) = fixture(8, 4);
    let chaotic = Box::new(ember_substrate::ChaosSubstrate::new(
        proto,
        ember_substrate::ChaosConfig::new(7).with_panic_on_sample_call(1),
    ));
    let service = SamplingService::builder()
        .shards(1)
        .coalescing(false)
        .build();
    service.register_model("m", rbm, chaotic).unwrap();

    // First request trips the injected panic; its neighbors are queued
    // behind it on the same (single) shard.
    let doomed = service
        .submit(SampleRequest::new("m").with_seed(0))
        .unwrap();
    let neighbors: Vec<_> = (1..5)
        .map(|i| {
            service
                .submit(SampleRequest::new("m").with_seed(i))
                .unwrap()
        })
        .collect();

    assert!(matches!(
        doomed.wait(),
        Err(ServeError::ShardRestarted { shard: 0 })
    ));
    for neighbor in neighbors {
        let resp = neighbor.wait().expect("neighbors must still be served");
        assert_eq!(resp.samples.nrows(), 1);
    }
    let stats = service.stats();
    assert_eq!(stats.total_restarts(), 1, "exactly one recovery");
    // The restarted shard serves resubmissions immediately.
    let resubmitted = service
        .sample(SampleRequest::new("m").with_seed(0))
        .unwrap();
    assert_eq!(resubmitted.samples.nrows(), 1);
}

#[test]
fn concurrent_flood_accounts_for_every_request_exactly() {
    // 16 client threads flood a tiny queue; backpressure may reject any
    // number of submissions, but accepted + rejected must equal
    // submitted, every accepted request must complete, and the service's
    // own `rejected` counter must agree with the clients' tally.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 16;
    const PER_THREAD: u64 = 50;

    let (rbm, proto) = fixture(16, 8);
    let service = Arc::new(SamplingService::builder().shards(2).queue_rows(8).build());
    service.register_model("m", rbm, proto).unwrap();

    let accepted = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let accepted = Arc::clone(&accepted);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let seed = t as u64 * PER_THREAD + i;
                    match service
                        .submit(SampleRequest::new("m").with_gibbs_steps(3).with_seed(seed))
                    {
                        Ok(handle) => {
                            accepted.fetch_add(1, Ordering::SeqCst);
                            let resp = handle.wait().expect("accepted requests must complete");
                            assert_eq!(resp.samples.nrows(), 1);
                        }
                        Err(ServeError::QueueFull { retry_after }) => {
                            rejected.fetch_add(1, Ordering::SeqCst);
                            assert!(retry_after > std::time::Duration::ZERO);
                        }
                        Err(other) => panic!("unexpected error under flood: {other}"),
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let accepted = accepted.load(Ordering::SeqCst);
    let rejected = rejected.load(Ordering::SeqCst);
    assert_eq!(
        accepted + rejected,
        (THREADS as u64) * PER_THREAD,
        "every submission must be either accepted or rejected"
    );
    assert!(accepted > 0, "a live service must accept some of the flood");
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected, "service and clients must agree");
    let served: u64 = stats.shards.iter().map(|s| s.sample_requests).sum();
    assert_eq!(served, accepted, "every accepted request must be served");
}
