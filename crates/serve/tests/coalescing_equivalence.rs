//! The serving layer's central correctness claim: for fixed request
//! seeds, N concurrent single-row requests through the
//! [`SamplingService`] return rows **bit-identical** to one direct
//! batched [`batch::sample_rows`] call, at 1, 2, and 8 worker shards,
//! for every substrate backend — coalescing, sharding, and scheduling
//! are invisible in the sampled bits.

use ember_brim::BrimConfig;
use ember_core::{GsConfig, SubstrateSpec};
use ember_rbm::{Rbm, RngStreams};
use ember_serve::batch::{self, ChainRequest};
use ember_serve::{SampleRequest, SamplingService};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Requests with a mix of clamped and free-running chains, all seeded
/// from one stream family.
fn requests(model: &str, n: usize, gibbs_steps: usize, clamp: &Array1<f64>) -> Vec<SampleRequest> {
    let streams = RngStreams::new(0xC0A1E5CE);
    (0..n)
        .map(|i| {
            let req = SampleRequest::new(model)
                .with_gibbs_steps(gibbs_steps)
                .with_seed(streams.seed(i as u64));
            if i % 3 == 0 {
                req.with_clamp(clamp.clone())
            } else {
                req
            }
        })
        .collect()
}

/// The direct batched path the service must reproduce: every request's
/// single chain in one `sample_rows` call on one replica.
fn direct_rows(
    proto: &dyn ember_substrate::ReplicableSubstrate,
    rbm: &Rbm,
    reqs: &[SampleRequest],
) -> Array2<f64> {
    let mut substrate = proto.clone_boxed();
    substrate.program(
        &rbm.weights().view(),
        &rbm.visible_bias().view(),
        &rbm.hidden_bias().view(),
    );
    let rows: Vec<ChainRequest> = reqs
        .iter()
        .flat_map(|r| batch::expand_request(r, r.seed.expect("test requests are seeded")))
        .collect();
    batch::sample_rows(&mut *substrate, &rows, reqs[0].gibbs_steps)
}

fn check_backend(spec: SubstrateSpec, shard_counts: &[usize]) {
    let mut rng = StdRng::seed_from_u64(99);
    let (m, n) = (7, 4);
    let rbm = Rbm::random(m, n, 0.7, &mut rng);
    let proto = spec.fabricate(m, n, &mut rng);
    let clamp = Array1::from_vec((0..m).map(|i| f64::from(i % 2 == 0)).collect());
    let n_requests = 24;
    let gibbs_steps = 2;
    let reqs = requests("m", n_requests, gibbs_steps, &clamp);
    let expected = direct_rows(&*proto, &rbm, &reqs);

    for &shards in shard_counts {
        let service = SamplingService::builder()
            .shards(shards)
            .queue_rows(256)
            .build();
        service
            .register_model("m", rbm.clone(), proto.clone_boxed())
            .unwrap();
        // Submit everything up front so shards race over a full queue —
        // the adversarial schedule for coalescing.
        let handles: Vec<_> = reqs
            .iter()
            .map(|r| service.submit(r.clone()).unwrap())
            .collect();
        for (i, handle) in handles.into_iter().enumerate() {
            let resp = handle.wait().unwrap();
            assert_eq!(resp.samples.nrows(), 1);
            assert_eq!(resp.model_version, 1);
            assert!(resp.shard < shards);
            assert_eq!(
                resp.samples.row(0),
                expected.row(i),
                "backend {} request {i} at {shards} shard(s)",
                spec.backend_name()
            );
        }
        let stats = service.stats();
        assert_eq!(stats.total_rows(), n_requests as u64);
        assert_eq!(stats.models["m"].sample_requests, n_requests as u64);
    }
}

#[test]
fn software_gibbs_service_matches_direct_batched_path_at_1_2_8_shards() {
    check_backend(SubstrateSpec::software(GsConfig::default()), &[1, 2, 8]);
}

#[test]
fn software_gibbs_with_noise_still_matches() {
    use ember_analog::NoiseModel;
    let config = GsConfig::default().with_noise(NoiseModel::new(0.1, 0.05).unwrap());
    check_backend(SubstrateSpec::software(config), &[1, 8]);
}

#[test]
fn brim_service_matches_direct_batched_path_at_1_2_8_shards() {
    // Short anneals keep the dynamical simulation cheap; determinism is
    // what is under test, not mixing quality.
    let spec = SubstrateSpec::Brim {
        config: BrimConfig::default(),
        flip_probability: 0.05,
        anneal_steps: 15,
    };
    check_backend(spec, &[1, 2, 8]);
}

#[test]
fn annealer_service_matches_direct_batched_path_at_1_2_8_shards() {
    check_backend(SubstrateSpec::annealer(), &[1, 2, 8]);
}

#[test]
fn multi_row_requests_coalesce_identically() {
    // Same property with n_samples > 1 rows per request: the response
    // matrix equals the direct expansion of the same request.
    let mut rng = StdRng::seed_from_u64(7);
    let rbm = Rbm::random(5, 3, 0.5, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate(5, 3, &mut rng);
    let reqs: Vec<SampleRequest> = (0..6)
        .map(|i| {
            SampleRequest::new("m")
                .with_samples(4)
                .with_gibbs_steps(3)
                .with_seed(500 + i)
        })
        .collect();
    let expected = direct_rows(&*proto, &rbm, &reqs);
    let service = SamplingService::builder().shards(2).build();
    service
        .register_model("m", rbm.clone(), proto.clone_boxed())
        .unwrap();
    let handles: Vec<_> = reqs
        .iter()
        .map(|r| service.submit(r.clone()).unwrap())
        .collect();
    for (i, handle) in handles.into_iter().enumerate() {
        let resp = handle.wait().unwrap();
        assert_eq!(resp.samples.nrows(), 4);
        for j in 0..4 {
            assert_eq!(
                resp.samples.row(j),
                expected.row(4 * i + j),
                "req {i} row {j}"
            );
        }
    }
}
