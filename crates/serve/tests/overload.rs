//! Overload robustness: the bounded coalescing window, priority lanes,
//! admission control, and the sustained-overload shedder — and the
//! invariant underneath all of them: scheduling may decide *when* and
//! *whether* a request runs, but never *what bits* it returns.

use std::time::{Duration, Instant};

use ember_core::{GsConfig, SubstrateSpec};
use ember_rbm::Rbm;
use ember_serve::{Priority, SampleRequest, SamplingService, ServeError};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODEL: &str = "m";

fn fixture(m: usize, n: usize) -> (Rbm, Box<dyn ember_substrate::ReplicableSubstrate>) {
    let mut rng = StdRng::seed_from_u64(7);
    let rbm = Rbm::random(m, n, 0.3, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate(m, n, &mut rng);
    (rbm, proto)
}

/// The unloaded ground truth: what `seeds` sample to on an idle,
/// windowless single-shard service. Accepted requests on any loaded /
/// windowed / sharded configuration must reproduce these bits exactly.
fn reference_bits(m: usize, n: usize, gibbs_steps: usize, seeds: &[u64]) -> Vec<Array2<f64>> {
    let (rbm, proto) = fixture(m, n);
    let service = SamplingService::builder().shards(1).build();
    service.register_model(MODEL, rbm, proto).unwrap();
    seeds
        .iter()
        .map(|&seed| {
            service
                .sample(
                    SampleRequest::new(MODEL)
                        .with_gibbs_steps(gibbs_steps)
                        .with_seed(seed),
                )
                .unwrap()
                .samples
        })
        .collect()
}

#[test]
fn lone_interactive_request_is_bounded_by_the_window() {
    let (rbm, proto) = fixture(48, 24);
    let window = Duration::from_millis(250);
    let service = SamplingService::builder()
        .shards(1)
        .coalesce_window(window)
        .build();
    service.register_model(MODEL, rbm, proto).unwrap();

    // A lone request has no batch-mates: the shard must hold it for the
    // full window (lower bound) and then dispatch immediately (upper
    // bound: window + service time, with generous CI slack).
    let started = Instant::now();
    let resp = service
        .sample(SampleRequest::new(MODEL).with_gibbs_steps(3).with_seed(42))
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed >= window - Duration::from_millis(5),
        "a lone request dispatches no earlier than the window ({elapsed:?})"
    );
    assert!(
        elapsed < window + Duration::from_secs(5),
        "a lone request's latency is bounded by window + service_time ({elapsed:?})"
    );

    // The window shapes scheduling only — the bits are the unloaded
    // service's bits.
    let reference = reference_bits(48, 24, 3, &[42]);
    assert_eq!(resp.samples, reference[0]);

    // The shard-side histogram saw the windowed latency.
    let latency = service.stats().latency();
    assert_eq!(latency.count(), 1);
    assert!(latency.p99() >= window - Duration::from_millis(5));
}

#[test]
fn full_group_dispatches_without_waiting_out_the_window() {
    let (rbm, proto) = fixture(48, 24);
    // A window so long that any test finishing promptly proves the
    // dispatch-when-full path.
    let service = SamplingService::builder()
        .shards(1)
        .max_coalesce_rows(4)
        .coalesce_window(Duration::from_secs(60))
        .build();
    service.register_model(MODEL, rbm, proto).unwrap();

    let started = Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(SampleRequest::new(MODEL).with_gibbs_steps(3).with_seed(i))
                .unwrap()
        })
        .collect();
    for handle in handles {
        handle.wait().unwrap();
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "a full group must dispatch immediately, not wait out the window"
    );
}

#[test]
fn bulk_flood_does_not_starve_interactive_past_the_window() {
    let (rbm, proto) = fixture(64, 32);
    let service = SamplingService::builder()
        .shards(1)
        .coalesce_window(Duration::from_millis(25))
        .build();
    service.register_model(MODEL, rbm, proto).unwrap();

    // 30 slow Bulk requests (120 rows ≥ two coalesced groups), then one
    // Interactive request behind them all.
    let bulk: Vec<_> = (0..30)
        .map(|i| {
            service
                .submit(
                    SampleRequest::new(MODEL)
                        .with_samples(4)
                        .with_gibbs_steps(600)
                        .with_seed(100 + i)
                        .with_priority(Priority::Bulk),
                )
                .unwrap()
        })
        .collect();
    let resp = service
        .sample(
            SampleRequest::new(MODEL)
                .with_gibbs_steps(3)
                .with_seed(42)
                .with_priority(Priority::Interactive),
        )
        .unwrap();

    // Lane order: the interactive request overtook queued Bulk work, so
    // part of the flood is still unanswered the moment it completes.
    let pending = bulk.iter().filter(|h| h.try_wait().is_none()).count();
    assert!(
        pending > 0,
        "interactive must complete while bulk work is still queued"
    );

    // Overtaking is scheduling only: the bits are the unloaded bits.
    let reference = reference_bits(64, 32, 3, &[42]);
    assert_eq!(resp.samples, reference[0]);

    for handle in bulk {
        assert!(handle.wait().is_ok(), "bulk work still completes");
    }
}

#[test]
fn admission_control_rejects_provably_late_deadlines_at_enqueue() {
    let (rbm, proto) = fixture(48, 24);
    let service = SamplingService::builder().shards(1).build();
    service.register_model(MODEL, rbm, proto).unwrap();

    // Before any row is served the admission estimate is 1 ms/row: 64
    // rows project 64 ms, so a 5 ms deadline is provably unreachable —
    // refused at enqueue, typed, with a usable retry hint.
    let err = service
        .submit(
            SampleRequest::new(MODEL)
                .with_samples(64)
                .with_gibbs_steps(1)
                .with_seed(1)
                .with_deadline_in(Duration::from_millis(5)),
        )
        .unwrap_err();
    match err {
        ServeError::Overloaded { retry_after } => {
            assert!(retry_after >= Duration::from_micros(100));
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(service.stats().admission_rejected, 1);

    // A reachable deadline sails through.
    let resp = service
        .sample(
            SampleRequest::new(MODEL)
                .with_samples(64)
                .with_gibbs_steps(1)
                .with_seed(1)
                .with_deadline_in(Duration::from_secs(30)),
        )
        .unwrap();
    assert_eq!(resp.samples.nrows(), 64);

    // An *already-expired* deadline is not an admission case: it keeps
    // the established shed path and typed answer.
    let doomed = service
        .submit(
            SampleRequest::new(MODEL)
                .with_seed(2)
                .with_deadline(Instant::now() - Duration::from_millis(1)),
        )
        .unwrap();
    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
}

/// The tentpole invariant, per shard count: a deterministic overload
/// flood against a plugged service sheds **exactly** the Bulk lane —
/// newest first, typed `Overloaded` — admits every Interactive request,
/// and the admitted requests return bit-identical samples to the
/// unloaded service.
#[test]
fn overload_flood_sheds_bulk_first_with_exact_accounting_and_identical_bits() {
    let interactive_seeds: Vec<u64> = (0..8).map(|i| 3000 + i).collect();
    let reference = reference_bits(48, 24, 1, &interactive_seeds);

    for shards in [1usize, 2, 8] {
        let (rbm, proto) = fixture(48, 24);
        let window = Duration::from_millis(1200);
        let service = SamplingService::builder()
            .shards(shards)
            .queue_rows(8)
            .coalesce_window(window)
            .build();
        service.register_model(MODEL, rbm, proto).unwrap();

        // Plug every shard: one Interactive request per shard, each with
        // a distinct gibbs_steps key so no two coalesce. Each shard pops
        // its plug and (group not full) holds it open for the window —
        // leaving the queue state fully under this test's control.
        let plugs: Vec<_> = (0..shards)
            .map(|j| {
                service
                    .submit(
                        SampleRequest::new(MODEL)
                            .with_gibbs_steps(100 + j)
                            .with_seed(1000 + j as u64),
                    )
                    .unwrap()
            })
            .collect();
        std::thread::sleep(Duration::from_millis(150));

        // Fill the 8-row queue: 6 Bulk, then 2 Interactive.
        let bulk: Vec<_> = (0..6)
            .map(|i| {
                service
                    .submit(
                        SampleRequest::new(MODEL)
                            .with_gibbs_steps(1)
                            .with_seed(2000 + i)
                            .with_priority(Priority::Bulk),
                    )
                    .unwrap()
            })
            .collect();
        // 8 Interactive arrivals: the first two fill the queue; each of
        // the remaining six must evict exactly one queued Bulk request
        // (newest first) instead of being turned away.
        let interactive: Vec<_> = interactive_seeds
            .iter()
            .map(|&seed| {
                service
                    .submit(
                        SampleRequest::new(MODEL)
                            .with_gibbs_steps(1)
                            .with_seed(seed),
                    )
                    .unwrap()
            })
            .collect();

        // Exact shed accounting: all six Bulk requests were evicted with
        // the typed error and a usable hint; nothing was rejected, no
        // Interactive request was shed.
        let mut shed = 0;
        for handle in bulk {
            match handle.wait() {
                Err(ServeError::Overloaded { retry_after }) => {
                    assert!(retry_after >= Duration::from_micros(100));
                    shed += 1;
                }
                other => panic!("bulk under overload must shed with Overloaded, got {other:?}"),
            }
        }
        assert_eq!(shed, 6, "exactly the Bulk lane is shed ({shards} shards)");

        // Every admitted request completes with the unloaded bits.
        for plug in plugs {
            plug.wait()
                .unwrap_or_else(|e| panic!("plug must be served ({shards} shards): {e}"));
        }
        for (handle, expected) in interactive.into_iter().zip(&reference) {
            let resp = handle
                .wait()
                .unwrap_or_else(|e| panic!("interactive must be admitted ({shards} shards): {e}"));
            assert_eq!(
                resp.samples, *expected,
                "accepted bits must match the unloaded service ({shards} shards)"
            );
        }

        let stats = service.stats();
        assert_eq!(stats.shed_bulk, 6, "{shards} shards");
        assert_eq!(stats.rejected, 0, "{shards} shards");
        assert_eq!(stats.admission_rejected, 0, "{shards} shards");
        assert_eq!(stats.total_shed_requests(), 0, "{shards} shards");
        let accepted: u64 = stats.shards.iter().map(|s| s.sample_requests).sum();
        assert_eq!(accepted, shards as u64 + 8, "{shards} shards");
        // The histograms saw exactly the accepted requests.
        assert_eq!(stats.latency().count(), shards as u64 + 8);
        assert!(stats.latency().p99() >= stats.latency().p50());
    }
}
