//! Property-based tests of the RBM stack invariants.

use ember_rbm::{exact, gibbs, math, CdTrainer, Rbm};
use ndarray::{Array1, Array2};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn arb_rbm(max_v: usize, max_h: usize) -> impl Strategy<Value = Rbm> {
    (2..=max_v, 1..=max_h, any::<u64>(), 0.01f64..1.0).prop_map(|(m, n, seed, std)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Rbm::random(m, n, std, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// e^{−F(v)} = Σ_h e^{−E(v,h)} for every visible vector.
    #[test]
    fn free_energy_marginalizes(rbm in arb_rbm(5, 4), code in 0u64..32) {
        let m = rbm.visible_len();
        let v = exact::bits_to_array(code % (1 << m), m);
        let mut direct = Vec::new();
        for h_code in 0u64..(1 << rbm.hidden_len()) {
            let h = exact::bits_to_array(h_code, rbm.hidden_len());
            direct.push(-rbm.energy(&v.view(), &h.view()));
        }
        let log_sum = math::logsumexp(&direct);
        prop_assert!((log_sum - (-rbm.free_energy(&v.view()))).abs() < 1e-9);
    }

    /// Conditional probabilities are proper probabilities, batch == single.
    #[test]
    fn conditionals_proper(rbm in arb_rbm(6, 5), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v = Array1::from_shape_fn(rbm.visible_len(), |_| {
            if rng.random_bool(0.5) { 1.0 } else { 0.0 }
        });
        let p = rbm.hidden_probs(&v.view());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let batch = {
            let mut b = Array2::zeros((1, rbm.visible_len()));
            b.row_mut(0).assign(&v);
            rbm.hidden_probs_batch(&b)
        };
        for j in 0..rbm.hidden_len() {
            prop_assert!((batch[[0, j]] - p[j]).abs() < 1e-12);
        }
    }

    /// The exact visible distribution is a proper distribution.
    #[test]
    fn exact_distribution_normalized(rbm in arb_rbm(6, 4)) {
        let p = exact::visible_distribution(&rbm);
        prop_assert!((p.sum() - 1.0).abs() < 1e-8);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    /// Gibbs chains only produce binary states, of the right shapes.
    #[test]
    fn gibbs_binary(rbm in arb_rbm(6, 4), seed in any::<u64>(), k in 1usize..5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let v0 = Array1::zeros(rbm.visible_len());
        let (v, h) = gibbs::chain(&rbm, &v0, k, &mut rng);
        prop_assert_eq!(v.len(), rbm.visible_len());
        prop_assert_eq!(h.len(), rbm.hidden_len());
        prop_assert!(v.iter().chain(h.iter()).all(|&x| x == 0.0 || x == 1.0));
    }

    /// A CD epoch never produces non-finite parameters.
    #[test]
    fn cd_stays_finite(seed in any::<u64>(), k in 1usize..4, lr in 0.001f64..0.5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rbm = Rbm::random(6, 3, 0.1, &mut rng);
        let data = Array2::from_shape_fn((16, 6), |(i, j)| ((i + j) % 2) as f64);
        CdTrainer::new(k, lr).train_epoch(&mut rbm, &data, 4, &mut rng);
        prop_assert!(rbm.weights().iter().all(|w| w.is_finite()));
        prop_assert!(rbm.visible_bias().iter().all(|b| b.is_finite()));
        prop_assert!(rbm.hidden_bias().iter().all(|b| b.is_finite()));
    }

    /// logsumexp is shift-invariant and ≥ max.
    #[test]
    fn logsumexp_properties(xs in proptest::collection::vec(-50.0f64..50.0, 1..12), c in -20.0f64..20.0) {
        let lse = math::logsumexp(&xs);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lse >= max - 1e-12);
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((math::logsumexp(&shifted) - (lse + c)).abs() < 1e-9);
    }

    /// Bipartite conversion preserves the energy function.
    #[test]
    fn bipartite_roundtrip(rbm in arb_rbm(4, 3), vc in 0u64..16, hc in 0u64..8) {
        let m = rbm.visible_len();
        let n = rbm.hidden_len();
        let v = exact::bits_to_array(vc % (1 << m), m);
        let h = exact::bits_to_array(hc % (1 << n), n);
        let bp = rbm.to_bipartite();
        let vb: Vec<bool> = v.iter().map(|&x| x >= 0.5).collect();
        let hb: Vec<bool> = h.iter().map(|&x| x >= 0.5).collect();
        prop_assert!((bp.energy_bits(&vb, &hb) - rbm.energy(&v.view(), &h.view())).abs() < 1e-10);
    }
}
