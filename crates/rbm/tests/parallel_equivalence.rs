//! The parallel sampling engine's reproducibility contract: for a fixed
//! master seed, every `*_par` routine is **bit-identical** at 1, 2, and
//! 8 rayon threads — scheduling may move chains between workers but can
//! never change which random numbers a chain consumes.

use ember_rbm::{gibbs, CdTrainer, PcdTrainer, Rbm, RngStreams};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn random_batch(rows: usize, cols: usize, seed: u64) -> Array2<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Array2::from_shape_fn((rows, cols), |_| f64::from(rng.random_bool(0.4)))
}

#[test]
fn chain_batch_par_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(11);
    let rbm = Rbm::random(20, 12, 0.4, &mut rng);
    let v0 = random_batch(17, 20, 5);
    let streams = RngStreams::new(99);
    let reference = with_threads(1, || gibbs::chain_batch_par(&rbm, &v0, 3, streams));
    for threads in THREAD_COUNTS {
        let (v, h) = with_threads(threads, || gibbs::chain_batch_par(&rbm, &v0, 3, streams));
        assert_eq!(v, reference.0, "v differs at {threads} threads");
        assert_eq!(h, reference.1, "h differs at {threads} threads");
    }
}

#[test]
fn sample_model_par_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(13);
    let rbm = Rbm::random(10, 6, 0.5, &mut rng);
    let streams = RngStreams::new(123);
    let reference = with_threads(1, || gibbs::sample_model_par(&rbm, 33, 20, 2, 4, streams));
    for threads in THREAD_COUNTS {
        let samples = with_threads(threads, || {
            gibbs::sample_model_par(&rbm, 33, 20, 2, 4, streams)
        });
        assert_eq!(samples, reference, "samples differ at {threads} threads");
    }
}

#[test]
fn cd_trainer_gradients_bit_identical_across_thread_counts() {
    let data = random_batch(40, 12, 7);
    let streams = RngStreams::new(2023);
    let train = |threads: usize| {
        with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(1);
            let mut rbm = Rbm::random(12, 6, 0.01, &mut rng);
            let trainer = CdTrainer::new(2, 0.1)
                .with_momentum(0.5)
                .with_weight_decay(1e-4);
            trainer.train_par(&mut rbm, &data, 8, 3, streams);
            rbm
        })
    };
    let reference = train(1);
    for threads in THREAD_COUNTS {
        assert_eq!(
            train(threads),
            reference,
            "model differs at {threads} threads"
        );
    }
}

#[test]
fn pcd_trainer_bit_identical_across_thread_counts() {
    let data = random_batch(30, 10, 9);
    let streams = RngStreams::new(77);
    let train = |threads: usize| {
        with_threads(threads, || {
            let mut rng = StdRng::seed_from_u64(3);
            let mut rbm = Rbm::random(10, 5, 0.01, &mut rng);
            let mut trainer = PcdTrainer::new(1, 0.05, 12, &rbm, &mut rng);
            trainer.train_par(&mut rbm, &data, 10, 3, streams);
            (rbm, trainer.particles().clone())
        })
    };
    let reference = train(1);
    for threads in THREAD_COUNTS {
        let got = train(threads);
        assert_eq!(got.0, reference.0, "model differs at {threads} threads");
        assert_eq!(got.1, reference.1, "particles differ at {threads} threads");
    }
}

#[test]
fn parallel_cd_learns_like_serial_cd() {
    // Not bit-equal to the serial API (different RNG layout), but the
    // learning outcome must match in quality.
    let data = Array2::from_shape_fn((60, 8), |(i, _)| f64::from(i % 2 == 0));
    let mut rng = StdRng::seed_from_u64(4);
    let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
    let before = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
    // Same hyper-parameters as the serial `cd1_learns_two_modes` test
    // (lr 0.1 overshoots late in training on this tiny model).
    let trainer = CdTrainer::new(1, 0.05);
    let streams = RngStreams::new(42);
    trainer.train_par(&mut rbm, &data, 10, 60, streams);
    let after = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
    assert!(after > before + 1.0, "LL {before} -> {after}");
}

#[test]
fn chain_batch_par_outputs_are_binary_and_shaped() {
    let mut rng = StdRng::seed_from_u64(21);
    let rbm = Rbm::random(9, 5, 0.3, &mut rng);
    let v0 = random_batch(6, 9, 17);
    let (v, h) = gibbs::chain_batch_par(&rbm, &v0, 2, RngStreams::new(1));
    assert_eq!(v.dim(), (6, 9));
    assert_eq!(h.dim(), (6, 5));
    assert!(v.iter().chain(h.iter()).all(|&x| x == 0.0 || x == 1.0));
}
