//! Gibbs-chain utilities shared by the software trainers (Algorithm 1
//! lines 12–15) and used standalone as the MCMC reference the paper's
//! substrate replaces.
//!
//! # The parallel batched engine and its RNG-stream contract
//!
//! Rows of a batch are independent Markov chains, so the `*_par`
//! functions ([`chain_batch_par`], [`sample_model_par`]) fan the chains
//! out across the rayon pool. Randomness is **never** drawn from a
//! shared generator: a [`RngStreams`] family splits the caller's master
//! seed into one deterministic substream per chain (SplitMix64 over the
//! chain index, see [`crate::RngStreams`]), chain `i` consumes only
//! stream `i`, and results are written back by index. Scheduling can
//! therefore change *which thread* runs a chain but never *which random
//! numbers* it sees: outputs are bit-identical at every thread count,
//! including the serial fallback. The property tests in
//! `tests/parallel_equivalence.rs` pin this at 1, 2, and 8 threads.
//!
//! The serial single-generator functions ([`chain_batch`],
//! [`sample_model`]) are kept unchanged as the reference path (and as
//! the baseline mode of the `bench_pr1` harness).

use ndarray::{Array1, Array2, Axis};
use rand::Rng;
use rayon::prelude::*;

use crate::{Rbm, RngStreams};

/// One full Gibbs step from a hidden state: samples `v ~ P(v|h)` then
/// `h' ~ P(h|v)` (Algorithm 1 lines 13–14). Returns `(v, h')`.
pub fn step_from_hidden<R: Rng + ?Sized>(
    rbm: &Rbm,
    h: &Array1<f64>,
    rng: &mut R,
) -> (Array1<f64>, Array1<f64>) {
    let v = rbm.sample_visible(&h.view(), rng);
    let h_next = rbm.sample_hidden(&v.view(), rng);
    (v, h_next)
}

/// One full Gibbs step from a visible state: samples `h ~ P(h|v)` then
/// `v' ~ P(v|h)`. Returns `(v', h)`.
pub fn step_from_visible<R: Rng + ?Sized>(
    rbm: &Rbm,
    v: &Array1<f64>,
    rng: &mut R,
) -> (Array1<f64>, Array1<f64>) {
    let h = rbm.sample_hidden(&v.view(), rng);
    let v_next = rbm.sample_visible(&h.view(), rng);
    (v_next, h)
}

/// Runs a `k`-step Gibbs chain seeded at a data vector and returns the
/// negative-phase pair `(v⁻, h⁻)` (the inner loop of Algorithm 1).
pub fn chain<R: Rng + ?Sized>(
    rbm: &Rbm,
    v0: &Array1<f64>,
    k: usize,
    rng: &mut R,
) -> (Array1<f64>, Array1<f64>) {
    assert!(k >= 1, "chain length must be at least 1");
    let mut h = rbm.sample_hidden(&v0.view(), rng);
    let mut v = v0.clone();
    for _ in 0..k {
        let (v_next, h_next) = step_from_hidden(rbm, &h, rng);
        v = v_next;
        h = h_next;
    }
    (v, h)
}

/// Batched `k`-step Gibbs chain: rows of `v0` evolve independently.
/// Returns `(v⁻, h⁻)` matrices of shapes `(batch, m)` / `(batch, n)`.
pub fn chain_batch<R: Rng + ?Sized>(
    rbm: &Rbm,
    v0: &Array2<f64>,
    k: usize,
    rng: &mut R,
) -> (Array2<f64>, Array2<f64>) {
    assert!(k >= 1, "chain length must be at least 1");
    let mut h = Rbm::sample_batch(&rbm.hidden_probs_batch(v0), rng);
    let mut v = v0.clone();
    for _ in 0..k {
        v = Rbm::sample_batch(&rbm.visible_probs_batch(&h), rng);
        h = Rbm::sample_batch(&rbm.hidden_probs_batch(&v), rng);
    }
    (v, h)
}

/// Draws `count` approximate samples of `P(v)` by running one long chain
/// with `burn_in` steps of equilibration and `thin` steps between samples.
pub fn sample_model<R: Rng + ?Sized>(
    rbm: &Rbm,
    count: usize,
    burn_in: usize,
    thin: usize,
    rng: &mut R,
) -> Array2<f64> {
    let m = rbm.visible_len();
    let mut v = Array1::from_shape_fn(m, |_| if rng.random_bool(0.5) { 1.0 } else { 0.0 });
    for _ in 0..burn_in {
        let (v_next, _) = step_from_visible(rbm, &v, rng);
        v = v_next;
    }
    let mut out = Array2::zeros((count, m));
    for i in 0..count {
        for _ in 0..thin.max(1) {
            let (v_next, _) = step_from_visible(rbm, &v, rng);
            v = v_next;
        }
        out.row_mut(i).assign(&v);
    }
    out
}

/// Copies a list of equally-sized rows into a `(rows, cols)` matrix.
///
/// # Panics
///
/// Panics when a row's length differs from `cols`.
pub(crate) fn stack_rows(rows: Vec<Array1<f64>>, cols: usize) -> Array2<f64> {
    let mut out = Array2::zeros((rows.len(), cols));
    for (i, row) in rows.into_iter().enumerate() {
        assert_eq!(row.len(), cols, "row length mismatch");
        out.row_mut(i).assign(&row);
    }
    out
}

/// Parallel batched `k`-step Gibbs chain: row `i` of `v0` evolves on its
/// own RNG stream `streams.rng(i)`, chains run across the rayon pool,
/// and the result is bit-identical at every thread count. Returns
/// `(v⁻, h⁻)` matrices of shapes `(batch, m)` / `(batch, n)`.
///
/// # Panics
///
/// Panics if `k == 0` or `v0` width differs from the RBM.
pub fn chain_batch_par(
    rbm: &Rbm,
    v0: &Array2<f64>,
    k: usize,
    streams: RngStreams,
) -> (Array2<f64>, Array2<f64>) {
    assert!(k >= 1, "chain length must be at least 1");
    assert_eq!(v0.ncols(), rbm.visible_len(), "visible width mismatch");
    let indexed: Vec<(usize, Array1<f64>)> = v0.rows().map(|r| r.to_owned()).enumerate().collect();
    let pairs: Vec<(Array1<f64>, Array1<f64>)> = indexed
        .into_par_iter()
        .map(|(i, row)| {
            let mut rng = streams.rng(i as u64);
            chain(rbm, &row, k, &mut rng)
        })
        .collect();
    let (m, n) = (rbm.visible_len(), rbm.hidden_len());
    let mut vs = Vec::with_capacity(pairs.len());
    let mut hs = Vec::with_capacity(pairs.len());
    for (v, h) in pairs {
        vs.push(v);
        hs.push(h);
    }
    (stack_rows(vs, m), stack_rows(hs, n))
}

/// Parallel model sampling: `chains` independent chains, each with its
/// own RNG stream, burn-in, and thinning; chain `c` produces every
/// `chains`-th row of the output so the result is bit-identical at every
/// thread count. Returns `(count, m)` samples of `P(v)`.
///
/// # Panics
///
/// Panics if `chains == 0`.
pub fn sample_model_par(
    rbm: &Rbm,
    count: usize,
    burn_in: usize,
    thin: usize,
    chains: usize,
    streams: RngStreams,
) -> Array2<f64> {
    assert!(chains >= 1, "need at least one chain");
    let m = rbm.visible_len();
    let per_chain: Vec<usize> = (0..chains)
        .map(|c| count / chains + usize::from(c < count % chains))
        .collect();
    let chunks: Vec<Array2<f64>> = (0..chains)
        .into_par_iter()
        .map(|c| {
            let mut rng = streams.rng(c as u64);
            sample_model(rbm, per_chain[c], burn_in, thin, &mut rng)
        })
        .collect();
    // Interleave: output row r comes from chain r % chains, draw r / chains.
    let mut out = Array2::zeros((count, m));
    for r in 0..count {
        let chunk = &chunks[r % chains];
        out.row_mut(r).assign(&chunk.row(r / chains));
    }
    out
}

/// Empirical marginal `P(vᵢ = 1)` of a sample matrix — a convergence
/// diagnostic for chains.
pub fn empirical_marginals(samples: &Array2<f64>) -> Array1<f64> {
    samples.mean_axis(Axis(0)).expect("non-empty sample matrix")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::arr1;
    use rand::SeedableRng;

    #[test]
    fn chain_outputs_are_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rbm = Rbm::random(8, 4, 0.5, &mut rng);
        let v0 = arr1(&[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        let (v, h) = chain(&rbm, &v0, 3, &mut rng);
        assert!(v.iter().all(|&x| x == 0.0 || x == 1.0));
        assert!(h.iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn batch_chain_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(6, 3, 0.3, &mut rng);
        let v0 = Array2::zeros((5, 6));
        let (v, h) = chain_batch(&rbm, &v0, 2, &mut rng);
        assert_eq!(v.dim(), (5, 6));
        assert_eq!(h.dim(), (5, 3));
    }

    #[test]
    fn zero_weight_rbm_samples_match_bias_probability() {
        // With W = 0, P(v_i=1) = σ(bv_i) independent of the chain.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rbm =
            Rbm::from_parts(Array2::zeros((2, 2)), arr1(&[1.0, -1.0]), arr1(&[0.0, 0.0])).unwrap();
        let samples = sample_model(&rbm, 3000, 10, 1, &mut rng);
        let marg = empirical_marginals(&samples);
        let p0 = crate::math::sigmoid(1.0);
        let p1 = crate::math::sigmoid(-1.0);
        assert!((marg[0] - p0).abs() < 0.03, "marg0 {}", marg[0]);
        assert!((marg[1] - p1).abs() < 0.03, "marg1 {}", marg[1]);
    }

    #[test]
    fn gibbs_stationary_distribution_matches_exact_enumeration() {
        // Small RBM: compare long-chain visible histogram with exact P(v).
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let rbm = Rbm::random(3, 2, 0.8, &mut rng);
        let exact = crate::exact::visible_distribution(&rbm);
        let samples = sample_model(&rbm, 20000, 200, 1, &mut rng);
        let mut hist = [0.0; 8];
        for row in samples.axis_iter(Axis(0)) {
            let idx = row
                .iter()
                .enumerate()
                .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
            hist[idx] += 1.0;
        }
        for h in hist.iter_mut() {
            *h /= samples.nrows() as f64;
        }
        for (idx, (&emp, &ex)) in hist.iter().zip(exact.iter()).enumerate() {
            assert!(
                (emp - ex).abs() < 0.02,
                "state {idx}: emp {emp} vs exact {ex}"
            );
        }
    }
}
