//! Numerically stable scalar helpers shared across the workspace.

/// The logistic function `σ(x) = 1 / (1 + e^{−x})` (paper Eq. 4), stable
/// for large `|x|`.
///
/// # Example
///
/// ```
/// use ember_rbm::math::sigmoid;
///
/// assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
/// assert!(sigmoid(800.0) <= 1.0);
/// assert!(sigmoid(-800.0) >= 0.0);
/// ```
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable softplus `log(1 + e^x)`, the hidden-unit contribution to the RBM
/// free energy.
///
/// # Example
///
/// ```
/// use ember_rbm::math::softplus;
///
/// assert!((softplus(0.0) - 2f64.ln()).abs() < 1e-12);
/// assert!((softplus(50.0) - 50.0).abs() < 1e-9);
/// assert!(softplus(-50.0) < 1e-9);
/// ```
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Stable `log(Σᵢ e^{xᵢ})`.
///
/// Returns `f64::NEG_INFINITY` for an empty slice.
///
/// # Example
///
/// ```
/// use ember_rbm::math::logsumexp;
///
/// let x = [1000.0, 1000.0];
/// assert!((logsumexp(&x) - (1000.0 + 2f64.ln())).abs() < 1e-9);
/// ```
pub fn logsumexp(xs: &[f64]) -> f64 {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Running mean/variance accumulator (Welford), used for trace statistics.
///
/// # Example
///
/// ```
/// use ember_rbm::math::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// assert!((s.variance() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2 points).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry() {
        for &x in &[-5.0, -1.0, 0.0, 2.0, 7.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sigmoid_extremes_do_not_overflow() {
        assert_eq!(sigmoid(1e8), 1.0);
        assert_eq!(sigmoid(-1e8), 0.0);
    }

    #[test]
    fn softplus_matches_naive_midrange() {
        for &x in &[-5.0f64, 0.0, 3.0, 10.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-10);
        }
    }

    #[test]
    fn softplus_derivative_is_sigmoid() {
        let h = 1e-6;
        for &x in &[-2.0, 0.0, 1.5] {
            let numeric = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((numeric - sigmoid(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn logsumexp_empty_and_single() {
        assert_eq!(logsumexp(&[]), f64::NEG_INFINITY);
        assert!((logsumexp(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_shift_invariance() {
        let xs = [0.1, 0.5, -2.0];
        let shifted: Vec<f64> = xs.iter().map(|x| x + 100.0).collect();
        assert!((logsumexp(&shifted) - (logsumexp(&xs) + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn running_stats_matches_direct() {
        let xs = [1.5, -0.5, 2.0, 4.0, 0.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 5);
    }
}
