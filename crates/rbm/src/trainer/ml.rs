use ndarray::{Array1, Array2, Axis};
use serde::{Deserialize, Serialize};

use crate::exact;
use crate::Rbm;

/// Exact maximum-likelihood trainer — the intractable reference algorithm
/// whose gradient CD-k approximates (paper Eqs. 8–10; used as "ML" in the
/// Appendix A bias study, Fig. 11).
///
/// The positive statistics `⟨vᵢhⱼ⟩_data` use the analytic hidden
/// conditionals; the negative statistics `⟨vᵢhⱼ⟩_model` are computed by
/// enumerating every visible state and marginalizing the hiddens
/// analytically — tractable only for tiny models (≤ 20 visible units).
///
/// # Example
///
/// ```
/// use ember_rbm::{Rbm, MlTrainer};
/// use ndarray::arr2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let mut rbm = Rbm::random(3, 2, 0.01, &mut rng);
/// let data = arr2(&[[1.0, 1.0, 0.0], [1.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);
/// let trainer = MlTrainer::new(0.2);
/// for _ in 0..50 {
///     trainer.step(&mut rbm, &data);
/// }
/// // Exact ML must strictly improve the data log-likelihood.
/// let ll = ember_rbm::exact::mean_log_likelihood(&rbm, &data);
/// assert!(ll > -2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlTrainer {
    learning_rate: f64,
}

impl MlTrainer {
    /// Creates an exact-gradient trainer with learning rate `α`.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        MlTrainer { learning_rate }
    }

    /// Learning rate `α`.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// One full-batch exact gradient ascent step. Returns the L2 norm of
    /// the weight gradient (zero exactly at a stationary point).
    ///
    /// # Panics
    ///
    /// Panics if the data width mismatches or the model has more than 20
    /// visible units (enumeration would be prohibitive).
    pub fn step(&self, rbm: &mut Rbm, data: &Array2<f64>) -> f64 {
        let (grad_w, grad_bv, grad_bh) = self.gradient(rbm, data);
        let norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();
        *rbm.weights_mut() += &(&grad_w * self.learning_rate);
        *rbm.visible_bias_mut() += &(&grad_bv * self.learning_rate);
        *rbm.hidden_bias_mut() += &(&grad_bh * self.learning_rate);
        norm
    }

    /// The exact log-likelihood gradient `(∂W, ∂b_v, ∂b_h)`.
    ///
    /// # Panics
    ///
    /// See [`MlTrainer::step`].
    pub fn gradient(
        &self,
        rbm: &Rbm,
        data: &Array2<f64>,
    ) -> (Array2<f64>, Array1<f64>, Array1<f64>) {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        let m = rbm.visible_len();
        assert!(m <= 20, "exact ML limited to 20 visible units");
        let t = data.nrows() as f64;

        // Positive phase: ⟨v h⟩_data with analytic h|v.
        let h_probs = rbm.hidden_probs_batch(data);
        let pos_w = data.t().dot(&h_probs) / t;
        let pos_bv = data.mean_axis(Axis(0)).expect("non-empty data");
        let pos_bh = h_probs.mean_axis(Axis(0)).expect("non-empty data");

        // Negative phase: ⟨v h⟩_model by enumeration (Eq. 10).
        let p_v = exact::visible_distribution(rbm);
        let mut neg_w = Array2::<f64>::zeros(rbm.weights().dim());
        let mut neg_bv = Array1::<f64>::zeros(rbm.visible_len());
        let mut neg_bh = Array1::<f64>::zeros(rbm.hidden_len());
        for (code, &pv) in p_v.iter().enumerate() {
            if pv == 0.0 {
                continue;
            }
            let v = exact::bits_to_array(code as u64, m);
            let h = rbm.hidden_probs(&v.view());
            for i in 0..m {
                if v[i] == 0.0 {
                    continue;
                }
                neg_bv[i] += pv;
                for j in 0..rbm.hidden_len() {
                    neg_w[[i, j]] += pv * h[j];
                }
            }
            for j in 0..rbm.hidden_len() {
                neg_bh[j] += pv * h[j];
            }
        }

        (pos_w - neg_w, pos_bv - neg_bv, pos_bh - neg_bh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::arr2;
    use rand::SeedableRng;

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let rbm = Rbm::random(4, 3, 0.3, &mut rng);
        let data = arr2(&[
            [1.0, 0.0, 1.0, 0.0],
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        ]);
        let trainer = MlTrainer::new(0.1);
        let (grad_w, grad_bv, grad_bh) = trainer.gradient(&rbm, &data);

        let h = 1e-5;
        // Check a handful of weight coordinates.
        for &(i, j) in &[(0usize, 0usize), (1, 2), (3, 1)] {
            let mut plus = rbm.clone();
            plus.weights_mut()[[i, j]] += h;
            let mut minus = rbm.clone();
            minus.weights_mut()[[i, j]] -= h;
            let numeric = (exact::mean_log_likelihood(&plus, &data)
                - exact::mean_log_likelihood(&minus, &data))
                / (2.0 * h);
            assert!(
                (numeric - grad_w[[i, j]]).abs() < 1e-5,
                "dW[{i}][{j}]: numeric {numeric} vs analytic {}",
                grad_w[[i, j]]
            );
        }
        // And one bias coordinate on each side.
        let mut plus = rbm.clone();
        plus.visible_bias_mut()[2] += h;
        let mut minus = rbm.clone();
        minus.visible_bias_mut()[2] -= h;
        let numeric = (exact::mean_log_likelihood(&plus, &data)
            - exact::mean_log_likelihood(&minus, &data))
            / (2.0 * h);
        assert!((numeric - grad_bv[2]).abs() < 1e-5);

        let mut plus = rbm.clone();
        plus.hidden_bias_mut()[1] += h;
        let mut minus = rbm.clone();
        minus.hidden_bias_mut()[1] -= h;
        let numeric = (exact::mean_log_likelihood(&plus, &data)
            - exact::mean_log_likelihood(&minus, &data))
            / (2.0 * h);
        assert!((numeric - grad_bh[1]).abs() < 1e-5);
    }

    #[test]
    fn ml_monotonically_improves_likelihood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut rbm = Rbm::random(5, 2, 0.1, &mut rng);
        let data = arr2(&[
            [1.0, 1.0, 1.0, 0.0, 0.0],
            [1.0, 1.0, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 1.0, 1.0],
            [0.0, 0.0, 1.0, 1.0, 1.0],
        ]);
        let trainer = MlTrainer::new(0.05);
        let mut prev = exact::mean_log_likelihood(&rbm, &data);
        for _ in 0..40 {
            trainer.step(&mut rbm, &data);
            let ll = exact::mean_log_likelihood(&rbm, &data);
            assert!(ll >= prev - 1e-6, "LL decreased: {prev} -> {ll}");
            prev = ll;
        }
    }

    #[test]
    fn gradient_vanishes_at_convergence() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut rbm = Rbm::random(3, 2, 0.1, &mut rng);
        let data = arr2(&[[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]]);
        let trainer = MlTrainer::new(0.5);
        let mut norm = f64::INFINITY;
        for _ in 0..2000 {
            norm = trainer.step(&mut rbm, &data);
        }
        assert!(norm < 0.05, "gradient norm {norm} still large");
    }
}
