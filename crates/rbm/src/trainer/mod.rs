//! Software trainers for RBMs: CD-k (Algorithm 1), persistent CD, and the
//! exact maximum-likelihood reference.

mod cd;
mod ml;
mod pcd;

pub use cd::CdTrainer;
pub use ml::MlTrainer;
pub use pcd::PcdTrainer;

use serde::{Deserialize, Serialize};

/// Summary statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Number of minibatches processed.
    pub batches: usize,
    /// Mean absolute visible difference between the data and the final
    /// negative-phase sample (a cheap learning-progress proxy).
    pub reconstruction_error: f64,
    /// Mean L2 norm of the weight-gradient estimate per batch.
    pub gradient_norm: f64,
}

impl EpochStats {
    /// Aggregates per-batch `(reconstruction error, gradient norm)` pairs
    /// into epoch statistics. Exposed for external trainers (the hardware
    /// models in `ember-core`) that produce the same per-batch pairs.
    pub fn accumulate(stats: &[(f64, f64)]) -> EpochStats {
        let batches = stats.len();
        if batches == 0 {
            return EpochStats {
                batches: 0,
                reconstruction_error: 0.0,
                gradient_norm: 0.0,
            };
        }
        let recon = stats.iter().map(|s| s.0).sum::<f64>() / batches as f64;
        let grad = stats.iter().map(|s| s.1).sum::<f64>() / batches as f64;
        EpochStats {
            batches,
            reconstruction_error: recon,
            gradient_norm: grad,
        }
    }
}
