//! Software trainers for RBMs: CD-k (Algorithm 1), persistent CD, and the
//! exact maximum-likelihood reference.
//!
//! The CD and PCD trainers additionally run over any
//! [`ember_substrate::Substrate`] backend (`train_epoch_with` /
//! `train_epoch_par_with`): the learning loop stays on the host, the
//! conditional sampling is offloaded — the paper's §3.2 division of
//! labor, with the substrate freely swappable.

mod cd;
mod ml;
mod pcd;

pub use cd::CdTrainer;
pub use ml::MlTrainer;
pub use pcd::PcdTrainer;

use serde::{Deserialize, Serialize};

/// Summary statistics of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Number of minibatches processed.
    pub batches: usize,
    /// Mean absolute visible difference between the data and the final
    /// negative-phase sample (a cheap learning-progress proxy).
    pub reconstruction_error: f64,
    /// Mean L2 norm of the weight-gradient estimate per batch.
    pub gradient_norm: f64,
}

/// Splits `rows` into `chunks` contiguous ranges whose sizes differ by at
/// most one (empty ranges when `chunks > rows`). The substrate-parallel
/// trainers shard minibatch rows across substrate replicas with this, so
/// results depend on the replica count but never on the thread count.
pub(crate) fn chunk_ranges(rows: usize, chunks: usize) -> Vec<(usize, usize)> {
    assert!(chunks >= 1, "need at least one chunk");
    let base = rows / chunks;
    let extra = rows % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

impl EpochStats {
    /// Aggregates per-batch `(reconstruction error, gradient norm)` pairs
    /// into epoch statistics. Exposed for external trainers (the hardware
    /// models in `ember-core`) that produce the same per-batch pairs.
    pub fn accumulate(stats: &[(f64, f64)]) -> EpochStats {
        let batches = stats.len();
        if batches == 0 {
            return EpochStats {
                batches: 0,
                reconstruction_error: 0.0,
                gradient_norm: 0.0,
            };
        }
        let recon = stats.iter().map(|s| s.0).sum::<f64>() / batches as f64;
        let grad = stats.iter().map(|s| s.1).sum::<f64>() / batches as f64;
        EpochStats {
            batches,
            reconstruction_error: recon,
            gradient_norm: grad,
        }
    }
}
