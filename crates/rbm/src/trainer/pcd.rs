use ndarray::{Array1, Array2, Axis};
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use ember_substrate::{HardwareCounters, Substrate};

use crate::gibbs;
use crate::trainer::{chunk_ranges, EpochStats};
use crate::{Rbm, RngStreams};

/// Persistent contrastive divergence (Tieleman 2008, cited as \[63\] for the
/// BGF's particle persistence, §3.3).
///
/// Unlike CD-k, the negative-phase Markov chains are **not** re-seeded at
/// the data each minibatch; `p` persistent "fantasy particles" keep
/// evolving under the current model, giving lower-bias negative statistics.
/// This is exactly the role of the `p` hidden-state particles the BGF
/// architecture stores and re-loads between negative phases.
///
/// # Example
///
/// ```
/// use ember_rbm::{Rbm, PcdTrainer};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let mut rbm = Rbm::random(6, 3, 0.01, &mut rng);
/// let data = Array2::from_shape_fn((30, 6), |(i, _)| (i % 2) as f64);
/// let mut trainer = PcdTrainer::new(1, 0.05, 10, &rbm, &mut rng);
/// let stats = trainer.train_epoch(&mut rbm, &data, 10, &mut rng);
/// assert_eq!(stats.batches, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcdTrainer {
    k: usize,
    learning_rate: f64,
    particles_v: Array2<f64>,
}

impl PcdTrainer {
    /// Creates a PCD-`k` trainer with `p` particles initialized from random
    /// visible states.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `learning_rate <= 0`, or `particles == 0`.
    pub fn new<R: Rng + ?Sized>(
        k: usize,
        learning_rate: f64,
        particles: usize,
        rbm: &Rbm,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 1, "PCD-k needs k >= 1");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(particles >= 1, "need at least one particle");
        let particles_v = Array2::from_shape_fn((particles, rbm.visible_len()), |_| {
            if rng.random_bool(0.5) {
                1.0
            } else {
                0.0
            }
        });
        PcdTrainer {
            k,
            learning_rate,
            particles_v,
        }
    }

    /// Number of persistent particles `p`.
    pub fn particle_count(&self) -> usize {
        self.particles_v.nrows()
    }

    /// Current particle visible states (`p × m`).
    pub fn particles(&self) -> &Array2<f64> {
        &self.particles_v
    }

    /// Trains one epoch; returns statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        rng: &mut R,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            stats.push(self.train_batch(rbm, &batch, rng));
            start = end;
        }
        EpochStats::accumulate(&stats)
    }

    fn train_batch<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        // Positive phase from the data.
        let h_pos = Rbm::sample_batch(&rbm.hidden_probs_batch(batch), rng);

        // Negative phase from the persistent particles: advance k steps.
        let mut v_neg = self.particles_v.clone();
        let mut h_neg = Rbm::sample_batch(&rbm.hidden_probs_batch(&v_neg), rng);
        for _ in 0..self.k {
            v_neg = Rbm::sample_batch(&rbm.visible_probs_batch(&h_neg), rng);
            h_neg = Rbm::sample_batch(&rbm.hidden_probs_batch(&v_neg), rng);
        }
        self.particles_v = v_neg.clone();

        self.apply_gradients(rbm, batch, &h_pos, &v_neg, &h_neg)
    }

    /// Shared host-side gradient step: data statistics normalized by the
    /// batch size, particle statistics by the particle count. The common
    /// tail of every PCD variant.
    fn apply_gradients(
        &self,
        rbm: &mut Rbm,
        batch: &Array2<f64>,
        h_pos: &Array2<f64>,
        v_neg: &Array2<f64>,
        h_neg: &Array2<f64>,
    ) -> (f64, f64) {
        let bs = batch.nrows() as f64;
        let p = v_neg.nrows() as f64;
        let grad_w = batch.t().dot(h_pos) / bs - v_neg.t().dot(h_neg) / p;
        let grad_bv = batch.sum_axis(Axis(0)) / bs - v_neg.sum_axis(Axis(0)) / p;
        let grad_bh = h_pos.sum_axis(Axis(0)) / bs - h_neg.sum_axis(Axis(0)) / p;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();

        *rbm.weights_mut() += &(&grad_w * self.learning_rate);
        *rbm.visible_bias_mut() += &(&grad_bv * self.learning_rate);
        *rbm.hidden_bias_mut() += &(&grad_bh * self.learning_rate);

        let recon = {
            // Compare data statistics with particle statistics.
            let d = batch.mean_axis(Axis(0)).expect("non-empty batch");
            let m = v_neg.mean_axis(Axis(0)).expect("non-empty particles");
            (&d - &m).mapv(f64::abs).mean().unwrap_or(0.0)
        };
        (recon, grad_norm)
    }

    /// One epoch of PCD-k with both the positive phase and the
    /// persistent-particle evolution offloaded to an arbitrary
    /// [`Substrate`] backend. The substrate is re-programmed with the
    /// current weights before every minibatch; the `p` fantasy particles
    /// advance `k` full Gibbs steps on the substrate and persist in the
    /// trainer exactly as in [`PcdTrainer::train_epoch`] — this mirrors
    /// the paper's BGF particle store (§3.3), but with the weights still
    /// host-resident.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count, the
    /// substrate's fabricated size differs from the RBM, or
    /// `batch_size == 0`.
    pub fn train_epoch_with<S, R>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        substrate: &mut S,
        rng: &mut R,
    ) -> EpochStats
    where
        S: Substrate + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert_eq!(
            substrate.visible_len(),
            rbm.visible_len(),
            "substrate visible size mismatch"
        );
        assert_eq!(
            substrate.hidden_len(),
            rbm.hidden_len(),
            "substrate hidden size mismatch"
        );
        assert!(batch_size >= 1, "batch size must be positive");
        let mut rng = rng;
        let rng: &mut dyn RngCore = &mut rng;
        let (m, n) = rbm.weights().dim();
        let mut stats = Vec::new();
        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            substrate.program(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            // Positive phase from the data.
            let clamped = substrate.quantize_batch(&batch);
            let h_pos = substrate.sample_hidden_batch(&clamped, rng);
            // Negative phase from the persistent particles: k full steps.
            let mut v_neg = self.particles_v.clone();
            let mut h_neg = substrate.sample_hidden_batch(&v_neg, rng);
            for _ in 0..self.k {
                v_neg = substrate.sample_visible_batch(&h_neg, rng);
                h_neg = substrate.sample_hidden_batch(&v_neg, rng);
            }
            self.particles_v = v_neg.clone();

            let counters = substrate.counters_mut();
            counters.positive_samples += batch.nrows() as u64;
            counters.negative_samples += v_neg.nrows() as u64;
            counters.host_mac_ops +=
                (batch.nrows() + v_neg.nrows()) as u64 * (m * n) as u64 + (m * n + m + n) as u64;

            stats.push(self.apply_gradients(rbm, &batch, &h_pos, &v_neg, &h_neg));
            start = end;
        }
        EpochStats::accumulate(&stats)
    }

    /// Parallel substrate epoch: positive-phase rows and persistent
    /// particles are sharded into `replicas` contiguous chunks, each
    /// driven through its own **clone** of the substrate on its own RNG
    /// stream (`subfamily(2b)` for the data, `subfamily(2b+1)` for the
    /// particles, matching [`PcdTrainer::train_epoch_par`]'s layout).
    /// Results depend on `replicas` but are bit-identical at every
    /// thread count. Per-replica counters merge back into `substrate`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`PcdTrainer::train_epoch_with`],
    /// or if `replicas == 0`.
    pub fn train_epoch_par_with<S>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        substrate: &mut S,
        replicas: usize,
        streams: RngStreams,
    ) -> EpochStats
    where
        S: Substrate + Clone + Send + Sync,
    {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert_eq!(
            substrate.visible_len(),
            rbm.visible_len(),
            "substrate visible size mismatch"
        );
        assert_eq!(
            substrate.hidden_len(),
            rbm.hidden_len(),
            "substrate hidden size mismatch"
        );
        assert!(batch_size >= 1, "batch size must be positive");
        assert!(replicas >= 1, "need at least one substrate replica");
        let (m, n) = rbm.weights().dim();
        let mut stats = Vec::new();
        let rows = data.nrows();
        let (mut start, mut batch_index) = (0, 0u64);
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            substrate.program(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            let clamped = substrate.quantize_batch(&batch);
            let pos_streams = streams.subfamily(2 * batch_index);
            let neg_streams = streams.subfamily(2 * batch_index + 1);
            let k = self.k;
            let sub = &*substrate;

            // Positive phase: replica c samples its row chunk.
            let pos_work: Vec<(usize, usize, usize)> = chunk_ranges(batch.nrows(), replicas)
                .into_iter()
                .enumerate()
                .filter(|&(_, (s, e))| e > s)
                .map(|(c, (s, e))| (c, s, e))
                .collect();
            let pos_chunks: Vec<(usize, Array2<f64>, HardwareCounters)> = pos_work
                .into_par_iter()
                .map(|(c, s, e)| {
                    let mut replica = sub.clone();
                    *replica.counters_mut() = HardwareCounters::new();
                    let mut rng = pos_streams.rng(c as u64);
                    let rng: &mut dyn RngCore = &mut rng;
                    let chunk = clamped.slice(ndarray::s![s..e, ..]).to_owned();
                    let h = replica.sample_hidden_batch(&chunk, rng);
                    (s, h, *replica.counters())
                })
                .collect();
            // Negative phase: replica c advances its particle chunk.
            let neg_work: Vec<(usize, usize, usize)> =
                chunk_ranges(self.particles_v.nrows(), replicas)
                    .into_iter()
                    .enumerate()
                    .filter(|&(_, (s, e))| e > s)
                    .map(|(c, (s, e))| (c, s, e))
                    .collect();
            let particles = &self.particles_v;
            let neg_chunks: Vec<(usize, Array2<f64>, Array2<f64>, HardwareCounters)> = neg_work
                .into_par_iter()
                .map(|(c, s, e)| {
                    let mut replica = sub.clone();
                    *replica.counters_mut() = HardwareCounters::new();
                    let mut rng = neg_streams.rng(c as u64);
                    let rng: &mut dyn RngCore = &mut rng;
                    let mut v = particles.slice(ndarray::s![s..e, ..]).to_owned();
                    let mut h = replica.sample_hidden_batch(&v, rng);
                    for _ in 0..k {
                        v = replica.sample_visible_batch(&h, rng);
                        h = replica.sample_hidden_batch(&v, rng);
                    }
                    (s, v, h, *replica.counters())
                })
                .collect();

            let mut h_pos = Array2::zeros((batch.nrows(), n));
            for (s, h, counters) in pos_chunks {
                for i in 0..h.nrows() {
                    h_pos.row_mut(s + i).assign(&h.row(i));
                }
                substrate.counters_mut().merge(&counters);
            }
            let mut v_neg = Array2::zeros((self.particles_v.nrows(), m));
            let mut h_neg = Array2::zeros((self.particles_v.nrows(), n));
            for (s, v, h, counters) in neg_chunks {
                for i in 0..v.nrows() {
                    v_neg.row_mut(s + i).assign(&v.row(i));
                    h_neg.row_mut(s + i).assign(&h.row(i));
                }
                substrate.counters_mut().merge(&counters);
            }
            self.particles_v = v_neg.clone();

            let counters = substrate.counters_mut();
            counters.positive_samples += batch.nrows() as u64;
            counters.negative_samples += v_neg.nrows() as u64;
            counters.host_mac_ops +=
                (batch.nrows() + v_neg.nrows()) as u64 * (m * n) as u64 + (m * n + m + n) as u64;

            stats.push(self.apply_gradients(rbm, &batch, &h_pos, &v_neg, &h_neg));
            start = end;
            batch_index += 1;
        }
        EpochStats::accumulate(&stats)
    }

    /// Parallel epoch: positive-phase rows and persistent-particle chains
    /// run across the rayon pool, each on its own RNG stream, so the
    /// trained model and the particle set are **bit-identical at every
    /// thread count** for a fixed master seed.
    ///
    /// Stream layout per minibatch `b`: `streams.subfamily(2b)` drives
    /// the positive rows, `streams.subfamily(2b + 1)` the particles.
    ///
    /// The streams are consumed deterministically per call: training for
    /// several epochs must pass a **distinct subfamily per epoch**
    /// (`streams.subfamily(epoch)`) — or use [`PcdTrainer::train_par`] —
    /// otherwise every epoch replays the identical sampling noise and
    /// the persistent chains never mix.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch_par(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        streams: RngStreams,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let (mut start, mut batch_index) = (0, 0u64);
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            let pos_streams = streams.subfamily(2 * batch_index);
            let neg_streams = streams.subfamily(2 * batch_index + 1);
            let (m, n) = (rbm.visible_len(), rbm.hidden_len());

            // Positive phase: one stream per data row.
            let h_pos_rows: Vec<Array1<f64>> = batch
                .rows()
                .map(|r| r.to_owned())
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, v)| {
                    let mut rng = pos_streams.rng(i as u64);
                    rbm.sample_hidden(&v.view(), &mut rng)
                })
                .collect();
            let h_pos = gibbs::stack_rows(h_pos_rows, n);

            // Negative phase: each persistent particle advances k steps on
            // its own stream.
            let k = self.k;
            let particle_chains: Vec<(Array1<f64>, Array1<f64>)> = self
                .particles_v
                .rows()
                .map(|r| r.to_owned())
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, v0)| {
                    let mut rng = neg_streams.rng(i as u64);
                    let mut h = rbm.sample_hidden(&v0.view(), &mut rng);
                    let mut v = v0;
                    for _ in 0..k {
                        v = rbm.sample_visible(&h.view(), &mut rng);
                        h = rbm.sample_hidden(&v.view(), &mut rng);
                    }
                    (v, h)
                })
                .collect();
            let mut v_neg_rows = Vec::with_capacity(particle_chains.len());
            let mut h_neg_rows = Vec::with_capacity(particle_chains.len());
            for (v, h) in particle_chains {
                v_neg_rows.push(v);
                h_neg_rows.push(h);
            }
            let v_neg = gibbs::stack_rows(v_neg_rows, m);
            let h_neg = gibbs::stack_rows(h_neg_rows, n);
            self.particles_v = v_neg.clone();

            stats.push(self.apply_gradients(rbm, &batch, &h_pos, &v_neg, &h_neg));
            start = end;
            batch_index += 1;
        }
        EpochStats::accumulate(&stats)
    }

    /// Parallel full training run: `epochs` epochs of
    /// [`PcdTrainer::train_epoch_par`], each on its own stream subfamily
    /// so sampling noise is independent across epochs. Returns the final
    /// epoch's statistics.
    pub fn train_par(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        streams: RngStreams,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for epoch in 0..epochs {
            last = self.train_epoch_par(rbm, data, batch_size, streams.subfamily(epoch as u64));
        }
        last
    }

    /// Full run of `epochs` epochs; returns the final epoch's statistics.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        rng: &mut R,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for _ in 0..epochs {
            last = self.train_epoch(rbm, data, batch_size, rng);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pcd_improves_likelihood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = Array2::from_shape_fn((60, 8), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 });
        let before = crate::exact::mean_log_likelihood(&rbm, &data);
        let mut trainer = PcdTrainer::new(1, 0.05, 20, &rbm, &mut rng);
        trainer.train(&mut rbm, &data, 10, 80, &mut rng);
        let after = crate::exact::mean_log_likelihood(&rbm, &data);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn particles_evolve() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut rbm = Rbm::random(6, 3, 0.5, &mut rng);
        let data = Array2::zeros((10, 6));
        let mut trainer = PcdTrainer::new(2, 0.01, 8, &rbm, &mut rng);
        let before = trainer.particles().clone();
        trainer.train_epoch(&mut rbm, &data, 5, &mut rng);
        assert_ne!(&before, trainer.particles());
        assert_eq!(trainer.particle_count(), 8);
    }

    #[test]
    fn particle_values_stay_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut rbm = Rbm::random(5, 3, 0.2, &mut rng);
        let data = Array2::from_shape_fn((12, 5), |(i, j)| ((i * j) % 2) as f64);
        let mut trainer = PcdTrainer::new(1, 0.1, 6, &rbm, &mut rng);
        trainer.train(&mut rbm, &data, 4, 3, &mut rng);
        assert!(trainer.particles().iter().all(|&x| x == 0.0 || x == 1.0));
    }
}
