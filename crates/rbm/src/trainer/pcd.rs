use ndarray::{Array1, Array2, Axis};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::gibbs;
use crate::trainer::EpochStats;
use crate::{Rbm, RngStreams};

/// Persistent contrastive divergence (Tieleman 2008, cited as \[63\] for the
/// BGF's particle persistence, §3.3).
///
/// Unlike CD-k, the negative-phase Markov chains are **not** re-seeded at
/// the data each minibatch; `p` persistent "fantasy particles" keep
/// evolving under the current model, giving lower-bias negative statistics.
/// This is exactly the role of the `p` hidden-state particles the BGF
/// architecture stores and re-loads between negative phases.
///
/// # Example
///
/// ```
/// use ember_rbm::{Rbm, PcdTrainer};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let mut rbm = Rbm::random(6, 3, 0.01, &mut rng);
/// let data = Array2::from_shape_fn((30, 6), |(i, _)| (i % 2) as f64);
/// let mut trainer = PcdTrainer::new(1, 0.05, 10, &rbm, &mut rng);
/// let stats = trainer.train_epoch(&mut rbm, &data, 10, &mut rng);
/// assert_eq!(stats.batches, 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcdTrainer {
    k: usize,
    learning_rate: f64,
    particles_v: Array2<f64>,
}

impl PcdTrainer {
    /// Creates a PCD-`k` trainer with `p` particles initialized from random
    /// visible states.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `learning_rate <= 0`, or `particles == 0`.
    pub fn new<R: Rng + ?Sized>(
        k: usize,
        learning_rate: f64,
        particles: usize,
        rbm: &Rbm,
        rng: &mut R,
    ) -> Self {
        assert!(k >= 1, "PCD-k needs k >= 1");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(particles >= 1, "need at least one particle");
        let particles_v = Array2::from_shape_fn((particles, rbm.visible_len()), |_| {
            if rng.random_bool(0.5) {
                1.0
            } else {
                0.0
            }
        });
        PcdTrainer {
            k,
            learning_rate,
            particles_v,
        }
    }

    /// Number of persistent particles `p`.
    pub fn particle_count(&self) -> usize {
        self.particles_v.nrows()
    }

    /// Current particle visible states (`p × m`).
    pub fn particles(&self) -> &Array2<f64> {
        &self.particles_v
    }

    /// Trains one epoch; returns statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        rng: &mut R,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            stats.push(self.train_batch(rbm, &batch, rng));
            start = end;
        }
        EpochStats::accumulate(&stats)
    }

    fn train_batch<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        batch: &Array2<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        let bs = batch.nrows() as f64;
        let p = self.particles_v.nrows() as f64;

        // Positive phase from the data.
        let h_pos = Rbm::sample_batch(&rbm.hidden_probs_batch(batch), rng);

        // Negative phase from the persistent particles: advance k steps.
        let mut v_neg = self.particles_v.clone();
        let mut h_neg = Rbm::sample_batch(&rbm.hidden_probs_batch(&v_neg), rng);
        for _ in 0..self.k {
            v_neg = Rbm::sample_batch(&rbm.visible_probs_batch(&h_neg), rng);
            h_neg = Rbm::sample_batch(&rbm.hidden_probs_batch(&v_neg), rng);
        }
        self.particles_v = v_neg.clone();

        let grad_w = batch.t().dot(&h_pos) / bs - v_neg.t().dot(&h_neg) / p;
        let grad_bv = batch.sum_axis(Axis(0)) / bs - v_neg.sum_axis(Axis(0)) / p;
        let grad_bh = h_pos.sum_axis(Axis(0)) / bs - h_neg.sum_axis(Axis(0)) / p;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();

        *rbm.weights_mut() += &(&grad_w * self.learning_rate);
        *rbm.visible_bias_mut() += &(&grad_bv * self.learning_rate);
        *rbm.hidden_bias_mut() += &(&grad_bh * self.learning_rate);

        let recon = {
            // Compare data statistics with particle statistics.
            let d = batch.mean_axis(Axis(0)).expect("non-empty batch");
            let m = v_neg.mean_axis(Axis(0)).expect("non-empty particles");
            (&d - &m).mapv(f64::abs).mean().unwrap_or(0.0)
        };
        (recon, grad_norm)
    }

    /// Parallel epoch: positive-phase rows and persistent-particle chains
    /// run across the rayon pool, each on its own RNG stream, so the
    /// trained model and the particle set are **bit-identical at every
    /// thread count** for a fixed master seed.
    ///
    /// Stream layout per minibatch `b`: `streams.subfamily(2b)` drives
    /// the positive rows, `streams.subfamily(2b + 1)` the particles.
    ///
    /// The streams are consumed deterministically per call: training for
    /// several epochs must pass a **distinct subfamily per epoch**
    /// (`streams.subfamily(epoch)`) — or use [`PcdTrainer::train_par`] —
    /// otherwise every epoch replays the identical sampling noise and
    /// the persistent chains never mix.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch_par(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        streams: RngStreams,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut stats = Vec::new();
        let rows = data.nrows();
        let (mut start, mut batch_index) = (0, 0u64);
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            let pos_streams = streams.subfamily(2 * batch_index);
            let neg_streams = streams.subfamily(2 * batch_index + 1);
            let bs = batch.nrows() as f64;
            let p = self.particles_v.nrows() as f64;
            let (m, n) = (rbm.visible_len(), rbm.hidden_len());

            // Positive phase: one stream per data row.
            let h_pos_rows: Vec<Array1<f64>> = batch
                .rows()
                .map(|r| r.to_owned())
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, v)| {
                    let mut rng = pos_streams.rng(i as u64);
                    rbm.sample_hidden(&v.view(), &mut rng)
                })
                .collect();
            let h_pos = gibbs::stack_rows(h_pos_rows, n);

            // Negative phase: each persistent particle advances k steps on
            // its own stream.
            let k = self.k;
            let particle_chains: Vec<(Array1<f64>, Array1<f64>)> = self
                .particles_v
                .rows()
                .map(|r| r.to_owned())
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, v0)| {
                    let mut rng = neg_streams.rng(i as u64);
                    let mut h = rbm.sample_hidden(&v0.view(), &mut rng);
                    let mut v = v0;
                    for _ in 0..k {
                        v = rbm.sample_visible(&h.view(), &mut rng);
                        h = rbm.sample_hidden(&v.view(), &mut rng);
                    }
                    (v, h)
                })
                .collect();
            let mut v_neg_rows = Vec::with_capacity(particle_chains.len());
            let mut h_neg_rows = Vec::with_capacity(particle_chains.len());
            for (v, h) in particle_chains {
                v_neg_rows.push(v);
                h_neg_rows.push(h);
            }
            let v_neg = gibbs::stack_rows(v_neg_rows, m);
            let h_neg = gibbs::stack_rows(h_neg_rows, n);
            self.particles_v = v_neg.clone();

            let grad_w = batch.t().dot(&h_pos) / bs - v_neg.t().dot(&h_neg) / p;
            let grad_bv = batch.sum_axis(Axis(0)) / bs - v_neg.sum_axis(Axis(0)) / p;
            let grad_bh = h_pos.sum_axis(Axis(0)) / bs - h_neg.sum_axis(Axis(0)) / p;
            let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();

            *rbm.weights_mut() += &(&grad_w * self.learning_rate);
            *rbm.visible_bias_mut() += &(&grad_bv * self.learning_rate);
            *rbm.hidden_bias_mut() += &(&grad_bh * self.learning_rate);

            let recon = {
                let d = batch.mean_axis(Axis(0)).expect("non-empty batch");
                let mn = v_neg.mean_axis(Axis(0)).expect("non-empty particles");
                (&d - &mn).mapv(f64::abs).mean().unwrap_or(0.0)
            };
            stats.push((recon, grad_norm));
            start = end;
            batch_index += 1;
        }
        EpochStats::accumulate(&stats)
    }

    /// Parallel full training run: `epochs` epochs of
    /// [`PcdTrainer::train_epoch_par`], each on its own stream subfamily
    /// so sampling noise is independent across epochs. Returns the final
    /// epoch's statistics.
    pub fn train_par(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        streams: RngStreams,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for epoch in 0..epochs {
            last = self.train_epoch_par(rbm, data, batch_size, streams.subfamily(epoch as u64));
        }
        last
    }

    /// Full run of `epochs` epochs; returns the final epoch's statistics.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        rng: &mut R,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for _ in 0..epochs {
            last = self.train_epoch(rbm, data, batch_size, rng);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pcd_improves_likelihood() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = Array2::from_shape_fn((60, 8), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 });
        let before = crate::exact::mean_log_likelihood(&rbm, &data);
        let mut trainer = PcdTrainer::new(1, 0.05, 20, &rbm, &mut rng);
        trainer.train(&mut rbm, &data, 10, 80, &mut rng);
        let after = crate::exact::mean_log_likelihood(&rbm, &data);
        assert!(after > before + 1.0, "LL {before} -> {after}");
    }

    #[test]
    fn particles_evolve() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut rbm = Rbm::random(6, 3, 0.5, &mut rng);
        let data = Array2::zeros((10, 6));
        let mut trainer = PcdTrainer::new(2, 0.01, 8, &rbm, &mut rng);
        let before = trainer.particles().clone();
        trainer.train_epoch(&mut rbm, &data, 5, &mut rng);
        assert_ne!(&before, trainer.particles());
        assert_eq!(trainer.particle_count(), 8);
    }

    #[test]
    fn particle_values_stay_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut rbm = Rbm::random(5, 3, 0.2, &mut rng);
        let data = Array2::from_shape_fn((12, 5), |(i, j)| ((i * j) % 2) as f64);
        let mut trainer = PcdTrainer::new(1, 0.1, 6, &rbm, &mut rng);
        trainer.train(&mut rbm, &data, 4, 3, &mut rng);
        assert!(trainer.particles().iter().all(|&x| x == 0.0 || x == 1.0));
    }
}
