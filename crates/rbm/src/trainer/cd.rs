use ndarray::{Array1, Array2, Axis};
use rand::{Rng, RngCore};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use ember_substrate::{HardwareCounters, Substrate};

use crate::gibbs;
use crate::trainer::{chunk_ranges, EpochStats};
use crate::{Rbm, RngStreams};

/// Per-replica result of one sharded minibatch chunk:
/// `(row offset, h⁺, v⁻, h⁻, replica counters)`.
type ChunkResult = (
    usize,
    Array2<f64>,
    Array2<f64>,
    Array2<f64>,
    HardwareCounters,
);

/// The contrastive-divergence trainer of Algorithm 1 (CD-k).
///
/// Per minibatch: clamp the data (`v⁺`), sample `h⁺ ~ P(h|v⁺)` (positive
/// phase, lines 9–10), run `k` alternating Gibbs half-steps to obtain
/// `(v⁻, h⁻)` (negative phase, lines 12–15), then ascend the stochastic
/// log-likelihood gradient (lines 17–19):
///
/// ```text
/// W  += α (⟨v⁺ᵀh⁺⟩ − ⟨v⁻ᵀh⁻⟩)
/// b_v += α ⟨v⁺ − v⁻⟩
/// b_h += α ⟨h⁺ − h⁻⟩
/// ```
///
/// Optional momentum and L2 weight decay follow common practice (they
/// default to off, matching the paper's plain Algorithm 1).
///
/// # Example
///
/// ```
/// use ember_rbm::{Rbm, CdTrainer};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut rbm = Rbm::random(4, 2, 0.05, &mut rng);
/// let data = Array2::from_shape_fn((20, 4), |(i, j)| ((i + j) % 2) as f64);
/// let trainer = CdTrainer::new(1, 0.05);
/// let stats = trainer.train_epoch(&mut rbm, &data, 5, &mut rng);
/// assert_eq!(stats.batches, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdTrainer {
    k: usize,
    learning_rate: f64,
    momentum: f64,
    weight_decay: f64,
}

impl CdTrainer {
    /// Creates a CD-`k` trainer with the given learning rate `α`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `learning_rate <= 0`.
    pub fn new(k: usize, learning_rate: f64) -> Self {
        assert!(k >= 1, "CD-k needs k >= 1");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        CdTrainer {
            k,
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Returns a copy with momentum `β ∈ [0, 1)` on all parameter updates.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ momentum < 1`.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f64) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Returns a copy with L2 weight decay `λ` (applied to `W` only).
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Number of Gibbs steps `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Learning rate `α`.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }

    /// Trains one epoch over `data` (rows = samples) with the given
    /// minibatch size; a trailing partial batch is used as-is.
    /// Returns per-epoch statistics.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        rng: &mut R,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut velocity_w = Array2::<f64>::zeros(rbm.weights().dim());
        let mut velocity_bv = Array1::<f64>::zeros(rbm.visible_len());
        let mut velocity_bh = Array1::<f64>::zeros(rbm.hidden_len());
        let mut stats = Vec::new();

        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            let (recon, grad) = self.train_batch(
                rbm,
                &batch,
                &mut velocity_w,
                &mut velocity_bv,
                &mut velocity_bh,
                rng,
            );
            stats.push((recon, grad));
            start = end;
        }
        EpochStats::accumulate(&stats)
    }

    /// One minibatch update (lines 8–19 of Algorithm 1). Returns
    /// `(reconstruction error, gradient norm)`.
    fn train_batch<R: Rng + ?Sized>(
        &self,
        rbm: &mut Rbm,
        batch: &Array2<f64>,
        velocity_w: &mut Array2<f64>,
        velocity_bv: &mut Array1<f64>,
        velocity_bh: &mut Array1<f64>,
        rng: &mut R,
    ) -> (f64, f64) {
        // Positive phase.
        let h_pos = Rbm::sample_batch(&rbm.hidden_probs_batch(batch), rng);
        // Negative phase: k alternating Gibbs half-steps from h_pos.
        let mut h_neg = h_pos.clone();
        let mut v_neg = batch.clone();
        for _ in 0..self.k {
            v_neg = Rbm::sample_batch(&rbm.visible_probs_batch(&h_neg), rng);
            h_neg = Rbm::sample_batch(&rbm.hidden_probs_batch(&v_neg), rng);
        }
        self.apply_gradients(
            rbm,
            batch,
            &h_pos,
            &v_neg,
            &h_neg,
            velocity_w,
            velocity_bv,
            velocity_bh,
        )
    }

    /// One epoch of CD-k with the conditional sampling offloaded to an
    /// arbitrary [`Substrate`] backend (software Gibbs, BRIM, annealer,
    /// future hardware): the substrate is re-programmed with the current
    /// weights before every minibatch (§3.2 step 2), data rows are
    /// clamped through the substrate's DTC model, and the k-step Gibbs
    /// equivalent runs by alternating clamped sides. The host-side
    /// gradient update (momentum, weight decay) is identical to
    /// [`CdTrainer::train_epoch`] — that method *is* this one
    /// specialized to exact software conditionals, kept on its dedicated
    /// GEMM fast path.
    ///
    /// Hardware event accounting accumulates on `substrate.counters()`.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count, the
    /// substrate's fabricated size differs from the RBM, or
    /// `batch_size == 0`.
    pub fn train_epoch_with<S, R>(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        substrate: &mut S,
        rng: &mut R,
    ) -> EpochStats
    where
        S: Substrate + ?Sized,
        R: Rng + ?Sized,
    {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert_eq!(
            substrate.visible_len(),
            rbm.visible_len(),
            "substrate visible size mismatch"
        );
        assert_eq!(
            substrate.hidden_len(),
            rbm.hidden_len(),
            "substrate hidden size mismatch"
        );
        assert!(batch_size >= 1, "batch size must be positive");
        let mut rng = rng;
        let rng: &mut dyn RngCore = &mut rng;
        let (m, n) = rbm.weights().dim();
        let mut velocity_w = Array2::<f64>::zeros((m, n));
        let mut velocity_bv = Array1::<f64>::zeros(m);
        let mut velocity_bh = Array1::<f64>::zeros(n);
        let mut stats = Vec::new();

        let rows = data.nrows();
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            substrate.program(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            let clamped = substrate.quantize_batch(&batch);
            let h_pos = substrate.sample_hidden_batch(&clamped, rng);
            let mut h_neg = h_pos.clone();
            let mut v_neg = batch.clone();
            for _ in 0..self.k {
                v_neg = substrate.sample_visible_batch(&h_neg, rng);
                h_neg = substrate.sample_hidden_batch(&v_neg, rng);
            }
            let bs = batch.nrows() as u64;
            let counters = substrate.counters_mut();
            counters.positive_samples += bs;
            counters.negative_samples += bs;
            counters.host_mac_ops += bs * 2 * (m * n) as u64 + (m * n + m + n) as u64;

            stats.push(self.apply_gradients(
                rbm,
                &batch,
                &h_pos,
                &v_neg,
                &h_neg,
                &mut velocity_w,
                &mut velocity_bv,
                &mut velocity_bh,
            ));
            start = end;
        }
        EpochStats::accumulate(&stats)
    }

    /// Convenience: `epochs` substrate-offloaded epochs
    /// ([`CdTrainer::train_epoch_with`] in a loop, one shared RNG), the
    /// entry point a serving shard calls to honor a training request.
    /// Returns the final epoch's statistics.
    pub fn train_with<S, R>(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        substrate: &mut S,
        epochs: usize,
        rng: &mut R,
    ) -> EpochStats
    where
        S: Substrate + ?Sized,
        R: Rng + ?Sized,
    {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for _ in 0..epochs {
            last = self.train_epoch_with(rbm, data, batch_size, substrate, rng);
        }
        last
    }

    /// Parallel substrate epoch: each minibatch's rows are sharded into
    /// `replicas` contiguous chunks, each chunk driven through its own
    /// **clone** of the substrate (an ensemble of identically-programmed
    /// machines, as a multi-instance deployment would be) on its own RNG
    /// stream. Results depend on `replicas` but are **bit-identical at
    /// every thread count** for a fixed master seed. Per-replica
    /// hardware counters are merged back into `substrate`.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`CdTrainer::train_epoch_with`],
    /// or if `replicas == 0`.
    #[allow(clippy::too_many_arguments)]
    pub fn train_epoch_par_with<S>(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        substrate: &mut S,
        replicas: usize,
        streams: RngStreams,
    ) -> EpochStats
    where
        S: Substrate + Clone + Send + Sync,
    {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert_eq!(
            substrate.visible_len(),
            rbm.visible_len(),
            "substrate visible size mismatch"
        );
        assert_eq!(
            substrate.hidden_len(),
            rbm.hidden_len(),
            "substrate hidden size mismatch"
        );
        assert!(batch_size >= 1, "batch size must be positive");
        assert!(replicas >= 1, "need at least one substrate replica");
        let (m, n) = rbm.weights().dim();
        let mut velocity_w = Array2::<f64>::zeros((m, n));
        let mut velocity_bv = Array1::<f64>::zeros(m);
        let mut velocity_bh = Array1::<f64>::zeros(n);
        let mut stats = Vec::new();

        let rows = data.nrows();
        let (mut start, mut batch_index) = (0, 0u64);
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            substrate.program(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            let clamped = substrate.quantize_batch(&batch);
            let batch_streams = streams.subfamily(batch_index);
            let k = self.k;
            let sub = &*substrate;

            let work: Vec<(usize, usize, usize)> = chunk_ranges(batch.nrows(), replicas)
                .into_iter()
                .enumerate()
                .filter(|&(_, (s, e))| e > s)
                .map(|(c, (s, e))| (c, s, e))
                .collect();
            let chunks: Vec<ChunkResult> = work
                .into_par_iter()
                .map(|(c, s, e)| {
                    let mut replica = sub.clone();
                    *replica.counters_mut() = HardwareCounters::new();
                    let mut rng = batch_streams.rng(c as u64);
                    let rng: &mut dyn RngCore = &mut rng;
                    let chunk_clamped = clamped.slice(ndarray::s![s..e, ..]).to_owned();
                    let h_pos = replica.sample_hidden_batch(&chunk_clamped, rng);
                    let mut h_neg = h_pos.clone();
                    let mut v_neg = batch.slice(ndarray::s![s..e, ..]).to_owned();
                    for _ in 0..k {
                        v_neg = replica.sample_visible_batch(&h_neg, rng);
                        h_neg = replica.sample_hidden_batch(&v_neg, rng);
                    }
                    (s, h_pos, v_neg, h_neg, *replica.counters())
                })
                .collect();

            let mut h_pos = Array2::zeros((batch.nrows(), n));
            let mut v_neg = Array2::zeros((batch.nrows(), m));
            let mut h_neg = Array2::zeros((batch.nrows(), n));
            for (s, hp, vn, hn, counters) in chunks {
                for i in 0..hp.nrows() {
                    h_pos.row_mut(s + i).assign(&hp.row(i));
                    v_neg.row_mut(s + i).assign(&vn.row(i));
                    h_neg.row_mut(s + i).assign(&hn.row(i));
                }
                substrate.counters_mut().merge(&counters);
            }
            let bs = batch.nrows() as u64;
            let counters = substrate.counters_mut();
            counters.positive_samples += bs;
            counters.negative_samples += bs;
            counters.host_mac_ops += bs * 2 * (m * n) as u64 + (m * n + m + n) as u64;

            stats.push(self.apply_gradients(
                rbm,
                &batch,
                &h_pos,
                &v_neg,
                &h_neg,
                &mut velocity_w,
                &mut velocity_bv,
                &mut velocity_bh,
            ));
            start = end;
            batch_index += 1;
        }
        EpochStats::accumulate(&stats)
    }

    /// Shared host-side gradient step (lines 17–19 of Algorithm 1 with
    /// momentum and weight decay): the common tail of every CD variant.
    #[allow(clippy::too_many_arguments)]
    fn apply_gradients(
        &self,
        rbm: &mut Rbm,
        batch: &Array2<f64>,
        h_pos: &Array2<f64>,
        v_neg: &Array2<f64>,
        h_neg: &Array2<f64>,
        velocity_w: &mut Array2<f64>,
        velocity_bv: &mut Array1<f64>,
        velocity_bh: &mut Array1<f64>,
    ) -> (f64, f64) {
        let bs = batch.nrows() as f64;
        let grad_w = (batch.t().dot(h_pos) - v_neg.t().dot(h_neg)) / bs;
        let grad_bv = (batch.sum_axis(Axis(0)) - v_neg.sum_axis(Axis(0))) / bs;
        let grad_bh = (h_pos.sum_axis(Axis(0)) - h_neg.sum_axis(Axis(0))) / bs;
        let grad_norm = grad_w.iter().map(|g| g * g).sum::<f64>().sqrt();

        *velocity_w = &*velocity_w * self.momentum
            + &(&grad_w - &(rbm.weights() * self.weight_decay)) * self.learning_rate;
        *velocity_bv = &*velocity_bv * self.momentum + &grad_bv * self.learning_rate;
        *velocity_bh = &*velocity_bh * self.momentum + &grad_bh * self.learning_rate;

        *rbm.weights_mut() += &*velocity_w;
        *rbm.visible_bias_mut() += &*velocity_bv;
        *rbm.hidden_bias_mut() += &*velocity_bh;

        let recon = (v_neg - batch).mapv(f64::abs).mean().unwrap_or(0.0);
        (recon, grad_norm)
    }

    /// Parallel epoch: the per-row positive/negative phases of every
    /// minibatch run across the rayon pool, each row on its own RNG
    /// stream (`streams.subfamily(batch).rng(row)`), so the trained model
    /// is **bit-identical at every thread count** for a fixed master
    /// seed. Gradients are accumulated with the same batched GEMM
    /// formulation as the serial path.
    ///
    /// The streams are consumed deterministically per call: training for
    /// several epochs must pass a **distinct subfamily per epoch**
    /// (`streams.subfamily(epoch)`) — or use [`CdTrainer::train_par`],
    /// which does so — otherwise every epoch replays the identical
    /// sampling noise and the gradient noise never averages out.
    ///
    /// # Panics
    ///
    /// Panics if `data` width differs from the RBM's visible count or
    /// `batch_size == 0`.
    pub fn train_epoch_par(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        streams: RngStreams,
    ) -> EpochStats {
        assert_eq!(data.ncols(), rbm.visible_len(), "data width mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        let mut velocity_w = Array2::<f64>::zeros(rbm.weights().dim());
        let mut velocity_bv = Array1::<f64>::zeros(rbm.visible_len());
        let mut velocity_bh = Array1::<f64>::zeros(rbm.hidden_len());
        let mut stats = Vec::new();

        let rows = data.nrows();
        let (mut start, mut batch_index) = (0, 0u64);
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            let batch_streams = streams.subfamily(batch_index);

            // Fan the rows out: each is an independent chain on its own
            // stream.
            let chains: Vec<(Array1<f64>, Array1<f64>, Array1<f64>)> = batch
                .rows()
                .map(|r| r.to_owned())
                .enumerate()
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(i, v_pos)| {
                    let mut rng = batch_streams.rng(i as u64);
                    let h_pos = rbm.sample_hidden(&v_pos.view(), &mut rng);
                    let mut h_neg = h_pos.clone();
                    let mut v_neg = v_pos;
                    for _ in 0..self.k {
                        v_neg = rbm.sample_visible(&h_neg.view(), &mut rng);
                        h_neg = rbm.sample_hidden(&v_neg.view(), &mut rng);
                    }
                    (h_pos, v_neg, h_neg)
                })
                .collect();

            let n = rbm.hidden_len();
            let m = rbm.visible_len();
            let mut h_pos_rows = Vec::with_capacity(chains.len());
            let mut v_neg_rows = Vec::with_capacity(chains.len());
            let mut h_neg_rows = Vec::with_capacity(chains.len());
            for (h_pos, v_neg, h_neg) in chains {
                h_pos_rows.push(h_pos);
                v_neg_rows.push(v_neg);
                h_neg_rows.push(h_neg);
            }
            let h_pos = gibbs::stack_rows(h_pos_rows, n);
            let v_neg = gibbs::stack_rows(v_neg_rows, m);
            let h_neg = gibbs::stack_rows(h_neg_rows, n);

            // Same batched GEMM gradient as the serial path.
            stats.push(self.apply_gradients(
                rbm,
                &batch,
                &h_pos,
                &v_neg,
                &h_neg,
                &mut velocity_w,
                &mut velocity_bv,
                &mut velocity_bh,
            ));
            start = end;
            batch_index += 1;
        }
        EpochStats::accumulate(&stats)
    }

    /// Parallel full training run: `epochs` epochs of
    /// [`CdTrainer::train_epoch_par`], each on its own stream subfamily
    /// (`streams.subfamily(epoch)`) so sampling noise is independent
    /// across epochs. Returns the final epoch's statistics.
    pub fn train_par(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        streams: RngStreams,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for epoch in 0..epochs {
            last = self.train_epoch_par(rbm, data, batch_size, streams.subfamily(epoch as u64));
        }
        last
    }

    /// Convenience: full training run of `epochs` epochs; returns the final
    /// epoch's statistics.
    pub fn train<R: Rng + ?Sized>(
        &self,
        rbm: &mut Rbm,
        data: &Array2<f64>,
        batch_size: usize,
        epochs: usize,
        rng: &mut R,
    ) -> EpochStats {
        let mut last = EpochStats {
            batches: 0,
            reconstruction_error: 0.0,
            gradient_norm: 0.0,
        };
        for _ in 0..epochs {
            last = self.train_epoch(rbm, data, batch_size, rng);
        }
        last
    }

    /// Draws the negative-phase sample for external use (the piece the GS
    /// architecture offloads to the substrate).
    pub fn negative_phase<R: Rng + ?Sized>(
        &self,
        rbm: &Rbm,
        v0: &Array1<f64>,
        rng: &mut R,
    ) -> (Array1<f64>, Array1<f64>) {
        gibbs::chain(rbm, v0, self.k, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_mode_data(rows: usize, m: usize) -> Array2<f64> {
        Array2::from_shape_fn((rows, m), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn cd1_learns_two_modes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut rbm = Rbm::random(8, 4, 0.01, &mut rng);
        let data = two_mode_data(60, 8);
        let before = crate::exact::mean_log_likelihood(&rbm, &data);
        // lr 0.05: the larger 0.1 overshoots and oscillates late in
        // training on this tiny model, eroding the LL gain.
        let trainer = CdTrainer::new(1, 0.05);
        trainer.train(&mut rbm, &data, 10, 60, &mut rng);
        let after = crate::exact::mean_log_likelihood(&rbm, &data);
        assert!(
            after > before + 1.0,
            "log-likelihood should improve: {before} -> {after}"
        );
    }

    #[test]
    fn cd10_at_least_as_good_as_cd1_on_average() {
        // Not guaranteed per-seed, so average over a few.
        let data = two_mode_data(40, 6);
        let mut ll1 = 0.0;
        let mut ll10 = 0.0;
        for seed in 0..3 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut a = Rbm::random(6, 3, 0.01, &mut rng);
            let mut b = a.clone();
            CdTrainer::new(1, 0.1).train(&mut a, &data, 10, 40, &mut rng);
            CdTrainer::new(10, 0.1).train(&mut b, &data, 10, 40, &mut rng);
            ll1 += crate::exact::mean_log_likelihood(&a, &data);
            ll10 += crate::exact::mean_log_likelihood(&b, &data);
        }
        // CD-10 shouldn't be dramatically worse.
        assert!(ll10 > ll1 - 1.5, "cd1 {ll1} vs cd10 {ll10}");
    }

    #[test]
    fn epoch_stats_counts_batches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut rbm = Rbm::random(4, 2, 0.01, &mut rng);
        let data = two_mode_data(23, 4);
        let stats = CdTrainer::new(1, 0.05).train_epoch(&mut rbm, &data, 10, &mut rng);
        assert_eq!(stats.batches, 3); // 10 + 10 + 3
        assert!(stats.reconstruction_error >= 0.0);
    }

    #[test]
    fn momentum_and_decay_run() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut rbm = Rbm::random(5, 3, 0.01, &mut rng);
        let data = two_mode_data(20, 5);
        let trainer = CdTrainer::new(2, 0.05)
            .with_momentum(0.5)
            .with_weight_decay(1e-4);
        let stats = trainer.train(&mut rbm, &data, 5, 5, &mut rng);
        assert!(stats.gradient_norm.is_finite());
        assert!(rbm.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn rejects_zero_k() {
        let _ = CdTrainer::new(0, 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = two_mode_data(16, 4);
        let run = |seed: u64| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut rbm = Rbm::random(4, 2, 0.01, &mut rng);
            CdTrainer::new(1, 0.1).train(&mut rbm, &data, 4, 3, &mut rng);
            rbm
        };
        assert_eq!(run(9), run(9));
    }
}
