use ndarray::{Array1, Array2, ArrayView1, Axis};
use serde::{Deserialize, Serialize};

use crate::Rbm;

/// Extracts all patches of `patch × patch × channels` from a batch of
/// flattened `height × width × channels` images (row-major, channel-last),
/// sliding with the given stride.
///
/// This is the front end of the single-layer convolutional-RBM pipeline the
/// paper applies to CIFAR10 (6×6×3 = 108-dim patches) and SmallNORB
/// (6×6 = 36-dim patches), following Coates et al. 2011.
///
/// Returns a `(num_images × positions, patch_len)` matrix, patches of one
/// image stored contiguously in row-major position order.
///
/// # Panics
///
/// Panics if the image length does not factor as `height × width ×
/// channels`, or the patch does not fit.
pub fn extract_patches(
    images: &Array2<f64>,
    height: usize,
    width: usize,
    channels: usize,
    patch: usize,
    stride: usize,
) -> Array2<f64> {
    assert_eq!(
        images.ncols(),
        height * width * channels,
        "image length must equal height*width*channels"
    );
    assert!(patch <= height && patch <= width, "patch must fit image");
    assert!(stride >= 1, "stride must be at least 1");
    let pos_y = (height - patch) / stride + 1;
    let pos_x = (width - patch) / stride + 1;
    let patch_len = patch * patch * channels;
    let mut out = Array2::zeros((images.nrows() * pos_y * pos_x, patch_len));
    for (img_idx, img) in images.axis_iter(Axis(0)).enumerate() {
        let mut pos = 0;
        for py in 0..pos_y {
            for px in 0..pos_x {
                let row_idx = img_idx * pos_y * pos_x + pos;
                let mut col = 0;
                for dy in 0..patch {
                    for dx in 0..patch {
                        for c in 0..channels {
                            let y = py * stride + dy;
                            let x = px * stride + dx;
                            out[[row_idx, col]] = img[(y * width + x) * channels + c];
                            col += 1;
                        }
                    }
                }
                pos += 1;
            }
        }
    }
    out
}

/// Binarizes patches against their own mean — the cheap contrast
/// normalization that lets a binary RBM model gray/color patches.
pub fn binarize_patches(patches: &Array2<f64>) -> Array2<f64> {
    let mut out = patches.clone();
    for mut row in out.axis_iter_mut(Axis(0)) {
        let mean = row.sum() / row.len() as f64;
        row.mapv_inplace(|x| if x > mean { 1.0 } else { 0.0 });
    }
    out
}

/// The Coates-style "conv-RBM" feature pipeline (§4.1): a patch-level RBM
/// swept over the image, hidden activations average-pooled over a 2×2
/// spatial grid, yielding a `4 × hidden` feature vector per image for the
/// classifier head.
///
/// # Example
///
/// ```
/// use ember_rbm::{PatchPipeline, Rbm};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let rbm = Rbm::random(4, 8, 0.1, &mut rng); // 2x2x1 patches
/// let pipe = PatchPipeline::new(rbm, 6, 6, 1, 2, 2);
/// let images = Array2::zeros((3, 36));
/// let feats = pipe.features_batch(&images);
/// assert_eq!(feats.dim(), (3, 4 * 8));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatchPipeline {
    rbm: Rbm,
    height: usize,
    width: usize,
    channels: usize,
    patch: usize,
    stride: usize,
}

impl PatchPipeline {
    /// Wraps a patch-trained RBM with its sweep geometry.
    ///
    /// # Panics
    ///
    /// Panics if the RBM's visible size differs from
    /// `patch × patch × channels`, or the patch does not fit the image.
    pub fn new(
        rbm: Rbm,
        height: usize,
        width: usize,
        channels: usize,
        patch: usize,
        stride: usize,
    ) -> Self {
        assert_eq!(
            rbm.visible_len(),
            patch * patch * channels,
            "RBM visible size must match the patch volume"
        );
        assert!(patch <= height && patch <= width, "patch must fit image");
        assert!(stride >= 1, "stride must be at least 1");
        PatchPipeline {
            rbm,
            height,
            width,
            channels,
            patch,
            stride,
        }
    }

    /// The underlying patch RBM.
    pub fn rbm(&self) -> &Rbm {
        &self.rbm
    }

    /// Mutable access (so the patch RBM can be trained by any trainer,
    /// including the hardware models).
    pub fn rbm_mut(&mut self) -> &mut Rbm {
        &mut self.rbm
    }

    /// Feature dimensionality: `4 × hidden` (2×2 pooling grid).
    pub fn feature_len(&self) -> usize {
        4 * self.rbm.hidden_len()
    }

    fn positions(&self) -> (usize, usize) {
        (
            (self.height - self.patch) / self.stride + 1,
            (self.width - self.patch) / self.stride + 1,
        )
    }

    /// Features of a single flattened image.
    ///
    /// # Panics
    ///
    /// Panics if the image length is wrong.
    pub fn features(&self, image: &ArrayView1<'_, f64>) -> Array1<f64> {
        assert_eq!(
            image.len(),
            self.height * self.width * self.channels,
            "image length mismatch"
        );
        let (pos_y, pos_x) = self.positions();
        let n = self.rbm.hidden_len();
        let mut pooled = Array2::<f64>::zeros((4, n));
        let mut counts = [0.0f64; 4];
        let mut patch_vec = Array1::<f64>::zeros(self.rbm.visible_len());
        for py in 0..pos_y {
            for px in 0..pos_x {
                let mut col = 0;
                let mut sum = 0.0;
                for dy in 0..self.patch {
                    for dx in 0..self.patch {
                        for c in 0..self.channels {
                            let y = py * self.stride + dy;
                            let x = px * self.stride + dx;
                            let v = image[(y * self.width + x) * self.channels + c];
                            patch_vec[col] = v;
                            sum += v;
                            col += 1;
                        }
                    }
                }
                // Per-patch mean binarization (same as training).
                let mean = sum / patch_vec.len() as f64;
                patch_vec.mapv_inplace(|x| if x > mean { 1.0 } else { 0.0 });
                let h = self.rbm.hidden_probs(&patch_vec.view());
                // Quadrant pooling.
                let qy = if py * 2 >= pos_y { 1 } else { 0 };
                let qx = if px * 2 >= pos_x { 1 } else { 0 };
                let q = qy * 2 + qx;
                let mut row = pooled.row_mut(q);
                row += &h;
                counts[q] += 1.0;
            }
        }
        let mut out = Array1::zeros(4 * n);
        for q in 0..4 {
            if counts[q] > 0.0 {
                for j in 0..n {
                    out[q * n + j] = pooled[[q, j]] / counts[q];
                }
            }
        }
        out
    }

    /// Features of a batch of flattened images, one row each.
    pub fn features_batch(&self, images: &Array2<f64>) -> Array2<f64> {
        let mut out = Array2::zeros((images.nrows(), self.feature_len()));
        for (i, img) in images.axis_iter(Axis(0)).enumerate() {
            out.row_mut(i).assign(&self.features(&img));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn patch_extraction_counts_and_contents() {
        // 1 image, 4x4x1, patch 2, stride 2 -> 4 patches.
        let img = Array2::from_shape_fn((1, 16), |(_, j)| j as f64);
        let patches = extract_patches(&img, 4, 4, 1, 2, 2);
        assert_eq!(patches.dim(), (4, 4));
        // Top-left patch is pixels (0,0),(0,1),(1,0),(1,1) = 0,1,4,5.
        assert_eq!(patches.row(0).to_vec(), vec![0.0, 1.0, 4.0, 5.0]);
        // Bottom-right patch: 10,11,14,15.
        assert_eq!(patches.row(3).to_vec(), vec![10.0, 11.0, 14.0, 15.0]);
    }

    #[test]
    fn channels_interleave() {
        // 2x2x2 image, patch 2: one patch with 8 values.
        let img = Array2::from_shape_fn((1, 8), |(_, j)| j as f64);
        let patches = extract_patches(&img, 2, 2, 2, 2, 1);
        assert_eq!(patches.dim(), (1, 8));
        assert_eq!(
            patches.row(0).to_vec(),
            (0..8).map(|x| x as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stride_one_overlapping() {
        let img = Array2::zeros((2, 9)); // two 3x3 images
        let patches = extract_patches(&img, 3, 3, 1, 2, 1);
        assert_eq!(patches.dim(), (2 * 4, 4));
    }

    #[test]
    fn binarize_against_mean() {
        let patches = ndarray::arr2(&[[0.0, 0.5, 1.0, 0.9]]);
        let b = binarize_patches(&patches);
        // mean = 0.6
        assert_eq!(b.row(0).to_vec(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn pipeline_feature_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rbm = Rbm::random(108, 16, 0.05, &mut rng); // 6x6x3 patches (CIFAR config)
        let pipe = PatchPipeline::new(rbm, 12, 12, 3, 6, 3);
        assert_eq!(pipe.feature_len(), 64);
        let images = Array2::from_shape_fn((2, 12 * 12 * 3), |(i, j)| ((i + j) % 5) as f64 / 4.0);
        let f = pipe.features_batch(&images);
        assert_eq!(f.dim(), (2, 64));
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn distinct_images_give_distinct_features() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(4, 6, 0.8, &mut rng);
        let pipe = PatchPipeline::new(rbm, 4, 4, 1, 2, 2);
        // Vertical vs horizontal stripes: constant patches would binarize
        // to all-zeros (no contrast), so give the patches internal texture.
        let a = Array1::from_shape_fn(16, |j| ((j % 4) % 2) as f64);
        let b = Array1::from_shape_fn(16, |j| ((j / 4) % 2) as f64);
        let fa = pipe.features(&a.view());
        let fb = pipe.features(&b.view());
        assert_ne!(fa, fb);
    }

    #[test]
    #[should_panic(expected = "patch volume")]
    fn pipeline_validates_rbm_size() {
        let rbm = Rbm::new(10, 4);
        let _ = PatchPipeline::new(rbm, 6, 6, 1, 2, 2);
    }
}
