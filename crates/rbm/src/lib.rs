//! # ember-rbm
//!
//! The Restricted Boltzmann Machine stack (§2.3): the model, its software
//! trainers, deep variants, and the dense neural-network head used for
//! classification experiments.
//!
//! * [`Rbm`] — weights, biases, conditional distributions (Eqs. 4–5), free
//!   energy, and the energy function of Eq. 3.
//! * [`CdTrainer`] — the contrastive-divergence algorithm of Algorithm 1
//!   (CD-k, minibatched stochastic gradient ascent on the log-likelihood).
//! * [`PcdTrainer`] — persistent contrastive divergence (Tieleman 2008),
//!   the software analogue of the BGF's `p` persistent particles.
//! * [`MlTrainer`] — *exact* maximum-likelihood gradients by enumeration,
//!   tractable only for tiny models; the ground-truth reference of the
//!   paper's Appendix A bias study.
//! * [`exact`] — exact partition function / log-likelihood / distribution
//!   for tiny models (used by AIS validation and the KL experiments).
//! * [`gibbs`] — Gibbs-chain utilities shared by the trainers.
//! * [`Dbn`] — stacked RBMs with greedy layer-wise pretraining, and
//!   [`Mlp`] — a plain dense network (sigmoid hidden layers + softmax
//!   output) for the DBN-DNN fine-tuning pipeline of Table 1.
//! * [`PatchPipeline`] — the Coates-style single-layer convolutional-RBM
//!   feature pipeline the paper applies to CIFAR10 and SmallNORB.
//!
//! # Example: train a tiny RBM with CD-1
//!
//! ```
//! use ember_rbm::{Rbm, CdTrainer};
//! use ndarray::Array2;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut rbm = Rbm::random(6, 3, 0.01, &mut rng);
//! // Learn a dataset where all pixels are equal (two modes).
//! let data = Array2::from_shape_fn((40, 6), |(i, _)| if i % 2 == 0 { 1.0 } else { 0.0 });
//! let trainer = CdTrainer::new(1, 0.1);
//! for _ in 0..30 {
//!     trainer.train_epoch(&mut rbm, &data, 10, &mut rng);
//! }
//! let recon = rbm.reconstruction_error(&data, &mut rng);
//! assert!(recon < 0.25, "reconstruction error {recon}");
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod dbn;
pub mod exact;
pub mod gibbs;
pub mod math;
mod nn;
mod rbm;
mod trainer;

pub use conv::{binarize_patches, extract_patches, PatchPipeline};
pub use dbn::Dbn;
pub use ember_ising::RngStreams;
pub use nn::{Mlp, MlpConfig};
pub use rbm::{Rbm, RbmError};
pub use trainer::{CdTrainer, EpochStats, MlTrainer, PcdTrainer};
