use ndarray::{Array1, Array2, Axis};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::math::sigmoid;
use crate::Dbn;

/// Hyper-parameters for [`Mlp`] training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient in `[0, 1)`.
    pub momentum: f64,
    /// L2 weight decay.
    pub weight_decay: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            learning_rate: 0.1,
            momentum: 0.5,
            weight_decay: 1e-4,
        }
    }
}

/// A dense feed-forward network with sigmoid hidden layers and a softmax
/// output — the classifier head of the paper's experiments.
///
/// Two uses, matching §4.1:
/// * zero hidden layers = the "logistic regression layer at the end" used to
///   score RBM features;
/// * initialized from a pretrained [`Dbn`] via [`Mlp::from_dbn`] and
///   fine-tuned with backprop = the DBN-DNN models of Table 1.
///
/// # Example
///
/// ```
/// use ember_rbm::{Mlp, MlpConfig};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// // Two linearly separable classes in 4 dimensions.
/// let data = Array2::from_shape_fn((40, 4), |(i, j)| {
///     if (i % 2 == 0) == (j < 2) { 1.0 } else { 0.0 }
/// });
/// let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
/// let mut mlp = Mlp::new(4, &[], 2, 0.1, &mut rng);
/// for _ in 0..60 {
///     mlp.train_epoch(&data, &labels, 10, &MlpConfig::default(), &mut rng);
/// }
/// assert!(mlp.accuracy(&data, &labels) > 0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    weights: Vec<Array2<f64>>,
    biases: Vec<Array1<f64>>,
    velocity_w: Vec<Array2<f64>>,
    velocity_b: Vec<Array1<f64>>,
}

impl Mlp {
    /// Creates a network `input → hidden[0] → … → classes` with Gaussian
    /// `N(0, init_std²)` weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if `input == 0`, `classes < 2`, any hidden width is zero, or
    /// `init_std` is not finite and non-negative.
    pub fn new<R: Rng + ?Sized>(
        input: usize,
        hidden: &[usize],
        classes: usize,
        init_std: f64,
        rng: &mut R,
    ) -> Self {
        assert!(input > 0, "input dimension must be positive");
        assert!(classes >= 2, "need at least two classes");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        assert!(init_std >= 0.0 && init_std.is_finite(), "bad init std");
        let dist = Normal::new(0.0, init_std.max(f64::MIN_POSITIVE)).expect("validated std");
        let mut dims = vec![input];
        dims.extend_from_slice(hidden);
        dims.push(classes);
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for win in dims.windows(2) {
            let (i, o) = (win[0], win[1]);
            let w = if init_std == 0.0 {
                Array2::zeros((i, o))
            } else {
                Array2::from_shape_fn((i, o), |_| dist.sample(rng))
            };
            weights.push(w);
            biases.push(Array1::zeros(o));
        }
        let velocity_w = weights.iter().map(|w| Array2::zeros(w.dim())).collect();
        let velocity_b = biases.iter().map(|b| Array1::zeros(b.len())).collect();
        Mlp {
            weights,
            biases,
            velocity_w,
            velocity_b,
        }
    }

    /// Builds the DBN-DNN of Table 1: hidden layers initialized from the
    /// pretrained DBN's weights/hidden biases, plus a fresh softmax layer.
    pub fn from_dbn<R: Rng + ?Sized>(dbn: &Dbn, classes: usize, rng: &mut R) -> Self {
        let hidden: Vec<usize> = (0..dbn.depth())
            .map(|l| dbn.layer(l).hidden_len())
            .collect();
        let mut mlp = Mlp::new(dbn.layer(0).visible_len(), &hidden, classes, 0.01, rng);
        for (l, layer) in (0..dbn.depth()).map(|l| (l, dbn.layer(l))) {
            mlp.weights[l] = layer.weights().clone();
            mlp.biases[l] = layer.hidden_bias().clone();
        }
        mlp
    }

    /// Number of layers (hidden + output).
    pub fn depth(&self) -> usize {
        self.weights.len()
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.weights[0].nrows()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.weights.last().expect("at least one layer").ncols()
    }

    /// Forward pass: returns per-layer activations, `activations[0]` being
    /// the input batch and the last being softmax class probabilities.
    pub fn forward(&self, batch: &Array2<f64>) -> Vec<Array2<f64>> {
        assert_eq!(batch.ncols(), self.input_len(), "input width mismatch");
        let mut acts = vec![batch.clone()];
        for (l, (w, b)) in self.weights.iter().zip(&self.biases).enumerate() {
            let mut z = acts[l].dot(w);
            for mut row in z.axis_iter_mut(Axis(0)) {
                row += b;
            }
            if l + 1 == self.weights.len() {
                softmax_rows(&mut z);
            } else {
                z.mapv_inplace(sigmoid);
            }
            acts.push(z);
        }
        acts
    }

    /// Class probabilities for a batch (`batch × classes`).
    pub fn predict_proba(&self, batch: &Array2<f64>) -> Array2<f64> {
        self.forward(batch).pop().expect("forward returns layers")
    }

    /// Hard class predictions.
    pub fn predict(&self, batch: &Array2<f64>) -> Vec<usize> {
        self.predict_proba(batch)
            .axis_iter(Axis(0))
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Classification accuracy against integer labels.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != batch.nrows()`.
    pub fn accuracy(&self, batch: &Array2<f64>, labels: &[usize]) -> f64 {
        assert_eq!(labels.len(), batch.nrows(), "label count mismatch");
        let preds = self.predict(batch);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Mean cross-entropy loss.
    pub fn loss(&self, batch: &Array2<f64>, labels: &[usize]) -> f64 {
        let probs = self.predict_proba(batch);
        let mut total = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            total -= probs[[i, label]].max(1e-300).ln();
        }
        total / labels.len() as f64
    }

    /// One epoch of minibatch SGD with momentum; returns the mean loss over
    /// the epoch (computed before each update).
    ///
    /// # Panics
    ///
    /// Panics on label/batch size mismatch, out-of-range labels, or
    /// `batch_size == 0`.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        data: &Array2<f64>,
        labels: &[usize],
        batch_size: usize,
        config: &MlpConfig,
        _rng: &mut R,
    ) -> f64 {
        assert_eq!(labels.len(), data.nrows(), "label count mismatch");
        assert!(batch_size >= 1, "batch size must be positive");
        assert!(
            labels.iter().all(|&l| l < self.classes()),
            "label out of range"
        );
        let rows = data.nrows();
        let mut total_loss = 0.0;
        let mut batches = 0;
        let mut start = 0;
        while start < rows {
            let end = (start + batch_size).min(rows);
            let batch = data.slice(ndarray::s![start..end, ..]).to_owned();
            let batch_labels = &labels[start..end];
            total_loss += self.train_batch(&batch, batch_labels, config);
            batches += 1;
            start = end;
        }
        total_loss / batches as f64
    }

    fn train_batch(&mut self, batch: &Array2<f64>, labels: &[usize], config: &MlpConfig) -> f64 {
        let bs = batch.nrows() as f64;
        let acts = self.forward(batch);
        let probs = acts.last().expect("output layer");

        let mut loss = 0.0;
        // δ for the softmax/cross-entropy output layer: p − one-hot(y).
        let mut delta = probs.clone();
        for (i, &label) in labels.iter().enumerate() {
            loss -= probs[[i, label]].max(1e-300).ln();
            delta[[i, label]] -= 1.0;
        }

        // Backpropagate through the layers.
        for l in (0..self.weights.len()).rev() {
            let grad_w = acts[l].t().dot(&delta) / bs;
            let grad_b = delta.sum_axis(Axis(0)) / bs;
            if l > 0 {
                let back = delta.dot(&self.weights[l].t());
                // σ'(z) = a (1 − a)
                delta = back * &acts[l].mapv(|a| a * (1.0 - a));
            }
            self.velocity_w[l] = &self.velocity_w[l] * config.momentum
                - &(&grad_w + &(&self.weights[l] * config.weight_decay)) * config.learning_rate;
            self.velocity_b[l] =
                &self.velocity_b[l] * config.momentum - &grad_b * config.learning_rate;
            self.weights[l] += &self.velocity_w[l];
            self.biases[l] += &self.velocity_b[l];
        }

        loss / bs
    }
}

fn softmax_rows(z: &mut Array2<f64>) {
    for mut row in z.axis_iter_mut(Axis(0)) {
        let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        row.mapv_inplace(|x| (x - max).exp());
        let sum = row.sum();
        row.mapv_inplace(|x| x / sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn xor_data() -> (Array2<f64>, Vec<usize>) {
        // XOR, repeated: needs a hidden layer.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..30 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                rows.push([a, b]);
                labels.push((a as usize) ^ (b as usize));
            }
        }
        let data = Array2::from_shape_fn((rows.len(), 2), |(i, j)| rows[i][j]);
        (data, labels)
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut z = ndarray::arr2(&[[1.0, 2.0, 3.0], [1000.0, 1000.0, 0.0]]);
        softmax_rows(&mut z);
        for row in z.axis_iter(Axis(0)) {
            assert!((row.sum() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn logistic_head_learns_linear_problem() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data = Array2::from_shape_fn((60, 3), |(i, j)| if (i % 3) == j { 1.0 } else { 0.0 });
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let mut mlp = Mlp::new(3, &[], 3, 0.01, &mut rng);
        for _ in 0..100 {
            mlp.train_epoch(&data, &labels, 12, &MlpConfig::default(), &mut rng);
        }
        assert!(mlp.accuracy(&data, &labels) > 0.99);
    }

    #[test]
    fn hidden_layer_solves_xor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (data, labels) = xor_data();
        let mut mlp = Mlp::new(2, &[8], 2, 0.5, &mut rng);
        let config = MlpConfig {
            learning_rate: 0.5,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        for _ in 0..300 {
            mlp.train_epoch(&data, &labels, 20, &config, &mut rng);
        }
        assert!(mlp.accuracy(&data, &labels) > 0.95, "xor accuracy too low");
    }

    #[test]
    fn loss_decreases_during_training() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (data, labels) = xor_data();
        let mut mlp = Mlp::new(2, &[6], 2, 0.3, &mut rng);
        let before = mlp.loss(&data, &labels);
        for _ in 0..100 {
            mlp.train_epoch(&data, &labels, 16, &MlpConfig::default(), &mut rng);
        }
        assert!(mlp.loss(&data, &labels) < before);
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numeric gradient of the cross-entropy through the backprop path.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let data = ndarray::arr2(&[[1.0, 0.0], [0.0, 1.0]]);
        let labels = [0usize, 1usize];
        let mlp0 = Mlp::new(2, &[3], 2, 0.4, &mut rng);

        // Analytic: run one zero-momentum, zero-decay update with tiny lr
        // and recover the gradient from the parameter change.
        let config = MlpConfig {
            learning_rate: 1e-6,
            momentum: 0.0,
            weight_decay: 0.0,
        };
        let mut stepped = mlp0.clone();
        stepped.train_epoch(&data, &labels, 2, &config, &mut rng);
        let analytic00 = (mlp0.weights[0][[0, 0]] - stepped.weights[0][[0, 0]]) / 1e-6;

        let h = 1e-5;
        let mut plus = mlp0.clone();
        plus.weights[0][[0, 0]] += h;
        let mut minus = mlp0.clone();
        minus.weights[0][[0, 0]] -= h;
        let numeric = (plus.loss(&data, &labels) - minus.loss(&data, &labels)) / (2.0 * h);
        assert!(
            (numeric - analytic00).abs() < 1e-4,
            "numeric {numeric} vs analytic {analytic00}"
        );
    }

    #[test]
    fn predict_shapes_and_ranges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mlp = Mlp::new(4, &[5, 3], 6, 0.1, &mut rng);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.classes(), 6);
        let batch = Array2::zeros((7, 4));
        let probs = mlp.predict_proba(&batch);
        assert_eq!(probs.dim(), (7, 6));
        let preds = mlp.predict(&batch);
        assert!(preds.iter().all(|&p| p < 6));
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut mlp = Mlp::new(2, &[], 2, 0.1, &mut rng);
        let data = Array2::zeros((1, 2));
        mlp.train_epoch(&data, &[5], 1, &MlpConfig::default(), &mut rng);
    }
}
