use ndarray::Array2;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{CdTrainer, EpochStats, Rbm};

/// A Deep Belief Network: a stack of RBMs trained greedily layer-by-layer
/// (§2.3; the DBN-DNN configurations of Table 1).
///
/// Layer `l+1`'s visible units are layer `l`'s hidden probabilities —
/// the "conventional approaches when stacking multiple layers together"
/// the paper follows.
///
/// # Example
///
/// ```
/// use ember_rbm::{Dbn, CdTrainer};
/// use ndarray::Array2;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let data = Array2::from_shape_fn((20, 8), |(i, _)| (i % 2) as f64);
/// let mut dbn = Dbn::random(&[8, 6, 4], 0.01, &mut rng);
/// dbn.pretrain(&data, &CdTrainer::new(1, 0.1), 10, 3, &mut rng);
/// let features = dbn.transform(&data);
/// assert_eq!(features.dim(), (20, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dbn {
    layers: Vec<Rbm>,
}

impl Dbn {
    /// Creates a DBN with the given layer sizes, e.g. `&[784, 500, 500]`
    /// builds RBMs `784×500` and `500×500`. Weights `~ N(0, std²)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn random<R: Rng + ?Sized>(sizes: &[usize], std: f64, rng: &mut R) -> Self {
        assert!(sizes.len() >= 2, "need at least input and one hidden size");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let layers = sizes
            .windows(2)
            .map(|w| Rbm::random(w[0], w[1], std, rng))
            .collect();
        Dbn { layers }
    }

    /// Builds a DBN from already-trained RBMs.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty or adjacent dimensions do not chain.
    pub fn from_layers(layers: Vec<Rbm>) -> Self {
        assert!(!layers.is_empty(), "a DBN needs at least one RBM");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].hidden_len(),
                pair[1].visible_len(),
                "adjacent RBM dimensions must chain"
            );
        }
        Dbn { layers }
    }

    /// Number of RBM layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The `l`-th RBM (0 = closest to the data).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of bounds.
    pub fn layer(&self, l: usize) -> &Rbm {
        &self.layers[l]
    }

    /// Mutable access to the `l`-th RBM (used when a layer is trained on
    /// the accelerator instead of in software).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of bounds.
    pub fn layer_mut(&mut self, l: usize) -> &mut Rbm {
        &mut self.layers[l]
    }

    /// Input dimensionality.
    pub fn input_len(&self) -> usize {
        self.layers[0].visible_len()
    }

    /// Output (top hidden layer) dimensionality.
    pub fn output_len(&self) -> usize {
        self.layers.last().expect("non-empty").hidden_len()
    }

    /// Greedy layer-wise pretraining: trains layer 0 on the data, then each
    /// subsequent layer on the previous layer's hidden probabilities.
    /// Returns the final-epoch stats of each layer.
    pub fn pretrain<R: Rng + ?Sized>(
        &mut self,
        data: &Array2<f64>,
        trainer: &CdTrainer,
        batch_size: usize,
        epochs_per_layer: usize,
        rng: &mut R,
    ) -> Vec<EpochStats> {
        let mut stats = Vec::with_capacity(self.layers.len());
        let mut input = data.clone();
        for rbm in self.layers.iter_mut() {
            let s = trainer.train(rbm, &input, batch_size, epochs_per_layer, rng);
            stats.push(s);
            input = rbm.hidden_probs_batch(&input);
        }
        stats
    }

    /// Propagates data to the top layer's hidden probabilities — the
    /// feature representation handed to the classifier head.
    pub fn transform(&self, data: &Array2<f64>) -> Array2<f64> {
        let mut x = data.clone();
        for rbm in &self.layers {
            x = rbm.hidden_probs_batch(&x);
        }
        x
    }

    /// Propagates only through the first `depth` layers.
    ///
    /// # Panics
    ///
    /// Panics if `depth > self.depth()`.
    pub fn transform_partial(&self, data: &Array2<f64>, depth: usize) -> Array2<f64> {
        assert!(depth <= self.layers.len(), "depth out of range");
        let mut x = data.clone();
        for rbm in &self.layers[..depth] {
            x = rbm.hidden_probs_batch(&x);
        }
        x
    }

    /// Generates `count` visible samples from the DBN's generative model:
    /// Gibbs sampling in the top-layer RBM (`equilibration` alternations),
    /// then a stochastic top-down pass through the directed lower layers —
    /// the standard DBN ancestral sampling procedure.
    pub fn sample<R: rand::Rng + ?Sized>(
        &self,
        count: usize,
        equilibration: usize,
        rng: &mut R,
    ) -> Array2<f64> {
        let top = self.layers.last().expect("non-empty");
        let mut out = Array2::zeros((count, self.input_len()));
        for i in 0..count {
            // Equilibrate the top RBM from a random hidden state.
            let mut h = ndarray::Array1::from_shape_fn(top.hidden_len(), |_| {
                if rng.random_bool(0.5) {
                    1.0
                } else {
                    0.0
                }
            });
            let mut v_top = top.sample_visible(&h.view(), rng);
            for _ in 0..equilibration {
                h = top.sample_hidden(&v_top.view(), rng);
                v_top = top.sample_visible(&h.view(), rng);
            }
            // Directed top-down pass through the remaining layers.
            let mut x = v_top;
            for rbm in self.layers.iter().rev().skip(1) {
                x = rbm.sample_visible(&x.view(), rng);
            }
            out.row_mut(i).assign(&x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn construction_and_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dbn = Dbn::random(&[10, 6, 4], 0.01, &mut rng);
        assert_eq!(dbn.depth(), 2);
        assert_eq!(dbn.input_len(), 10);
        assert_eq!(dbn.output_len(), 4);
        assert_eq!(dbn.layer(0).visible_len(), 10);
        assert_eq!(dbn.layer(1).hidden_len(), 4);
    }

    #[test]
    fn pretrain_improves_first_layer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let data = Array2::from_shape_fn((40, 8), |(i, _)| (i % 2) as f64);
        let mut dbn = Dbn::random(&[8, 4, 3], 0.01, &mut rng);
        let before = crate::exact::mean_log_likelihood(dbn.layer(0), &data);
        dbn.pretrain(&data, &CdTrainer::new(1, 0.1), 10, 40, &mut rng);
        let after = crate::exact::mean_log_likelihood(dbn.layer(0), &data);
        assert!(after > before, "layer-0 LL {before} -> {after}");
    }

    #[test]
    fn transform_is_composition_of_layers() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let dbn = Dbn::random(&[5, 4, 3], 0.3, &mut rng);
        let data = Array2::from_shape_fn((6, 5), |(i, j)| ((i + j) % 2) as f64);
        let manual = {
            let h1 = dbn.layer(0).hidden_probs_batch(&data);
            dbn.layer(1).hidden_probs_batch(&h1)
        };
        assert_eq!(dbn.transform(&data), manual);
        assert_eq!(dbn.transform_partial(&data, 1).dim(), (6, 4));
        assert_eq!(dbn.transform_partial(&data, 0), data);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn from_layers_validates_chaining() {
        let a = Rbm::new(4, 3);
        let b = Rbm::new(5, 2);
        let _ = Dbn::from_layers(vec![a, b]);
    }

    #[test]
    fn generative_sampling_shapes_and_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dbn = Dbn::random(&[7, 5, 3], 0.5, &mut rng);
        let samples = dbn.sample(6, 4, &mut rng);
        assert_eq!(samples.dim(), (6, 7));
        assert!(samples.iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn trained_dbn_generates_data_like_samples() {
        // Two-mode data: generated samples should mostly be near a mode.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let data = Array2::from_shape_fn(
            (60, 8),
            |(i, j)| {
                if (i % 2 == 0) == (j < 4) {
                    1.0
                } else {
                    0.0
                }
            },
        );
        let mut dbn = Dbn::random(&[8, 6], 0.01, &mut rng);
        dbn.pretrain(&data, &CdTrainer::new(1, 0.1), 10, 60, &mut rng);
        let samples = dbn.sample(40, 30, &mut rng);
        // A sample is "near a mode" if at least 6 of 8 pixels agree with
        // one of the two prototypes.
        let near_mode = samples
            .rows()
            .filter(|row| {
                let left: f64 =
                    (0..4).map(|j| row[j]).sum::<f64>() + (4..8).map(|j| 1.0 - row[j]).sum::<f64>();
                let right = 8.0 - left;
                left >= 6.0 || right >= 6.0
            })
            .count();
        assert!(
            near_mode >= 24,
            "only {near_mode}/40 generated samples near a training mode"
        );
    }

    #[test]
    fn features_in_unit_interval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let dbn = Dbn::random(&[6, 5, 4], 1.0, &mut rng);
        let data = Array2::from_shape_fn((8, 6), |(i, j)| ((i * j) % 2) as f64);
        let f = dbn.transform(&data);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
