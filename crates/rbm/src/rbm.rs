use std::error::Error;
use std::fmt;

use ndarray::{Array1, Array2, ArrayView1, Axis};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use ember_ising::BipartiteProblem;

use crate::math::{sigmoid, softplus};

/// Errors produced by RBM construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RbmError {
    /// Supplied arrays had inconsistent dimensions.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violated constraint.
        reason: &'static str,
    },
}

impl fmt::Display for RbmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbmError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            RbmError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for RbmError {}

/// A Restricted Boltzmann Machine (paper Fig. 1, Eq. 3):
/// `m` binary visible units, `n` binary hidden units, bipartite coupling
/// `W (m × n)` and per-unit biases.
///
/// Conventions: data matrices are `(batch, m)` with entries in `{0, 1}`
/// (real-valued entries in `[0, 1]` are treated as Bernoulli means where
/// sampling is involved).
///
/// # Example
///
/// ```
/// use ember_rbm::Rbm;
/// use ndarray::arr1;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let rbm = Rbm::random(4, 2, 0.1, &mut rng);
/// let v = arr1(&[1.0, 0.0, 1.0, 1.0]);
/// let p_h = rbm.hidden_probs(&v.view());
/// assert_eq!(p_h.len(), 2);
/// assert!(p_h.iter().all(|&p| (0.0..=1.0).contains(&p)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rbm {
    weights: Array2<f64>,
    visible_bias: Array1<f64>,
    hidden_bias: Array1<f64>,
}

impl Rbm {
    /// An RBM with all-zero parameters.
    pub fn new(visible: usize, hidden: usize) -> Self {
        Rbm {
            weights: Array2::zeros((visible, hidden)),
            visible_bias: Array1::zeros(visible),
            hidden_bias: Array1::zeros(hidden),
        }
    }

    /// The common initialization: `Wᵢⱼ ~ N(0, std²)`, zero biases
    /// (Algorithm 1 lines 1–3).
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or not finite.
    pub fn random<R: Rng + ?Sized>(visible: usize, hidden: usize, std: f64, rng: &mut R) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "std must be finite and >= 0");
        let mut rbm = Rbm::new(visible, hidden);
        if std > 0.0 {
            let dist = Normal::new(0.0, std).expect("validated std");
            rbm.weights.mapv_inplace(|_| dist.sample(rng));
        }
        rbm
    }

    /// Builds an RBM from explicit parts.
    ///
    /// # Errors
    ///
    /// [`RbmError::DimensionMismatch`] if bias lengths do not match `weights`.
    pub fn from_parts(
        weights: Array2<f64>,
        visible_bias: Array1<f64>,
        hidden_bias: Array1<f64>,
    ) -> Result<Self, RbmError> {
        let (m, n) = weights.dim();
        if visible_bias.len() != m {
            return Err(RbmError::DimensionMismatch {
                expected: m,
                actual: visible_bias.len(),
            });
        }
        if hidden_bias.len() != n {
            return Err(RbmError::DimensionMismatch {
                expected: n,
                actual: hidden_bias.len(),
            });
        }
        Ok(Rbm {
            weights,
            visible_bias,
            hidden_bias,
        })
    }

    /// Number of visible units `m`.
    pub fn visible_len(&self) -> usize {
        self.weights.nrows()
    }

    /// Number of hidden units `n`.
    pub fn hidden_len(&self) -> usize {
        self.weights.ncols()
    }

    /// The weight matrix `W (m × n)`.
    pub fn weights(&self) -> &Array2<f64> {
        &self.weights
    }

    /// Mutable access to the weights (used by hardware-update models).
    pub fn weights_mut(&mut self) -> &mut Array2<f64> {
        &mut self.weights
    }

    /// Visible biases `b_v`.
    pub fn visible_bias(&self) -> &Array1<f64> {
        &self.visible_bias
    }

    /// Mutable visible biases.
    pub fn visible_bias_mut(&mut self) -> &mut Array1<f64> {
        &mut self.visible_bias
    }

    /// Hidden biases `b_h`.
    pub fn hidden_bias(&self) -> &Array1<f64> {
        &self.hidden_bias
    }

    /// Mutable hidden biases.
    pub fn hidden_bias_mut(&mut self) -> &mut Array1<f64> {
        &mut self.hidden_bias
    }

    /// Joint energy `E(v, h)` of Eq. 3.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn energy(&self, v: &ArrayView1<'_, f64>, h: &ArrayView1<'_, f64>) -> f64 {
        assert_eq!(v.len(), self.visible_len(), "visible length");
        assert_eq!(h.len(), self.hidden_len(), "hidden length");
        -v.dot(&self.weights.dot(h)) - self.visible_bias.dot(v) - self.hidden_bias.dot(h)
    }

    /// Free energy `F(v) = −b_vᵀv − Σⱼ softplus(b_hⱼ + (vᵀW)ⱼ)`, so that
    /// `P(v) ∝ e^{−F(v)}`. The standard anomaly score and the quantity AIS
    /// estimates expectations over.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn free_energy(&self, v: &ArrayView1<'_, f64>) -> f64 {
        assert_eq!(v.len(), self.visible_len(), "visible length");
        let act = self.weights.t().dot(v) + &self.hidden_bias;
        -self.visible_bias.dot(v) - act.iter().map(|&x| softplus(x)).sum::<f64>()
    }

    /// Hidden conditional `P(hⱼ = 1 | v) = σ(b_hⱼ + Σᵢ Wᵢⱼ vᵢ)` (Eq. 4).
    pub fn hidden_probs(&self, v: &ArrayView1<'_, f64>) -> Array1<f64> {
        assert_eq!(v.len(), self.visible_len(), "visible length");
        let mut act = self.weights.t().dot(v) + &self.hidden_bias;
        act.mapv_inplace(sigmoid);
        act
    }

    /// Visible conditional `P(vᵢ = 1 | h) = σ(b_vᵢ + Σⱼ Wᵢⱼ hⱼ)` (Eq. 5).
    pub fn visible_probs(&self, h: &ArrayView1<'_, f64>) -> Array1<f64> {
        assert_eq!(h.len(), self.hidden_len(), "hidden length");
        let mut act = self.weights.dot(h) + &self.visible_bias;
        act.mapv_inplace(sigmoid);
        act
    }

    /// Batched hidden conditionals: input `(batch, m)`, output `(batch, n)`.
    pub fn hidden_probs_batch(&self, v: &Array2<f64>) -> Array2<f64> {
        assert_eq!(v.ncols(), self.visible_len(), "visible length");
        let mut act = v.dot(&self.weights);
        for mut row in act.axis_iter_mut(Axis(0)) {
            row += &self.hidden_bias;
        }
        act.mapv_inplace(sigmoid);
        act
    }

    /// Batched visible conditionals: input `(batch, n)`, output `(batch, m)`.
    pub fn visible_probs_batch(&self, h: &Array2<f64>) -> Array2<f64> {
        assert_eq!(h.ncols(), self.hidden_len(), "hidden length");
        let mut act = h.dot(&self.weights.t());
        for mut row in act.axis_iter_mut(Axis(0)) {
            row += &self.visible_bias;
        }
        act.mapv_inplace(sigmoid);
        act
    }

    /// Samples hidden units given visible ones (one Bernoulli draw per
    /// unit): Algorithm 1 line 10.
    pub fn sample_hidden<R: Rng + ?Sized>(
        &self,
        v: &ArrayView1<'_, f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        // One fused pass: same activations, same σ, and one RNG draw per
        // unit in index order — the exact call sequence (and bits) of
        // `hidden_probs` followed by a separate sampling pass.
        assert_eq!(v.len(), self.visible_len(), "visible length");
        let mut act = self.weights.t().dot(v) + &self.hidden_bias;
        act.mapv_inplace(|a| {
            if rng.random::<f64>() < sigmoid(a) {
                1.0
            } else {
                0.0
            }
        });
        act
    }

    /// Samples visible units given hidden ones: Algorithm 1 line 13.
    pub fn sample_visible<R: Rng + ?Sized>(
        &self,
        h: &ArrayView1<'_, f64>,
        rng: &mut R,
    ) -> Array1<f64> {
        // Fused like [`Self::sample_hidden`]: bit-identical to
        // `visible_probs` + a separate Bernoulli pass.
        assert_eq!(h.len(), self.hidden_len(), "hidden length");
        let mut act = self.weights.dot(h) + &self.visible_bias;
        act.mapv_inplace(|a| {
            if rng.random::<f64>() < sigmoid(a) {
                1.0
            } else {
                0.0
            }
        });
        act
    }

    /// Batched Bernoulli sampling of an entire probability matrix.
    pub fn sample_batch<R: Rng + ?Sized>(probs: &Array2<f64>, rng: &mut R) -> Array2<f64> {
        probs.mapv(|p| if rng.random::<f64>() < p { 1.0 } else { 0.0 })
    }

    /// One-step reconstruction error: mean fraction of visible units that
    /// differ after `v → h → v'` with sampled `h` and thresholded `v'`.
    pub fn reconstruction_error<R: Rng + ?Sized>(&self, data: &Array2<f64>, rng: &mut R) -> f64 {
        assert_eq!(data.ncols(), self.visible_len(), "visible length");
        let mut total = 0.0;
        for v in data.axis_iter(Axis(0)) {
            let h = self.sample_hidden(&v, rng);
            let recon = self.visible_probs(&h.view());
            let diff: f64 = v
                .iter()
                .zip(recon.iter())
                .map(|(&a, &b)| if (a >= 0.5) != (b >= 0.5) { 1.0 } else { 0.0 })
                .sum();
            total += diff / self.visible_len() as f64;
        }
        total / data.nrows() as f64
    }

    /// Converts to the bipartite Ising layout the substrate is programmed
    /// with (§3.1) — the weights and biases map across unchanged; only the
    /// variable domain (bits vs spins) differs, handled by
    /// [`BipartiteProblem::to_ising`].
    pub fn to_bipartite(&self) -> BipartiteProblem {
        BipartiteProblem::new(
            self.weights.clone(),
            self.visible_bias.clone(),
            self.hidden_bias.clone(),
        )
        .expect("RBM dimensions are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2};
    use rand::SeedableRng;

    fn tiny() -> Rbm {
        Rbm::from_parts(
            arr2(&[[1.0, -0.5], [0.25, 2.0], [-1.0, 0.5]]),
            arr1(&[0.1, -0.2, 0.3]),
            arr1(&[0.4, -0.6]),
        )
        .unwrap()
    }

    #[test]
    fn energy_matches_manual() {
        let rbm = tiny();
        let v = arr1(&[1.0, 0.0, 1.0]);
        let h = arr1(&[1.0, 1.0]);
        // -vWh = -( (1)(1)+( -0.5)(1) + (-1)(1)+(0.5)(1) ) = -(0.5 + -0.5) = 0
        // -bv·v = -(0.1+0.3) = -0.4 ; -bh·h = -(0.4-0.6) = 0.2
        assert!((rbm.energy(&v.view(), &h.view()) - (-0.2)).abs() < 1e-12);
    }

    #[test]
    fn free_energy_marginalizes_hidden() {
        // e^{-F(v)} must equal Σ_h e^{-E(v,h)}.
        let rbm = tiny();
        let v = arr1(&[1.0, 1.0, 0.0]);
        let mut sum = 0.0;
        for code in 0u8..4 {
            let h = arr1(&[(code & 1) as f64, ((code >> 1) & 1) as f64]);
            sum += (-rbm.energy(&v.view(), &h.view())).exp();
        }
        assert!(((-rbm.free_energy(&v.view())).exp() - sum).abs() < 1e-9);
    }

    #[test]
    fn conditionals_match_formulas() {
        let rbm = tiny();
        let v = arr1(&[1.0, 0.0, 1.0]);
        let p = rbm.hidden_probs(&v.view());
        let expected0 = sigmoid(0.4 + 1.0 - 1.0);
        let expected1 = sigmoid(-0.6 - 0.5 + 0.5);
        assert!((p[0] - expected0).abs() < 1e-12);
        assert!((p[1] - expected1).abs() < 1e-12);

        let h = arr1(&[0.0, 1.0]);
        let q = rbm.visible_probs(&h.view());
        assert!((q[0] - sigmoid(0.1 - 0.5)).abs() < 1e-12);
        assert!((q[1] - sigmoid(-0.2 + 2.0)).abs() < 1e-12);
        assert!((q[2] - sigmoid(0.3 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn batch_matches_single() {
        let rbm = tiny();
        let batch = arr2(&[[1.0, 0.0, 1.0], [0.0, 1.0, 1.0]]);
        let probs = rbm.hidden_probs_batch(&batch);
        for (i, v) in batch.axis_iter(Axis(0)).enumerate() {
            let single = rbm.hidden_probs(&v);
            for j in 0..2 {
                assert!((probs[[i, j]] - single[j]).abs() < 1e-12);
            }
        }
        let hbatch = arr2(&[[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]);
        let probs = rbm.visible_probs_batch(&hbatch);
        for (i, h) in hbatch.axis_iter(Axis(0)).enumerate() {
            let single = rbm.visible_probs(&h);
            for j in 0..3 {
                assert!((probs[[i, j]] - single[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sampling_respects_extreme_probs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rbm =
            Rbm::from_parts(arr2(&[[50.0], [-50.0]]), arr1(&[0.0, 0.0]), arr1(&[0.0])).unwrap();
        let v = arr1(&[1.0, 0.0]);
        for _ in 0..20 {
            let h = rbm.sample_hidden(&v.view(), &mut rng);
            assert_eq!(h[0], 1.0);
        }
    }

    #[test]
    fn random_init_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let rbm = Rbm::random(50, 40, 0.01, &mut rng);
        let w = rbm.weights();
        let mean = w.mean().unwrap();
        let std = w.std(0.0);
        assert!(mean.abs() < 0.002, "mean {mean}");
        assert!((std - 0.01).abs() < 0.002, "std {std}");
        assert!(rbm.visible_bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn from_parts_validates_dims() {
        let err =
            Rbm::from_parts(Array2::zeros((2, 3)), Array1::zeros(5), Array1::zeros(3)).unwrap_err();
        assert!(matches!(
            err,
            RbmError::DimensionMismatch {
                expected: 2,
                actual: 5
            }
        ));
    }

    #[test]
    fn bipartite_conversion_shares_energy() {
        let rbm = tiny();
        let bp = rbm.to_bipartite();
        let v = [true, false, true];
        let h = [false, true];
        let va = arr1(&[1.0, 0.0, 1.0]);
        let ha = arr1(&[0.0, 1.0]);
        assert!((bp.energy_bits(&v, &h) - rbm.energy(&va.view(), &ha.view())).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_error_zero_for_strong_autoencoder() {
        // Identity-ish RBM: huge diagonal weights reproduce the input.
        let mut w = Array2::zeros((4, 4));
        for i in 0..4 {
            w[[i, i]] = 60.0;
        }
        let rbm =
            Rbm::from_parts(w, Array1::from_elem(4, -30.0), Array1::from_elem(4, -30.0)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data = arr2(&[[1.0, 0.0, 1.0, 0.0], [0.0, 1.0, 0.0, 1.0]]);
        assert!(rbm.reconstruction_error(&data, &mut rng) < 1e-9);
    }
}
