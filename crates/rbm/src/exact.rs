//! Exact (enumeration-based) quantities for small RBMs: partition function,
//! log-likelihood and the full visible distribution.
//!
//! These are the ground-truth references for validating AIS (§4.1) and for
//! the Appendix A bias study (12 visible × 4 hidden units, where
//! enumeration over 2¹² states is cheap). Enumeration always happens over
//! the *smaller* side of the machine, using the analytic marginalization
//! over the other side:
//!
//! ```text
//! Z = Σ_v e^{b_v·v} Π_j (1 + e^{b_h_j + (vᵀW)_j})
//!   = Σ_h e^{b_h·h} Π_i (1 + e^{b_v_i + (Wh)_i})
//! ```

use ndarray::{Array1, ArrayView1, Axis};

use crate::math::{logsumexp, softplus};
use crate::Rbm;

/// Hard cap on the enumerated side to keep runtimes sane.
const MAX_ENUM_BITS: usize = 24;

/// Exact log partition function `log Z`, enumerating the smaller side.
///
/// # Panics
///
/// Panics if `min(m, n) > 24`.
pub fn log_partition(rbm: &Rbm) -> f64 {
    let m = rbm.visible_len();
    let n = rbm.hidden_len();
    if m <= n {
        assert!(m <= MAX_ENUM_BITS, "visible side too large to enumerate");
        let terms: Vec<f64> = (0u64..(1 << m))
            .map(|code| {
                let v = bits_to_array(code, m);
                -rbm.free_energy(&v.view())
            })
            .collect();
        logsumexp(&terms)
    } else {
        assert!(n <= MAX_ENUM_BITS, "hidden side too large to enumerate");
        let terms: Vec<f64> = (0u64..(1 << n))
            .map(|code| {
                let h = bits_to_array(code, n);
                -hidden_free_energy(rbm, &h.view())
            })
            .collect();
        logsumexp(&terms)
    }
}

/// The hidden-side free energy `F(h)` such that `P(h) ∝ e^{−F(h)}`
/// (dual of [`Rbm::free_energy`]).
pub fn hidden_free_energy(rbm: &Rbm, h: &ArrayView1<'_, f64>) -> f64 {
    assert_eq!(h.len(), rbm.hidden_len(), "hidden length");
    let act = rbm.weights().dot(h) + rbm.visible_bias();
    -rbm.hidden_bias().dot(h) - act.iter().map(|&x| softplus(x)).sum::<f64>()
}

/// Exact mean log-likelihood of a dataset (rows are visible vectors):
/// `(1/T) Σ_t [−F(v⁽ᵗ⁾)] − log Z`.
///
/// This is the "average log probability of the training samples" metric of
/// Fig. 7, computed exactly instead of via AIS.
///
/// # Panics
///
/// Panics if the model is too large to enumerate (see [`log_partition`]).
pub fn mean_log_likelihood(rbm: &Rbm, data: &ndarray::Array2<f64>) -> f64 {
    let log_z = log_partition(rbm);
    let total: f64 = data
        .axis_iter(Axis(0))
        .map(|v| -rbm.free_energy(&v) - log_z)
        .sum();
    total / data.nrows() as f64
}

/// Exact marginal distribution `P(v)` over all `2^m` visible states,
/// indexed by the little-endian bit code of `v`.
///
/// # Panics
///
/// Panics if `m > 24`.
pub fn visible_distribution(rbm: &Rbm) -> Array1<f64> {
    let m = rbm.visible_len();
    assert!(m <= MAX_ENUM_BITS, "visible side too large to enumerate");
    let log_z = log_partition(rbm);
    Array1::from_iter((0u64..(1 << m)).map(|code| {
        let v = bits_to_array(code, m);
        (-rbm.free_energy(&v.view()) - log_z).exp()
    }))
}

/// Decodes a little-endian bit code into a `0.0/1.0` vector.
pub fn bits_to_array(code: u64, len: usize) -> Array1<f64> {
    Array1::from_iter((0..len).map(|b| ((code >> b) & 1) as f64))
}

/// Encodes a `0.0/1.0` vector into its little-endian bit code.
///
/// # Panics
///
/// Panics if `v.len() > 63`.
pub fn array_to_bits(v: &ArrayView1<'_, f64>) -> u64 {
    assert!(v.len() <= 63, "too many bits for a u64 code");
    v.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &x)| acc | (((x >= 0.5) as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2, Array2};
    use rand::SeedableRng;

    #[test]
    fn partition_same_from_both_sides() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let rbm = Rbm::random(4, 6, 0.7, &mut rng);
        // Force both enumeration paths and compare.
        let via_visible = {
            let terms: Vec<f64> = (0u64..(1 << 4))
                .map(|code| {
                    let v = bits_to_array(code, 4);
                    -rbm.free_energy(&v.view())
                })
                .collect();
            logsumexp(&terms)
        };
        let via_hidden = {
            let terms: Vec<f64> = (0u64..(1 << 6))
                .map(|code| {
                    let h = bits_to_array(code, 6);
                    -hidden_free_energy(&rbm, &h.view())
                })
                .collect();
            logsumexp(&terms)
        };
        assert!((via_visible - via_hidden).abs() < 1e-9);
        assert!((log_partition(&rbm) - via_visible).abs() < 1e-9);
    }

    #[test]
    fn partition_matches_joint_enumeration() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let rbm = Rbm::random(3, 3, 1.0, &mut rng);
        let mut terms = Vec::new();
        for vc in 0u64..8 {
            for hc in 0u64..8 {
                let v = bits_to_array(vc, 3);
                let h = bits_to_array(hc, 3);
                terms.push(-rbm.energy(&v.view(), &h.view()));
            }
        }
        assert!((log_partition(&rbm) - logsumexp(&terms)).abs() < 1e-9);
    }

    #[test]
    fn visible_distribution_sums_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let rbm = Rbm::random(5, 3, 0.9, &mut rng);
        let p = visible_distribution(&rbm);
        assert_eq!(p.len(), 32);
        assert!((p.sum() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn zero_model_is_uniform() {
        let rbm = Rbm::new(4, 2);
        let p = visible_distribution(&rbm);
        for &prob in p.iter() {
            assert!((prob - 1.0 / 16.0).abs() < 1e-12);
        }
        // log Z of the zero model: 2^(m+n) states each weight 1.
        assert!((log_partition(&rbm) - (6.0 * std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn log_likelihood_of_point_mass_model() {
        // A model with big biases concentrates mass; its LL on matching
        // data should beat the uniform model's -m·ln2.
        let rbm =
            Rbm::from_parts(Array2::zeros((3, 1)), arr1(&[5.0, 5.0, -5.0]), arr1(&[0.0])).unwrap();
        let data = arr2(&[[1.0, 1.0, 0.0]]);
        let ll = mean_log_likelihood(&rbm, &data);
        let uniform = Rbm::new(3, 1);
        let ll_uniform = mean_log_likelihood(&uniform, &data);
        assert!(ll > ll_uniform);
        assert!((ll_uniform - (-3.0 * std::f64::consts::LN_2)).abs() < 1e-9);
    }

    #[test]
    fn bit_roundtrip() {
        for code in [0u64, 1, 5, 12, 31] {
            let arr = bits_to_array(code, 5);
            assert_eq!(array_to_bits(&arr.view()), code);
        }
    }
}
