//! Loopback integration tests of the HTTP edge — the issue's
//! acceptance bars, each pinned:
//!
//! * HTTP-served samples bit-identical to in-process
//!   `SamplingService::sample` for the same seed, at 1/2/8 shards;
//! * binary wire ≥ 50× smaller than the served JSON encoding at 784
//!   visible units;
//! * `429` carries `Retry-After`;
//! * shutdown drains in-flight HTTP requests.

use std::time::Duration;

use ember_core::{GsConfig, SubstrateSpec};
use ember_http::{Client, ClientError, SampleOptions, Server};
use ember_rbm::Rbm;
use ember_serve::{SampleRequest, SamplingService};
use ndarray::Array1;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic model + prototype pair: every call with the same
/// `fab_seed` realizes the identical fabricated machine, so a service
/// behind HTTP and a reference service in-process sample the same bits.
fn fixture(
    m: usize,
    n: usize,
    fab_seed: u64,
) -> (Rbm, Box<dyn ember_substrate::ReplicableSubstrate>) {
    let mut rng = StdRng::seed_from_u64(fab_seed);
    let rbm = Rbm::random(m, n, 0.4, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate(m, n, &mut rng);
    (rbm, proto)
}

fn service_at(shards: usize, fab_seed: u64, m: usize, n: usize) -> SamplingService {
    let (rbm, proto) = fixture(m, n, fab_seed);
    let service = SamplingService::builder().shards(shards).build();
    service.register_model("m", rbm, proto).unwrap();
    service
}

#[test]
fn http_sampling_is_bit_identical_to_in_process_at_1_2_8_shards() {
    let (m, n) = (23, 9);
    let clamp: Vec<f64> = (0..m).map(|i| f64::from(i % 3 == 0)).collect();
    for &shards in &[1usize, 2, 8] {
        // Reference: the in-process path on an identically fabricated
        // service.
        let reference = service_at(shards, 0xFAB, m, n);
        let expected = reference
            .sample(
                SampleRequest::new("m")
                    .with_samples(6)
                    .with_gibbs_steps(3)
                    .with_clamp(Array1::from_vec(clamp.clone()))
                    .with_seed(0xBEEF),
            )
            .unwrap();

        // Same request over loopback HTTP, both encodings.
        let server = Server::start("127.0.0.1:0", service_at(shards, 0xFAB, m, n)).unwrap();
        let client = Client::new(server.addr());
        let options = SampleOptions::new()
            .samples(6)
            .gibbs_steps(3)
            .clamp(clamp.clone())
            .seed(0xBEEF);

        let binary = client.sample_binary("m", &options).unwrap();
        assert_eq!(
            binary.to_dense(),
            expected.samples,
            "binary wire differs from in-process at {shards} shard(s)"
        );
        assert_eq!(binary.model_version(), expected.model_version);
        assert!(!binary.degraded());

        let json = client.sample_json("m", &options).unwrap();
        let json_dense = ndarray::Array2::from_shape_vec(
            (json.reply.samples.len(), m),
            json.reply.samples.iter().flatten().copied().collect(),
        )
        .unwrap();
        assert_eq!(
            json_dense, expected.samples,
            "JSON encoding differs from in-process at {shards} shard(s)"
        );
        server.shutdown(Duration::from_secs(10));
    }
}

#[test]
fn binary_clamp_upload_matches_json_clamp() {
    let (m, n) = (65, 7); // clamp straddles a word boundary
    let clamp: Vec<f64> = (0..m).map(|i| f64::from(i % 2 == 0)).collect();
    let server = Server::start("127.0.0.1:0", service_at(2, 5, m, n)).unwrap();
    let client = Client::new(server.addr());
    let base = SampleOptions::new()
        .samples(3)
        .gibbs_steps(2)
        .clamp(clamp)
        .seed(77);
    let via_json_clamp = client.sample_binary("m", &base).unwrap();
    let via_binary_clamp = client
        .sample_binary("m", &base.clone().binary_clamp(true))
        .unwrap();
    assert_eq!(
        via_binary_clamp.to_dense(),
        via_json_clamp.to_dense(),
        "the clamp's encoding must be invisible in the sampled bits"
    );
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn binary_wire_is_50x_smaller_than_json_at_784_cols() {
    // The issue's headline economics: at MNIST width the bit-packed
    // wire (24-byte header + 98 payload bytes/row) must beat the served
    // JSON encoding by ≥ 50×. The JSON fallback is pretty-printed by
    // design — it is the human/debug encoding; this test measures the
    // bytes each encoding actually puts on the wire.
    let (m, n) = (784, 16);
    let server = Server::start("127.0.0.1:0", service_at(2, 9, m, n)).unwrap();
    let client = Client::new(server.addr());
    let options = SampleOptions::new().samples(4).seed(1);

    let binary = client.sample_binary("m", &options).unwrap();
    let json = client.sample_json("m", &options).unwrap();
    assert_eq!(binary.samples.header.cols, 784);
    assert_eq!(binary.body_bytes, 24 + 4 * (784usize.div_ceil(64)) * 8);
    let ratio = json.body_bytes as f64 / binary.body_bytes as f64;
    assert!(
        ratio >= 50.0,
        "binary must be ≥50x smaller: json {} / binary {} = {ratio:.1}x",
        json.body_bytes,
        binary.body_bytes
    );
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn queue_full_is_429_with_honored_retry_after() {
    // One shard pinned by a slow request + a 2-row queue: flooding over
    // HTTP must surface at least one 429, carrying both Retry-After
    // forms.
    let (rbm, proto) = fixture(64, 32, 11);
    let service = SamplingService::builder().shards(1).queue_rows(2).build();
    service.register_model("m", rbm, proto).unwrap();
    let server = Server::start_with_workers("127.0.0.1:0", service, 16).unwrap();
    let client = Client::new(server.addr());

    // Pin the shard from a background thread (400 Gibbs steps on a
    // 64x32 model holds it for a while).
    let slow_client = client.clone();
    let slow = std::thread::spawn(move || {
        slow_client.sample_binary("m", &SampleOptions::new().gibbs_steps(400).seed(0))
    });
    // Give the pin time to reach the shard, then flood concurrently:
    // 10 more slow requests against a 2-row queue must surface 429s.
    std::thread::sleep(Duration::from_millis(50));
    let floods: Vec<_> = (0..10)
        .map(|i| {
            let c = client.clone();
            std::thread::spawn(move || {
                c.sample_binary("m", &SampleOptions::new().gibbs_steps(400).seed(1 + i))
            })
        })
        .collect();
    let mut rejection = None;
    for flood in floods {
        match flood.join().unwrap() {
            Ok(_) => {}
            Err(e @ ClientError::Http { status: 429, .. }) => rejection = Some(e),
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let rejection = rejection.expect("a 2-row queue must fill under a pinned shard");
    let retry_after = rejection.retry_after().expect("429 must carry Retry-After");
    assert!(
        retry_after >= Duration::from_micros(100),
        "retry hint must be a usable pause, got {retry_after:?}"
    );
    match &rejection {
        ClientError::Http { code, .. } => assert_eq!(code, "queue_full"),
        other => panic!("unexpected error shape: {other}"),
    }

    // Honor the hint, then retry until the backlog drains: the retried
    // request must eventually succeed.
    std::thread::sleep(retry_after);
    let mut retried = None;
    for _ in 0..100 {
        match client.sample_binary("m", &SampleOptions::new().gibbs_steps(1).seed(999)) {
            Ok(ok) => {
                retried = Some(ok);
                break;
            }
            Err(ClientError::Http { status: 429, .. }) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        retried.is_some(),
        "honored Retry-After must eventually serve"
    );
    slow.join().unwrap().unwrap();
    server.shutdown(Duration::from_secs(30));
}

#[test]
fn shutdown_drains_in_flight_http_requests() {
    let server = Server::start("127.0.0.1:0", service_at(2, 13, 64, 32)).unwrap();
    let client = Client::new(server.addr());

    // A request slow enough to still be executing when shutdown begins.
    let slow_client = client.clone();
    let slow = std::thread::spawn(move || {
        slow_client.sample_binary("m", &SampleOptions::new().gibbs_steps(300).seed(3))
    });
    // Give the request time to reach the shard.
    std::thread::sleep(Duration::from_millis(50));

    let report = server.shutdown(Duration::from_secs(60));
    assert!(
        report.connections_drained,
        "in-flight HTTP connections must finish within the deadline"
    );
    assert!(report.service.drained, "service queue must drain");
    assert_eq!(report.service.aborted_requests, 0);

    // The in-flight request got its real answer, not a slammed socket.
    let response = slow.join().unwrap().expect("drained request completes");
    assert_eq!(response.samples.header.rows, 1);

    // The edge is gone: connecting now fails.
    assert!(std::net::TcpStream::connect(client.addr()).is_err());
}

#[test]
fn deadline_header_maps_to_504() {
    // A 0 ms budget expires before any shard can pick the request up.
    let server = Server::start("127.0.0.1:0", service_at(1, 17, 32, 8)).unwrap();
    let client = Client::new(server.addr());
    let err = client
        .sample_binary(
            "m",
            &SampleOptions::new()
                .gibbs_steps(50)
                .seed(1)
                .timeout(Duration::from_millis(0)),
        )
        .unwrap_err();
    match err {
        ClientError::Http { status, code, .. } => {
            assert_eq!(status, 504);
            assert_eq!(code, "deadline_exceeded");
        }
        other => panic!("unexpected error: {other}"),
    }
    server.shutdown(Duration::from_secs(10));
}

#[test]
fn error_taxonomy_maps_to_status_codes() {
    let server = Server::start("127.0.0.1:0", service_at(1, 19, 12, 4)).unwrap();
    let client = Client::new(server.addr());

    // Unknown model → 404.
    let err = client
        .sample_binary("ghost", &SampleOptions::new())
        .unwrap_err();
    assert_eq!(err.status(), Some(404));

    // Invalid request (wrong clamp width) → 400.
    let err = client
        .sample_binary("m", &SampleOptions::new().clamp(vec![1.0; 5]))
        .unwrap_err();
    assert_eq!(err.status(), Some(400));

    // Unknown route → 404; bad JSON → 400.
    let health = client.health().unwrap();
    assert_eq!(health.status, "ok");
    assert_eq!(health.shards, 1);

    let models = client.models().unwrap();
    assert_eq!(models.models.len(), 1);
    assert_eq!(models.models[0].name, "m");
    assert_eq!(models.models[0].visible, 12);
    assert_eq!(models.models[0].hidden, 4);
    assert_eq!(models.models[0].version, 1);

    server.shutdown(Duration::from_secs(10));
}

#[test]
fn priority_header_rides_the_wire_without_touching_the_bits() {
    let (m, n) = (23, 9);
    let server = Server::start("127.0.0.1:0", service_at(1, 29, m, n)).unwrap();
    let client = Client::new(server.addr());

    // The same seeded request at both priorities: `X-Ember-Priority`
    // may reorder scheduling but must be invisible in the sampled bits.
    let base = SampleOptions::new().samples(4).gibbs_steps(3).seed(0xABCD);
    let interactive = client
        .sample_binary(
            "m",
            &base.clone().priority(ember_serve::Priority::Interactive),
        )
        .unwrap();
    let bulk = client
        .sample_binary("m", &base.clone().priority(ember_serve::Priority::Bulk))
        .unwrap();
    let unlabeled = client.sample_binary("m", &base).unwrap();
    assert_eq!(interactive.to_dense(), bulk.to_dense());
    assert_eq!(interactive.to_dense(), unlabeled.to_dense());

    server.shutdown(Duration::from_secs(10));
}

#[test]
fn admission_rejection_maps_to_429_overloaded_with_hints() {
    // Before any row is served the admission estimate is 1 ms/row: 64
    // rows against a 5 ms deadline are provably late, refused at
    // enqueue, and surface as `429 overloaded` with both Retry-After
    // forms — distinct from 504, which stays reserved for deadlines
    // that expire while queued.
    let server = Server::start("127.0.0.1:0", service_at(1, 31, 32, 8)).unwrap();
    let client = Client::new(server.addr());
    let err = client
        .sample_binary(
            "m",
            &SampleOptions::new()
                .samples(64)
                .gibbs_steps(1)
                .seed(1)
                .timeout(Duration::from_millis(5)),
        )
        .unwrap_err();
    match &err {
        ClientError::Http { status, code, .. } => {
            assert_eq!(*status, 429);
            assert_eq!(code, "overloaded");
        }
        other => panic!("unexpected error: {other}"),
    }
    let retry_after = err.retry_after().expect("429 overloaded carries hints");
    assert!(retry_after >= Duration::from_micros(100));

    // Nothing reached a shard; the rejection was at admission.
    let stats = client.stats().unwrap();
    assert_eq!(stats.admission_rejected, 1);
    assert_eq!(stats.total_shed_requests(), 0);

    server.shutdown(Duration::from_secs(10));
}

#[test]
fn stats_endpoint_serves_latency_histograms() {
    let server = Server::start("127.0.0.1:0", service_at(2, 37, 23, 9)).unwrap();
    let client = Client::new(server.addr());
    for seed in 0..5u64 {
        client
            .sample_binary("m", &SampleOptions::new().gibbs_steps(2).seed(seed))
            .unwrap();
    }

    // The merged histogram rides the typed `/v1/stats` snapshot: one
    // recording per accepted request, quantiles ordered and non-zero.
    let stats = client.stats().unwrap();
    let latency = stats.latency();
    assert_eq!(latency.count(), 5);
    assert!(latency.p50() > Duration::ZERO);
    assert!(latency.p99() >= latency.p50());
    assert!(latency.max() >= latency.p999());

    server.shutdown(Duration::from_secs(10));
}

#[test]
fn train_over_http_publishes_a_version_sampled_by_later_requests() {
    let (m, _n) = (12, 4);
    let server = Server::start("127.0.0.1:0", service_at(2, 23, 12, 4)).unwrap();
    let client = Client::new(server.addr());

    let before = client
        .sample_binary("m", &SampleOptions::new().seed(1))
        .unwrap();
    assert_eq!(before.model_version(), 1);

    let mut rng = StdRng::seed_from_u64(42);
    let data = ndarray::Array2::from_shape_fn((20, m), |_| {
        f64::from(rand::Rng::random_bool(&mut rng, 0.5))
    });
    let reply = client.train("m", &data, 2, 7).unwrap();
    assert_eq!(reply.new_version, 2);
    assert!(reply.batches >= 1);
    assert!(reply.reconstruction_error.is_finite());

    let after = client
        .sample_binary("m", &SampleOptions::new().seed(1))
        .unwrap();
    assert_eq!(
        after.model_version(),
        2,
        "post-train samples must come from the published version"
    );

    // The stats endpoint round-trips the typed snapshot.
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards.len(), 2);
    assert!(stats.models.contains_key("m"));
    assert_eq!(stats.models["m"].train_requests, 1);
    assert!(stats.total_rows() >= 2);

    server.shutdown(Duration::from_secs(10));
}
