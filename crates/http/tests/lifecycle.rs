//! Durable-lifecycle and hardening integration tests of the HTTP edge:
//! rollback and admin snapshots over loopback, slowloris cut-off with
//! `408`, the request-body ceiling answered `413`, and the client's
//! seeded retry helper against a scripted raw-TCP server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ember_core::{GsConfig, RetryPolicy, SubstrateSpec};
use ember_http::{Client, ClientError, SampleOptions, Server, ServerConfig};
use ember_rbm::Rbm;
use ember_serve::{ModelRegistry, SamplingService};
use ember_store::{DaemonConfig, MemDir, SnapshotDaemon, SnapshotStore};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rbm(m: usize, n: usize, seed: u64) -> Rbm {
    let mut rng = StdRng::seed_from_u64(seed);
    Rbm::random(m, n, 0.3, &mut rng)
}

fn prototype(m: usize, n: usize) -> Box<dyn ember_substrate::ReplicableSubstrate> {
    let mut rng = StdRng::seed_from_u64(0xFAB);
    SubstrateSpec::software(GsConfig::default()).fabricate(m, n, &mut rng)
}

/// The tentpole over the wire: publish v1/v2, roll back to v1 through
/// `POST /v1/models/{name}/rollback`, seal a snapshot through
/// `POST /v1/admin/snapshot`, and prove the rolled-back parameters are
/// what both the serving path and the durable store now hold.
#[test]
fn rollback_and_snapshot_round_trip_over_http() {
    let (m, n) = (19, 7);
    let registry = ModelRegistry::new();
    registry.register("m", rbm(m, n, 1)).unwrap();
    registry.publish("m", rbm(m, n, 2)).unwrap();

    let service = SamplingService::builder()
        .shards(2)
        .registry(registry.clone())
        .build();
    service.provision_model("m", prototype(m, n)).unwrap();

    let store = SnapshotStore::new(MemDir::new()).unwrap();
    let daemon = SnapshotDaemon::start(store.clone(), registry, DaemonConfig::default());
    let server = Server::start_with_config(
        "127.0.0.1:0",
        service,
        ServerConfig::default().with_persistence(Arc::new(daemon)),
    )
    .unwrap();
    let client = Client::new(server.addr());

    // Roll back to v1: versions only move forward, so v1's parameters
    // come back as v3.
    let reply = client.rollback("m", 1).unwrap();
    assert_eq!(reply.rolled_back_to, 1);
    assert_eq!(reply.new_version, 3);
    let listed = &client.models().unwrap().models[0];
    assert_eq!((listed.version, listed.visible, listed.hidden), (3, m, n));

    // The serving path now samples v1's parameters: a fresh reference
    // service holding only the v1 model draws identical bits.
    let options = SampleOptions::new().samples(5).gibbs_steps(2).seed(0xBEEF);
    let rolled = client.sample_binary("m", &options).unwrap();
    assert_eq!(rolled.model_version(), 3);
    let reference = SamplingService::builder().shards(2).build();
    reference
        .register_model("m", rbm(m, n, 1), prototype(m, n))
        .unwrap();
    let ref_server = Server::start("127.0.0.1:0", reference).unwrap();
    let expected = Client::new(ref_server.addr())
        .sample_binary("m", &options)
        .unwrap();
    assert_eq!(
        rolled.to_dense(),
        expected.to_dense(),
        "post-rollback samples must be v1's bits"
    );

    // An operator-sealed snapshot captures the rolled-back state.
    let snap = client.snapshot().unwrap();
    assert_eq!(snap.models, 1);
    assert!(snap.bytes > 0 && !snap.file.is_empty());
    let (restored, _) = store.restore_latest().unwrap();
    let current = restored.get("m").unwrap();
    assert_eq!(current.version, 3);
    assert_eq!(
        *current.rbm,
        rbm(m, n, 1),
        "the store holds v1's parameters"
    );

    // A version that was never published is a typed 404.
    let err = client.rollback("m", 99).unwrap_err();
    assert_eq!(err.status(), Some(404));
    let ClientError::Http { code, .. } = err else {
        panic!("expected HTTP error");
    };
    assert_eq!(code, "version_not_found");
}

/// Without a store attached, the admin route refuses rather than 404s —
/// the operator learns persistence is off, not that the path is wrong.
#[test]
fn admin_snapshot_without_persistence_is_a_typed_503() {
    let service = SamplingService::builder().shards(1).build();
    let server = Server::start("127.0.0.1:0", service).unwrap();
    let err = Client::new(server.addr()).snapshot().unwrap_err();
    assert_eq!(err.status(), Some(503));
    let ClientError::Http { code, .. } = err else {
        panic!("expected HTTP error");
    };
    assert_eq!(code, "no_persistence");
}

/// A slowloris peer — connected, trickling nothing — is answered `408`
/// and disconnected instead of pinning a worker until it pleases.
#[test]
fn stalled_request_is_cut_off_with_408() {
    let service = SamplingService::builder().shards(1).build();
    let server = Server::start_with_config(
        "127.0.0.1:0",
        service,
        ServerConfig::default().with_workers(2).with_timeouts(
            Some(Duration::from_millis(50)),
            Some(Duration::from_secs(1)),
        ),
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(b"POST /v1/models/m/sample HTT").unwrap(); // ... and stall
    let start = Instant::now();
    let mut answer = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.read_to_string(&mut answer).unwrap();
    assert!(
        answer.starts_with("HTTP/1.1 408"),
        "stalled connection must die as 408, got {answer:?}"
    );
    assert!(answer.contains("request_timeout"));
    assert!(
        start.elapsed() < Duration::from_secs(4),
        "the guard must fire at the configured timeout, not at the transport's mercy"
    );
}

/// A `Content-Length` above the configured ceiling is refused with
/// `413` before any body byte is buffered.
#[test]
fn oversized_body_is_refused_with_413() {
    let service = SamplingService::builder().shards(1).build();
    let server = Server::start_with_config(
        "127.0.0.1:0",
        service,
        ServerConfig::default().with_max_body(64),
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let body = vec![b'x'; 1000];
    let head = format!(
        "POST /v1/models/m/sample HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    let _ = stream.write_all(&body); // the server may hang up first
    let mut answer = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let _ = stream.read_to_string(&mut answer);
    assert!(
        answer.starts_with("HTTP/1.1 413"),
        "oversized declaration must die as 413, got {answer:?}"
    );
}

/// One scripted response: `(status, headers, body)`.
type ScriptedResponse = (u16, Vec<(String, String)>, String);

/// A raw scripted one-response-per-connection server: answers each
/// accepted connection with the next `(status, headers, body)` in the
/// script, then exits. The join handle yields connections served.
fn scripted_server(script: Vec<ScriptedResponse>) -> (SocketAddr, JoinHandle<usize>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut served = 0;
        for (status, headers, body) in script {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut content_length = 0usize;
            let mut line = String::new();
            loop {
                line.clear();
                reader.read_line(&mut line).unwrap();
                let trimmed = line.trim_end();
                if trimmed.is_empty() {
                    break;
                }
                if let Some(raw) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = raw.trim().parse().unwrap_or(0);
                }
            }
            let mut drained = vec![0u8; content_length];
            reader.read_exact(&mut drained).unwrap();
            let mut answer = format!("HTTP/1.1 {status} Scripted\r\n");
            for (name, value) in &headers {
                answer.push_str(&format!("{name}: {value}\r\n"));
            }
            answer.push_str(&format!(
                "Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            ));
            let mut stream = stream;
            stream.write_all(answer.as_bytes()).unwrap();
            served += 1;
        }
        served
    });
    (addr, handle)
}

fn error_body(code: &str) -> String {
    format!("{{\"code\": \"{code}\", \"error\": \"scripted\"}}")
}

/// `429` answers are retried on every request kind, and the server's
/// exact `X-Ember-Retry-After-Ms` hint is a lower bound on the pause.
#[test]
fn retry_honors_backpressure_hints_on_429() {
    let hint_ms = 40u64;
    let (addr, handle) = scripted_server(vec![
        (
            429,
            vec![
                ("Retry-After".into(), "1".into()),
                ("X-Ember-Retry-After-Ms".into(), hint_ms.to_string()),
            ],
            error_body("queue_full"),
        ),
        (
            200,
            vec![("Content-Type".into(), "application/json".into())],
            "{\"status\": \"ok\", \"shards\": 1}".into(),
        ),
    ]);
    let client = Client::new(addr).with_retry(
        RetryPolicy::default().with_max_retries(3).with_backoff(
            Duration::from_millis(1),
            2.0,
            Duration::from_millis(100),
        ),
        0x5EED,
    );
    let start = Instant::now();
    let health = client.health().unwrap();
    assert_eq!(health.status, "ok");
    assert!(
        start.elapsed() >= Duration::from_millis(hint_ms),
        "the server's {hint_ms} ms hint must floor the pause, got {:?}",
        start.elapsed()
    );
    assert_eq!(handle.join().unwrap(), 2, "exactly one retry");
}

/// Transient `503`s are retried on idempotent requests (reads, seeded
/// sampling) until the budget runs out.
#[test]
fn idempotent_requests_retry_transient_503s() {
    let (addr, handle) = scripted_server(vec![
        (503, vec![], error_body("shard_restarted")),
        (503, vec![], error_body("shard_restarted")),
        (
            200,
            vec![("Content-Type".into(), "application/json".into())],
            "{\"status\": \"ok\", \"shards\": 2}".into(),
        ),
    ]);
    let client = Client::new(addr).with_retry(
        RetryPolicy::default().with_max_retries(3).with_backoff(
            Duration::from_millis(1),
            2.0,
            Duration::from_millis(5),
        ),
        7,
    );
    assert_eq!(client.health().unwrap().shards, 2);
    assert_eq!(handle.join().unwrap(), 3, "two retries, then success");
}

/// Non-idempotent requests (train, rollback, snapshot) surface a `503`
/// immediately: a replay could apply the mutation twice.
#[test]
fn non_idempotent_requests_never_retry_a_503() {
    let (addr, handle) = scripted_server(vec![(503, vec![], error_body("service_closed"))]);
    let client = Client::new(addr).with_retry(RetryPolicy::default().with_max_retries(5), 7);
    let err = client.rollback("m", 1).unwrap_err();
    assert_eq!(err.status(), Some(503), "surfaced, not retried: {err}");
    assert_eq!(handle.join().unwrap(), 1, "exactly one attempt");
}

/// The token-bucket retry budget caps brownout amplification: against a
/// flapping server a client with 2 tokens and `max_retries = 10` stops
/// after two retries — the budget, not the per-call cap, bounds the
/// offered load, so the socket is hit exactly 3 times, never 11.
#[test]
fn flapping_503s_exhaust_the_retry_budget_instead_of_hammering_the_socket() {
    let script: Vec<_> = (0..3)
        .map(|_| (503, vec![], error_body("shard_restarted")))
        .collect();
    let (addr, handle) = scripted_server(script);
    let client = Client::new(addr)
        .with_retry(
            RetryPolicy::default().with_max_retries(10).with_backoff(
                Duration::from_millis(1),
                2.0,
                Duration::from_millis(5),
            ),
            11,
        )
        .retry_budget(2, 1.0);
    let err = client.health().unwrap_err();
    assert_eq!(err.status(), Some(503), "the brownout surfaces: {err}");
    assert_eq!(
        handle.join().unwrap(),
        3,
        "initial try + 2 budgeted retries, despite max_retries = 10"
    );
}

/// The retry budget is finite: a server that never relents exhausts
/// `max_retries` and the last error surfaces.
#[test]
fn retry_budget_exhausts_against_a_stuck_server() {
    let script: Vec<_> = (0..3)
        .map(|_| {
            (
                429,
                vec![("X-Ember-Retry-After-Ms".to_string(), "1".to_string())],
                error_body("queue_full"),
            )
        })
        .collect();
    let (addr, handle) = scripted_server(script);
    let client = Client::new(addr).with_retry(
        RetryPolicy::default().with_max_retries(2).with_backoff(
            Duration::from_millis(1),
            2.0,
            Duration::from_millis(5),
        ),
        1,
    );
    let err = client.models().unwrap_err();
    assert_eq!(err.status(), Some(429));
    assert_eq!(handle.join().unwrap(), 3, "initial try + 2 retries");
}
