//! Property-based tests of the binary wire format: header/payload
//! round-trips at non-word-multiple widths, and typed rejection of
//! corrupted or truncated frames — no corruption may decode, and no
//! rejection may panic.

use ember_http::wire::{self, WireError, FLAG_DEGRADED, HEADER_LEN, WIRE_MAGIC, WIRE_VERSION};
use ndarray::Array2;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A random binary batch with the given density, from a derived seed.
fn binary_batch(rows: usize, cols: usize, density: f64, seed: u64) -> Array2<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Array2::from_shape_fn((rows, cols), |_| f64::from(rng.random_bool(density)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// encode → decode is the identity on any binary batch, at widths
    /// straddling the word boundary (the issue's 63/65/127 cases are in
    /// range and covered by the dedicated test below every run).
    #[test]
    fn roundtrip_at_arbitrary_widths(
        rows in 1usize..10,
        cols in 1usize..200,
        density in 0.0f64..=1.0,
        model_version in any::<u64>(),
        degraded in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, density, seed);
        let flags = if degraded { FLAG_DEGRADED } else { 0 };
        let bytes = wire::encode_samples(&dense, model_version, flags).expect("binary batch encodes");
        prop_assert_eq!(bytes.len(), HEADER_LEN + rows * cols.div_ceil(64) * 8);
        let decoded = wire::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.header.rows, rows);
        prop_assert_eq!(decoded.header.cols, cols);
        prop_assert_eq!(decoded.header.model_version, model_version);
        prop_assert_eq!(decoded.header.degraded(), degraded);
        prop_assert_eq!(decoded.to_dense(), dense);
    }

    /// Corrupting any one of the 4 magic bytes is rejected as
    /// `BadMagic` — the frame is never misread as valid.
    #[test]
    fn corrupted_magic_is_typed_rejection(
        rows in 1usize..6,
        cols in 1usize..100,
        byte in 0usize..4,
        xor in 1u8..=255,
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, 0.5, seed);
        let mut bytes = wire::encode_samples(&dense, 7, 0).unwrap();
        bytes[byte] ^= xor;
        prop_assert!(matches!(wire::decode(&bytes), Err(WireError::BadMagic { .. })));
    }

    /// Any strict prefix of a valid frame is rejected as `Truncated`
    /// (never a panic, never a partial decode).
    #[test]
    fn truncated_body_is_typed_rejection(
        rows in 1usize..6,
        cols in 1usize..100,
        cut in any::<proptest::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, 0.5, seed);
        let bytes = wire::encode_samples(&dense, 7, 0).unwrap();
        let keep = cut.index(bytes.len()); // 0..len, strictly shorter
        prop_assert!(matches!(
            wire::decode(&bytes[..keep]),
            Err(WireError::Truncated { .. })
        ));
    }

    /// Appending any garbage after a valid frame is rejected as
    /// `TrailingBytes` — framing layers must not silently drop bytes.
    #[test]
    fn trailing_garbage_is_typed_rejection(
        rows in 1usize..6,
        cols in 1usize..100,
        garbage in prop::collection::vec(any::<u8>(), 1..16),
        seed in any::<u64>(),
    ) {
        let dense = binary_batch(rows, cols, 0.5, seed);
        let mut bytes = wire::encode_samples(&dense, 7, 0).unwrap();
        bytes.extend_from_slice(&garbage);
        prop_assert!(matches!(
            wire::decode(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    /// Decoding arbitrary bytes never panics: it either produces a
    /// well-formed frame or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(decoded) = wire::decode(&bytes) {
            prop_assert!(decoded.header.rows >= 1);
            prop_assert!(decoded.header.cols >= 1);
        }
    }
}

/// The issue's named width cases, pinned explicitly: one word minus a
/// bit, one word plus a bit, and two words minus a bit.
#[test]
fn roundtrip_at_63_65_127_cols() {
    for &cols in &[63usize, 65, 127] {
        let dense = binary_batch(5, cols, 0.4, cols as u64);
        let bytes = wire::encode_samples(&dense, 3, 0).unwrap();
        let decoded = wire::decode(&bytes).unwrap();
        assert_eq!(decoded.header.cols, cols, "cols survive at width {cols}");
        assert_eq!(decoded.to_dense(), dense, "bits survive at width {cols}");
    }
}

/// A frame announcing a future format version is refused even when the
/// rest is plausible.
#[test]
fn future_version_is_refused() {
    let dense = binary_batch(2, 10, 0.5, 1);
    let mut bytes = wire::encode_samples(&dense, 1, 0).unwrap();
    bytes[4..6].copy_from_slice(&(WIRE_VERSION + 1).to_le_bytes());
    assert!(matches!(
        wire::decode(&bytes),
        Err(WireError::UnsupportedVersion { .. })
    ));
    // Sanity: the magic constant is what the spec says it is.
    assert_eq!(&bytes[..4], &WIRE_MAGIC.to_le_bytes());
}
