//! The versioned binary wire format for sample batches: a fixed
//! little-endian header followed by the raw [`BitMatrix`] words.
//!
//! Sampled states are binary, and PR 4's [`BitMatrix`] already holds a
//! batch as packed `u64` words — so the wire encoding is simply those
//! words, 1 bit per state, prefixed by a 24-byte header. At 784 visible
//! units a row costs 98 bytes instead of the thousands the JSON float
//! encoding spends, and encoding is a straight copy of the packed
//! representation the sampling kernels already produced (no float
//! formatting, no parsing on the way back in).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic          0x45 0x4D 0x42 0x57  (`EMBW`)
//!      4     2  version        format version, currently 1
//!      6     2  flags          bit 0: response was served degraded
//!      8     4  rows           number of sample rows
//!     12     4  cols           bits per row (visible units)
//!     16     8  model_version  registry version the bits were drawn from
//!     24     …  payload        rows × ⌈cols/64⌉ `u64` words, each LE
//! ```
//!
//! Bits beyond `cols` in a row's last word are **zero**; the decoder
//! rejects non-zero padding (a flipped pad bit means the body is
//! corrupt even though every addressable bit is in range). Decoding
//! validates magic, version, and the exact body length, and returns
//! typed [`WireError`]s — the proptests in
//! `crates/http/tests/wire_property.rs` pin round-trips at
//! non-word-multiple widths and the rejection paths.

use ember_core::kernels::BitMatrix;
use ndarray::Array2;

/// MIME type negotiated for the binary wire format (via `Accept` on
/// responses, `Content-Type` on binary clamp uploads).
pub const WIRE_MIME: &str = "application/x-ember-bits";

/// The 4-byte magic prefix, `EMBW` read as a little-endian `u32`.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"EMBW");

/// Current format version.
pub const WIRE_VERSION: u16 = 1;

/// Header flag bit 0: the response was served by the degraded
/// (circuit-broken) software fallback.
pub const FLAG_DEGRADED: u16 = 1;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 24;

/// Maximum accepted payload size (matches the HTTP edge's body limit):
/// any header announcing more is rejected as
/// [`WireError::Oversized`] before a single byte is allocated.
pub const MAX_PAYLOAD: usize = 256 * 1024 * 1024;

/// The decoded fixed header of a wire message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHeader {
    /// Number of sample rows in the payload.
    pub rows: usize,
    /// Bits per row (the model's visible width).
    pub cols: usize,
    /// Registry version of the model the bits were drawn from.
    pub model_version: u64,
    /// Flag bits (see [`FLAG_DEGRADED`]).
    pub flags: u16,
}

impl WireHeader {
    /// `true` when the degraded-service flag is set.
    pub fn degraded(&self) -> bool {
        self.flags & FLAG_DEGRADED != 0
    }
}

/// A fully decoded wire message: header plus the packed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireSamples {
    /// The decoded header.
    pub header: WireHeader,
    /// The packed sample rows.
    pub bits: BitMatrix,
}

impl WireSamples {
    /// Unpacks the payload to the dense `{0.0, 1.0}` batch the
    /// in-process API returns — bit-identical to the matrix that was
    /// encoded.
    pub fn to_dense(&self) -> Array2<f64> {
        self.bits.to_dense()
    }
}

/// Typed decode failures. Every variant means the message must be
/// discarded; none are retryable by re-parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first 4 bytes are not [`WIRE_MAGIC`] — not a wire message at
    /// all (or one corrupted in its very prefix).
    BadMagic {
        /// The 4 bytes found, read little-endian.
        found: u32,
    },
    /// The header carries a format version this decoder does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The message ends before the header + payload it announces.
    Truncated {
        /// Bytes required by the header (or the minimum header size).
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The message is longer than header + payload — trailing garbage,
    /// which a framing layer must never silently ignore.
    TrailingBytes {
        /// Bytes required by the header.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// A row's final word has bits set beyond `cols` — the padding is
    /// defined to be zero, so the body is corrupt.
    NonZeroPadding {
        /// First offending row.
        row: usize,
    },
    /// The batch handed to the encoder contains values other than
    /// exactly `0.0` or `1.0` and cannot ride the 1-bit wire.
    NonBinary,
    /// The announced dimensions overflow addressable memory on this
    /// host — rejected before any allocation is attempted.
    Oversized {
        /// Announced row count.
        rows: u64,
        /// Announced column count.
        cols: u64,
    },
    /// The header announces zero rows or zero columns; the format
    /// requires at least one of each (there is no empty sample batch).
    EmptyDimensions,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic { found } => {
                write!(
                    f,
                    "bad wire magic 0x{found:08x} (expected 0x{WIRE_MAGIC:08x})"
                )
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found} (speak {WIRE_VERSION})")
            }
            WireError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated wire message: need {expected} bytes, have {found}"
                )
            }
            WireError::TrailingBytes { expected, found } => write!(
                f,
                "trailing bytes after wire message: expected {expected} bytes, have {found}"
            ),
            WireError::NonZeroPadding { row } => {
                write!(f, "non-zero padding bits in row {row}")
            }
            WireError::NonBinary => {
                write!(
                    f,
                    "batch contains non-binary levels; cannot encode at 1 bit/state"
                )
            }
            WireError::Oversized { rows, cols } => {
                write!(
                    f,
                    "announced dimensions {rows}x{cols} overflow addressable memory"
                )
            }
            WireError::EmptyDimensions => {
                write!(
                    f,
                    "wire messages must carry at least one row and one column"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Number of `u64` payload words per row at `cols` bits.
fn words_per_row(cols: usize) -> usize {
    cols.div_ceil(64)
}

/// Encodes an already-packed batch. This is the zero-conversion path:
/// the payload bytes are the `BitMatrix` words the sampling kernels
/// produced, written little-endian.
pub fn encode_bits(bits: &BitMatrix, model_version: u64, flags: u16) -> Vec<u8> {
    let rows = bits.nrows();
    let wpr = bits.words_per_row();
    let mut out = Vec::with_capacity(HEADER_LEN + rows * wpr * 8);
    out.extend_from_slice(&WIRE_MAGIC.to_le_bytes());
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(bits.ncols() as u32).to_le_bytes());
    out.extend_from_slice(&model_version.to_le_bytes());
    for r in 0..rows {
        for &word in bits.row_words(r) {
            out.extend_from_slice(&word.to_le_bytes());
        }
    }
    out
}

/// Packs a dense `{0.0, 1.0}` batch and encodes it.
///
/// # Errors
///
/// [`WireError::NonBinary`] when any level is not exactly `0.0`/`1.0`.
pub fn encode_samples(
    samples: &Array2<f64>,
    model_version: u64,
    flags: u16,
) -> Result<Vec<u8>, WireError> {
    let bits = BitMatrix::from_batch(samples).ok_or(WireError::NonBinary)?;
    Ok(encode_bits(&bits, model_version, flags))
}

/// Decodes and validates a wire message.
///
/// # Errors
///
/// See [`WireError`] — magic, version, exact-length, and padding
/// violations are all typed.
pub fn decode(bytes: &[u8]) -> Result<WireSamples, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            expected: HEADER_LEN,
            found: bytes.len(),
        });
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let flags = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    let rows = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as u64;
    let cols = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as u64;
    let model_version = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));

    if rows == 0 || cols == 0 {
        return Err(WireError::EmptyDimensions);
    }
    // Validate the announced size with u64 math before trusting it as
    // usize anywhere — a hostile header must not drive an allocation.
    let wpr = cols.div_ceil(64);
    let payload = rows
        .checked_mul(wpr)
        .and_then(|w| w.checked_mul(8))
        .filter(|&p| p <= MAX_PAYLOAD as u64)
        .ok_or(WireError::Oversized { rows, cols })?;
    let expected = HEADER_LEN + payload as usize;
    if bytes.len() < expected {
        return Err(WireError::Truncated {
            expected,
            found: bytes.len(),
        });
    }
    if bytes.len() > expected {
        return Err(WireError::TrailingBytes {
            expected,
            found: bytes.len(),
        });
    }

    let (rows, cols) = (rows as usize, cols as usize);
    let mut bits = BitMatrix::zeros(rows, cols);
    let wpr = words_per_row(cols);
    let pad_mask = if cols % 64 == 0 {
        0u64
    } else {
        !0u64 << (cols % 64)
    };
    for r in 0..rows {
        let start = HEADER_LEN + r * wpr * 8;
        let words = bits.row_words_mut(r);
        for (w, word) in words.iter_mut().enumerate() {
            let off = start + w * 8;
            *word = u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        }
        if words[wpr - 1] & pad_mask != 0 {
            return Err(WireError::NonZeroPadding { row: r });
        }
    }
    Ok(WireSamples {
        header: WireHeader {
            rows,
            cols,
            model_version,
            flags,
        },
        bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(rows: usize, cols: usize) -> Array2<f64> {
        Array2::from_shape_fn((rows, cols), |(i, j)| f64::from((i * 7 + j * 3) % 5 < 2))
    }

    #[test]
    fn roundtrip_preserves_bits_and_header() {
        for cols in [1usize, 63, 64, 65, 127, 128, 784] {
            let dense = batch(5, cols);
            let bytes = encode_samples(&dense, 42, FLAG_DEGRADED).unwrap();
            assert_eq!(bytes.len(), HEADER_LEN + 5 * cols.div_ceil(64) * 8);
            let decoded = decode(&bytes).unwrap();
            assert_eq!(decoded.header.rows, 5);
            assert_eq!(decoded.header.cols, cols);
            assert_eq!(decoded.header.model_version, 42);
            assert!(decoded.header.degraded());
            assert_eq!(decoded.to_dense(), dense);
        }
    }

    #[test]
    fn rejects_non_binary_batches() {
        let mut dense = batch(2, 8);
        dense[[1, 3]] = 0.5;
        assert_eq!(encode_samples(&dense, 1, 0), Err(WireError::NonBinary));
    }

    #[test]
    fn typed_rejections() {
        let bytes = encode_samples(&batch(3, 65), 7, 0).unwrap();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode(&bad), Err(WireError::BadMagic { .. })));

        let mut vsn = bytes.clone();
        vsn[4] = 99;
        assert_eq!(
            decode(&vsn),
            Err(WireError::UnsupportedVersion { found: 99 })
        );

        assert!(matches!(
            decode(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&bytes[..10]),
            Err(WireError::Truncated { .. })
        ));

        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode(&long),
            Err(WireError::TrailingBytes { .. })
        ));

        // Flip a padding bit (cols = 65 → bits 65..128 of word 1 are pad).
        let mut padded = bytes;
        let last_word_hi = HEADER_LEN + 2 * 8 - 1; // row 0, word 1, top byte
        padded[last_word_hi] |= 0x80;
        assert_eq!(decode(&padded), Err(WireError::NonZeroPadding { row: 0 }));
    }

    #[test]
    fn oversized_header_rejected_without_allocating() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[0..4].copy_from_slice(&WIRE_MAGIC.to_le_bytes());
        bytes[4..6].copy_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(WireError::Oversized { .. })));
    }
}
