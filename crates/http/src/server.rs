//! The HTTP/1.1 edge: a blocking accept loop + worker-thread pool over
//! an owned [`SamplingService`].
//!
//! # Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/models/{name}/sample` | Draw samples (JSON or binary wire) |
//! | `POST /v1/models/{name}/train` | Run CD-k epochs, publish a version |
//! | `POST /v1/models/{name}/rollback` | Republish a retained version |
//! | `POST /v1/admin/snapshot` | Seal a durable snapshot now ([`ServerConfig::with_persistence`]) |
//! | `GET /v1/models` | List registered models |
//! | `GET /v1/stats` | JSON [`ServiceStats`](ember_serve::ServiceStats) snapshot |
//! | `GET /healthz` | Liveness (`ok` / `draining`) |
//!
//! # Hardening
//!
//! [`ServerConfig`] bounds each connection: per-connection socket
//! read/write timeouts (a slowloris peer trickling header bytes is cut
//! off with `408 Request Timeout` instead of pinning a worker forever)
//! and a maximum request-body size (an oversized `Content-Length` is
//! refused with `413` before a single body byte is buffered).
//!
//! # Content negotiation
//!
//! A sample request with `Accept: application/x-ember-bits` gets the
//! bit-packed binary wire format of [`crate::wire`] (1 bit/state plus a
//! 24-byte header; execution metadata rides in `X-Ember-*` response
//! headers). Anything else gets the JSON fallback — **pretty-printed**
//! deliberately: JSON is this edge's human/debug encoding (curl and
//! eyeballs), the wire format is the production encoding, so the JSON
//! side optimizes for readability, not bytes. Binary sample requests
//! (`Content-Type: application/x-ember-bits`) carry the clamp row as
//! wire bits and their knobs in `X-Ember-*` request headers.
//!
//! # Error mapping
//!
//! [`ServeError`] maps onto status codes per the serving taxonomy:
//! `QueueFull` and `Overloaded` (admission control / the Bulk-first
//! shedder) → `429` with `Retry-After` (and exact
//! `X-Ember-Retry-After-Ms`), `DeadlineExceeded` → `504` (deadline set
//! via `X-Ember-Timeout-Ms`; priority lane via `X-Ember-Priority`),
//! `ModelNotFound` → `404`,
//! `InvalidRequest` → `400`, `ServiceClosed` → `503`. Every error body
//! is a JSON [`ErrorReply`] with a stable `code`.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] is the SIGTERM path: stop accepting, let every
//! accepted connection finish within the deadline, then hand the
//! remaining budget to [`SamplingService::shutdown`] so the queue
//! drains too. Requests still mid-flight past the deadline get their
//! answers (the seam has no preemption); connections never see a slammed
//! socket.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ndarray::Array1;

use ember_serve::{
    DrainReport, Priority, SampleRequest, SamplingService, ServeError, TrainRequest,
};
use ember_store::SnapshotDaemon;

use crate::json::{
    parse_rollback_body, parse_sample_body, parse_train_body, ErrorReply, Health, ModelInfo,
    ModelList, RollbackReply, SampleReply, SnapshotReply, TrainReply, JSON_MIME,
};
use crate::proto::{read_request_limited, ParseError, ReadOutcome, Request, Response, MAX_BODY};
use crate::wire::{self, WIRE_MIME};

/// Request-knob headers understood on binary (and optionally JSON)
/// sample requests.
pub mod headers {
    /// Number of chains to draw.
    pub const SAMPLES: &str = "X-Ember-Samples";
    /// Gibbs steps per chain.
    pub const GIBBS_STEPS: &str = "X-Ember-Gibbs-Steps";
    /// Master seed.
    pub const SEED: &str = "X-Ember-Seed";
    /// Request deadline budget in milliseconds.
    pub const TIMEOUT_MS: &str = "X-Ember-Timeout-Ms";
    /// Scheduling lane: `interactive` (default) or `bulk`,
    /// case-insensitive (see `ember_serve::Priority`).
    pub const PRIORITY: &str = "X-Ember-Priority";
    /// Response: executing shard index.
    pub const SHARD: &str = "X-Ember-Shard";
    /// Response: model version sampled/trained.
    pub const MODEL_VERSION: &str = "X-Ember-Model-Version";
    /// Response: rows of the coalesced batch the request rode in.
    pub const COALESCED_ROWS: &str = "X-Ember-Coalesced-Rows";
    /// Response: `1` when served by the degraded fallback.
    pub const DEGRADED: &str = "X-Ember-Degraded";
    /// Response (429): exact backlog-drain hint in milliseconds (the
    /// standard `Retry-After` header is whole seconds, rounded up).
    pub const RETRY_AFTER_MS: &str = "X-Ember-Retry-After-Ms";
}

/// Connection-level policy of a [`Server`]: worker count, slowloris
/// timeouts, body bound, and the optional persistence hook behind
/// `POST /v1/admin/snapshot`.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection workers (bounds how many HTTP requests can block on
    /// the service concurrently). Default 8.
    pub workers: usize,
    /// Per-connection socket read timeout: a peer that stalls mid-
    /// request longer than this is answered `408` and disconnected
    /// (`None` disables the guard). Default 30 s.
    pub read_timeout: Option<Duration>,
    /// Per-connection socket write timeout (a peer that stops draining
    /// its response is disconnected). Default 30 s.
    pub write_timeout: Option<Duration>,
    /// Maximum accepted request-body size in bytes; larger
    /// `Content-Length` declarations are refused with `413` before any
    /// buffering. Default [`MAX_BODY`].
    pub max_body: usize,
    /// Snapshot daemon exposed at `POST /v1/admin/snapshot`. `None`
    /// answers that route with `503 no_persistence`.
    pub persistence: Option<Arc<SnapshotDaemon>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_body: MAX_BODY,
            persistence: None,
        }
    }
}

impl ServerConfig {
    /// Replaces the connection-worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces both socket timeouts (`None` disables the guards).
    #[must_use]
    pub fn with_timeouts(mut self, read: Option<Duration>, write: Option<Duration>) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Replaces the request-body ceiling.
    #[must_use]
    pub fn with_max_body(mut self, max_body: usize) -> Self {
        self.max_body = max_body;
        self
    }

    /// Attaches a snapshot daemon, enabling `POST /v1/admin/snapshot`.
    #[must_use]
    pub fn with_persistence(mut self, daemon: Arc<SnapshotDaemon>) -> Self {
        self.persistence = Some(daemon);
        self
    }
}

/// The outcome of [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShutdownReport {
    /// `true` if every accepted HTTP connection finished within the
    /// deadline.
    pub connections_drained: bool,
    /// The inner service's drain report.
    pub service: DrainReport,
}

struct Shared {
    /// `None` once shutdown has taken the service; requests arriving
    /// after that answer `503 service_closed`.
    service: RwLock<Option<SamplingService>>,
    /// Set when shutdown begins: the accept loop exits and `/healthz`
    /// reports `draining`.
    closing: AtomicBool,
    /// Accepted-but-unfinished connections (incremented by the accept
    /// loop *before* the stream is handed to a worker, so a drain never
    /// misses a connection sitting in the hand-off queue).
    in_flight: Mutex<usize>,
    idle: Condvar,
    /// Connection policy + the optional persistence hook.
    config: ServerConfig,
}

/// A running HTTP edge. Constructed with [`Server::start`]; stopped
/// with [`Server::shutdown`] (or dropped, which drains without a
/// bound).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `service` with 8 connection workers.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(addr: impl ToSocketAddrs, service: SamplingService) -> io::Result<Server> {
        Server::start_with_config(addr, service, ServerConfig::default())
    }

    /// [`Server::start`] with an explicit connection-worker count
    /// (bounds how many HTTP requests can block on the service
    /// concurrently).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn start_with_workers(
        addr: impl ToSocketAddrs,
        service: SamplingService,
        workers: usize,
    ) -> io::Result<Server> {
        Server::start_with_config(addr, service, ServerConfig::default().with_workers(workers))
    }

    /// [`Server::start`] with the full connection policy: worker count,
    /// slowloris timeouts, body ceiling, and the optional persistence
    /// hook behind `POST /v1/admin/snapshot`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers == 0`.
    pub fn start_with_config(
        addr: impl ToSocketAddrs,
        service: SamplingService,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let workers = config.workers;
        assert!(workers >= 1, "need at least one connection worker");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: RwLock::new(Some(service)),
            closing: AtomicBool::new(false),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            config,
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("ember-http-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn http worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ember-http-accept".into())
                .spawn(move || accept_loop(&shared, &listener, &tx))
                .expect("spawn http accept loop")
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (the realized port when started on port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// SIGTERM-style graceful stop: closes the listener, drains
    /// accepted connections within `deadline`, then hands the remaining
    /// budget to [`SamplingService::shutdown`] for the queue drain, and
    /// joins every thread.
    pub fn shutdown(mut self, deadline: Duration) -> ShutdownReport {
        let deadline_at = Instant::now() + deadline;
        self.shared.closing.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }

        // Wait for every accepted connection to be answered.
        let connections_drained = {
            let mut in_flight = self.shared.in_flight.lock().expect("in-flight lock");
            loop {
                if *in_flight == 0 {
                    break true;
                }
                let now = Instant::now();
                if now >= deadline_at {
                    break false;
                }
                let (guard, _) = self
                    .shared
                    .idle
                    .wait_timeout(in_flight, deadline_at - now)
                    .expect("in-flight lock");
                in_flight = guard;
            }
        };

        // Take the service out from under the edge (late connections see
        // `503 service_closed`) and drain its queue with what is left of
        // the budget.
        let service = self
            .shared
            .service
            .write()
            .expect("service slot")
            .take()
            .expect("service taken before shutdown");
        let remaining = deadline_at.saturating_duration_since(Instant::now());
        let service_report = service.shutdown(remaining);

        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        ShutdownReport {
            connections_drained,
            service: service_report,
        }
    }
}

impl Drop for Server {
    /// Unbounded graceful stop: closes the listener, drains accepted
    /// connections and the service queue without a deadline. For a
    /// bounded stop use [`Server::shutdown`].
    fn drop(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        {
            let mut in_flight = self.shared.in_flight.lock().expect("in-flight lock");
            while *in_flight > 0 {
                in_flight = self.shared.idle.wait(in_flight).expect("in-flight lock");
            }
        }
        drop(self.shared.service.write().expect("service slot").take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Polls the nonblocking listener until shutdown; every accepted stream
/// is counted in-flight *before* entering the worker hand-off queue.
/// Dropping `tx` on exit is what terminates the idle workers.
fn accept_loop(shared: &Shared, listener: &TcpListener, tx: &mpsc::Sender<TcpStream>) {
    while !shared.closing.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                *shared.in_flight.lock().expect("in-flight lock") += 1;
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let stream = match rx.lock().expect("hand-off lock").recv() {
            Ok(stream) => stream,
            Err(_) => return,
        };
        handle_connection(shared, stream);
        let mut in_flight = shared.in_flight.lock().expect("in-flight lock");
        *in_flight -= 1;
        drop(in_flight);
        shared.idle.notify_all();
    }
}

/// Serves one connection: read one request (bounded by the configured
/// timeouts and body ceiling), route it, answer, close. A peer that
/// stalls mid-request past the read timeout gets `408 Request Timeout`
/// instead of pinning this worker.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_write_timeout(shared.config.write_timeout);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let response = match read_request_limited(&mut reader, shared.config.max_body) {
        Err(e) if is_timeout(&e) => error_response(
            408,
            "request_timeout",
            "connection idle past the read timeout before a complete request arrived",
        ),
        Err(_) | Ok(ReadOutcome::Closed) => return,
        Ok(ReadOutcome::Invalid(e)) => invalid_response(&e),
        Ok(ReadOutcome::Request(req)) => route(shared, &req),
    };
    let mut stream = stream;
    let _ = response.write_to(&mut stream);
}

/// `true` for the error kinds a timed-out socket read surfaces
/// (`WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn invalid_response(e: &ParseError) -> Response {
    let status = match e {
        ParseError::Malformed(_) => 400,
        ParseError::TooLarge(_) => 413,
        ParseError::UnsupportedFraming => 501,
    };
    error_response(status, "bad_request", &e.to_string())
}

fn error_response(status: u16, code: &str, error: &str) -> Response {
    let body = serde_json::to_string_pretty(&ErrorReply {
        code: code.into(),
        error: error.into(),
    })
    .expect("serialize error body");
    Response::new(status).with_body(JSON_MIME, body.into_bytes())
}

fn json_response<T: serde::Serialize>(status: u16, body: &T) -> Response {
    let body = serde_json::to_string_pretty(body).expect("serialize body");
    Response::new(status).with_body(JSON_MIME, body.into_bytes())
}

/// Maps a [`ServeError`] onto its HTTP answer (status, stable code,
/// taxonomy headers).
fn serve_error_response(e: &ServeError) -> Response {
    let (status, code) = match e {
        ServeError::ModelNotFound(_) => (404, "model_not_found"),
        ServeError::ModelExists(_) => (409, "model_exists"),
        ServeError::InvalidRequest(_) => (400, "invalid_request"),
        ServeError::TrainConflict { .. } => (409, "train_conflict"),
        ServeError::VersionNotFound { .. } => (404, "version_not_found"),
        ServeError::QueueFull { .. } => (429, "queue_full"),
        ServeError::Overloaded { .. } => (429, "overloaded"),
        ServeError::DeadlineExceeded => (504, "deadline_exceeded"),
        ServeError::SubstrateFault { .. } => (500, "substrate_fault"),
        ServeError::ShardRestarted { .. } => (503, "shard_restarted"),
        ServeError::ServiceClosed => (503, "service_closed"),
        ServeError::Disconnected => (500, "disconnected"),
        _ => (500, "internal"),
    };
    let mut response = error_response(status, code, &e.to_string());
    if let ServeError::QueueFull { retry_after } | ServeError::Overloaded { retry_after } = e {
        // RFC Retry-After is whole seconds; round up so a client that
        // honors it never retries early. The exact hint rides alongside,
        // also rounded up so a sub-millisecond estimate never degrades
        // to a zero (i.e. retry-immediately) hint.
        let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
        let millis = retry_after.as_nanos().div_ceil(1_000_000).max(1);
        response = response
            .with_header("Retry-After", secs.to_string())
            .with_header(headers::RETRY_AFTER_MS, millis.to_string());
    }
    response
}

fn route(shared: &Shared, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => health(shared),
        ("GET", ["v1", "models"]) => with_service(shared, list_models),
        ("GET", ["v1", "stats"]) => {
            with_service(shared, |service| json_response(200, &service.stats()))
        }
        ("POST", ["v1", "models", name, "sample"]) => {
            with_service(shared, |service| sample(service, name, req))
        }
        ("POST", ["v1", "models", name, "train"]) => {
            with_service(shared, |service| train(service, name, req))
        }
        ("POST", ["v1", "models", name, "rollback"]) => {
            with_service(shared, |service| rollback(service, name, req))
        }
        ("POST", ["v1", "admin", "snapshot"]) => snapshot(shared),
        ("GET" | "POST", _) => error_response(404, "not_found", &format!("no route {path}")),
        (method, _) => error_response(405, "method_not_allowed", &format!("{method} {path}")),
    }
}

/// Runs `f` against the live service, or answers `503 service_closed`
/// once shutdown has taken it. The read lock is held for the whole
/// request, so shutdown's take() naturally waits for in-flight work.
fn with_service(shared: &Shared, f: impl FnOnce(&SamplingService) -> Response) -> Response {
    let guard = shared.service.read().expect("service slot");
    match guard.as_ref() {
        Some(service) => f(service),
        None => error_response(503, "service_closed", "service is shut down"),
    }
}

fn health(shared: &Shared) -> Response {
    let guard = shared.service.read().expect("service slot");
    let (status, shards) = match guard.as_ref() {
        Some(service) if !shared.closing.load(Ordering::SeqCst) => ("ok", service.shards()),
        Some(service) => ("draining", service.shards()),
        None => ("draining", 0),
    };
    json_response(
        200,
        &Health {
            status: status.into(),
            shards,
        },
    )
}

fn list_models(service: &SamplingService) -> Response {
    let registry = service.registry();
    let models = registry
        .names()
        .into_iter()
        .filter_map(|name| {
            registry.get(&name).map(|snapshot| ModelInfo {
                name,
                version: snapshot.version,
                visible: snapshot.rbm.visible_len(),
                hidden: snapshot.rbm.hidden_len(),
            })
        })
        .collect();
    json_response(200, &ModelList { models })
}

/// `POST /v1/models/{name}/sample`: assemble the [`SampleRequest`] from
/// either encoding, run it, answer in the negotiated encoding.
fn sample(service: &SamplingService, name: &str, req: &Request) -> Response {
    let request = match build_sample_request(name, req) {
        Ok(request) => request,
        Err(response) => return *response,
    };
    let wants_binary = req
        .header("Accept")
        .is_some_and(|accept| accept.contains(WIRE_MIME));
    let response = match service.sample(request) {
        Ok(response) => response,
        Err(e) => return serve_error_response(&e),
    };

    let meta = |r: Response| {
        r.with_header(headers::SHARD, response.shard.to_string())
            .with_header(headers::MODEL_VERSION, response.model_version.to_string())
            .with_header(headers::COALESCED_ROWS, response.coalesced_rows.to_string())
            .with_header(headers::DEGRADED, u8::from(response.degraded).to_string())
    };
    if wants_binary {
        let flags = if response.degraded {
            wire::FLAG_DEGRADED
        } else {
            0
        };
        match wire::encode_samples(&response.samples, response.model_version, flags) {
            Ok(bytes) => meta(Response::new(200).with_body(WIRE_MIME, bytes)),
            Err(e) => error_response(500, "wire_encode", &e.to_string()),
        }
    } else {
        let samples = response.samples.rows().map(|row| row.to_vec()).collect();
        meta(json_response(
            200,
            &SampleReply {
                samples,
                shard: response.shard,
                model_version: response.model_version,
                coalesced_rows: response.coalesced_rows,
                degraded: response.degraded,
            },
        ))
    }
}

/// Builds the service request from the HTTP request: knobs from the
/// JSON body or (for binary clamp uploads) from `X-Ember-*` headers.
fn build_sample_request(name: &str, req: &Request) -> Result<SampleRequest, Box<Response>> {
    let bad = |msg: &str| Box::new(error_response(400, "invalid_request", msg));
    let mut request = SampleRequest::new(name);

    let body_is_binary = req
        .header("Content-Type")
        .is_some_and(|ct| ct.contains(WIRE_MIME));
    if body_is_binary {
        let decoded = wire::decode(&req.body).map_err(|e| bad(&e.to_string()))?;
        if decoded.header.rows != 1 {
            return Err(bad(&format!(
                "binary clamp upload must be a single row, got {}",
                decoded.header.rows
            )));
        }
        let clamp: Array1<f64> = decoded.to_dense().row(0).to_owned();
        request = request.with_clamp(clamp);
    } else {
        let parsed = parse_sample_body(&req.body).map_err(|e| bad(&e))?;
        if let Some(n) = parsed.n_samples {
            request = request.with_samples(n);
        }
        if let Some(k) = parsed.gibbs_steps {
            request = request.with_gibbs_steps(k);
        }
        if let Some(seed) = parsed.seed {
            request = request.with_seed(seed);
        }
        if let Some(clamp) = parsed.clamp {
            request = request.with_clamp(Array1::from_vec(clamp));
        }
    }

    // Knob headers apply to both encodings (binary requests have
    // nowhere else to put them; on JSON requests they override the
    // body's values).
    let header_u64 = |name: &str| -> Result<Option<u64>, Box<Response>> {
        match req.header(name) {
            None => Ok(None),
            Some(raw) => raw
                .trim()
                .parse::<u64>()
                .map(Some)
                .map_err(|_| bad(&format!("`{name}` header must be an integer, got {raw:?}"))),
        }
    };
    if let Some(n) = header_u64(headers::SAMPLES)? {
        request = request.with_samples(n as usize);
    }
    if let Some(k) = header_u64(headers::GIBBS_STEPS)? {
        request = request.with_gibbs_steps(k as usize);
    }
    if let Some(seed) = header_u64(headers::SEED)? {
        request = request.with_seed(seed);
    }
    if let Some(ms) = header_u64(headers::TIMEOUT_MS)? {
        request = request.with_deadline_in(Duration::from_millis(ms));
    }
    if let Some(raw) = req.header(headers::PRIORITY) {
        let priority = Priority::parse(raw).ok_or_else(|| {
            bad(&format!(
                "`{}` header must be `interactive` or `bulk`, got {raw:?}",
                headers::PRIORITY
            ))
        })?;
        request = request.with_priority(priority);
    }
    Ok(request)
}

/// `POST /v1/models/{name}/train`: JSON body only.
fn train(service: &SamplingService, name: &str, req: &Request) -> Response {
    let parsed = match parse_train_body(&req.body) {
        Ok(parsed) => parsed,
        Err(e) => return error_response(400, "invalid_request", &e),
    };
    let rows = parsed.data.len();
    let cols = parsed.data.first().map_or(0, Vec::len);
    let mut flat = Vec::with_capacity(rows * cols);
    for row in &parsed.data {
        flat.extend_from_slice(row);
    }
    let data = match ndarray::Array2::from_shape_vec((rows, cols), flat) {
        Ok(data) => data,
        Err(e) => return error_response(400, "invalid_request", &e.to_string()),
    };
    let mut request = TrainRequest::new(name, data);
    if let (Some(k), lr) = (parsed.cd_k, parsed.learning_rate) {
        request = request.with_trainer(ember_rbm::CdTrainer::new(k, lr.unwrap_or(0.05)));
    } else if let Some(lr) = parsed.learning_rate {
        request = request.with_trainer(ember_rbm::CdTrainer::new(1, lr));
    }
    if let Some(batch) = parsed.batch_size {
        request = request.with_batch_size(batch);
    }
    if let Some(epochs) = parsed.epochs {
        request = request.with_epochs(epochs);
    }
    if let Some(seed) = parsed.seed {
        request = request.with_seed(seed);
    }
    match service.train(request) {
        Ok(response) => json_response(
            200,
            &TrainReply {
                new_version: response.new_version,
                shard: response.shard,
                batches: response.stats.batches,
                reconstruction_error: response.stats.reconstruction_error,
                gradient_norm: response.stats.gradient_norm,
            },
        )
        .with_header(headers::SHARD, response.shard.to_string())
        .with_header(headers::MODEL_VERSION, response.new_version.to_string()),
        Err(e) => serve_error_response(&e),
    }
}

/// `POST /v1/models/{name}/rollback`: republish a retained version as
/// a new one. Body: `{"version": N}`.
fn rollback(service: &SamplingService, name: &str, req: &Request) -> Response {
    let version = match parse_rollback_body(&req.body) {
        Ok(version) => version,
        Err(e) => return error_response(400, "invalid_request", &e),
    };
    match service.rollback(name, version) {
        Ok(new_version) => json_response(
            200,
            &RollbackReply {
                new_version,
                rolled_back_to: version,
            },
        )
        .with_header(headers::MODEL_VERSION, new_version.to_string()),
        Err(e) => serve_error_response(&e),
    }
}

/// `POST /v1/admin/snapshot`: seal a durable snapshot on the attached
/// [`SnapshotDaemon`], synchronously on this worker.
fn snapshot(shared: &Shared) -> Response {
    let Some(daemon) = shared.config.persistence.as_ref() else {
        return error_response(
            503,
            "no_persistence",
            "this server was started without a snapshot store",
        );
    };
    match daemon.snapshot_now() {
        Ok(report) => json_response(
            200,
            &SnapshotReply {
                sequence: report.sequence,
                file: report.file,
                bytes: report.bytes as u64,
                models: report.models,
                versions: report.versions,
            },
        ),
        Err(e) => error_response(500, "snapshot_failed", &e.to_string()),
    }
}
