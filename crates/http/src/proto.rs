//! Minimal HTTP/1.1 message plumbing shared by the server and the
//! blocking client: request/response parsing and writing over any
//! `Read`/`Write` pair.
//!
//! Scope is deliberately narrow — exactly what the edge needs:
//! request-line + headers + `Content-Length`-framed bodies, one
//! request per connection (every response carries `Connection: close`).
//! Chunked transfer encoding is answered with `501 Not Implemented`
//! rather than silently mis-framed. Limits guard the parser: 16 KiB
//! per line, 100 headers, 256 MiB bodies.

use std::io::{self, BufRead, Write};

/// Maximum accepted request-line / header-line length in bytes.
pub const MAX_LINE: usize = 16 * 1024;
/// Maximum accepted header count.
pub const MAX_HEADERS: usize = 100;
/// Maximum accepted `Content-Length`.
pub const MAX_BODY: usize = 256 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method verb, uppercase as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub path: String,
    /// Header name/value pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }
}

/// A parsed (client side) or assembled (server side) HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: u16) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header (builder style).
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body and its `Content-Type` (builder style).
    #[must_use]
    pub fn with_body(mut self, content_type: &str, body: Vec<u8>) -> Self {
        self.headers
            .push(("Content-Type".into(), content_type.into()));
        self.body = body;
        self
    }

    /// First value of `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_lookup(&self.headers, name)
    }

    /// Serializes the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\n",
            self.status,
            status_reason(self.status)
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "Content-Length: {}\r\n", self.body.len())?;
        write!(w, "Connection: close\r\n\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

fn header_lookup<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// Standard reason phrase for the status codes the edge emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Protocol-level parse failures, mapped by the server onto a 4xx/5xx
/// answer before the connection closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request/status line or a header line is malformed.
    Malformed(String),
    /// A line exceeded [`MAX_LINE`] or more than [`MAX_HEADERS`] headers
    /// arrived.
    TooLarge(String),
    /// A body was framed with `Transfer-Encoding` (unsupported) instead
    /// of `Content-Length`.
    UnsupportedFraming,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(what) => write!(f, "malformed HTTP message: {what}"),
            ParseError::TooLarge(what) => write!(f, "HTTP message exceeds limits: {what}"),
            ParseError::UnsupportedFraming => {
                write!(
                    f,
                    "Transfer-Encoding framing is not supported; use Content-Length"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// The outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection before sending anything.
    Closed,
    /// The bytes on the wire are not a valid request.
    Invalid(ParseError),
}

/// Reads one CRLF- (or bare-LF-) terminated line, bounded by
/// [`MAX_LINE`].
fn read_line<R: BufRead>(r: &mut R) -> io::Result<Result<String, ParseError>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte)? {
            0 => break,
            _ => {
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
                if line.len() > MAX_LINE {
                    return Ok(Err(ParseError::TooLarge(format!(
                        "line exceeds {MAX_LINE} bytes"
                    ))));
                }
            }
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    match String::from_utf8(line) {
        Ok(s) => Ok(Ok(s)),
        Err(_) => Ok(Err(ParseError::Malformed("non-UTF-8 header line".into()))),
    }
}

/// Parses `Name: value` header lines until the blank separator line.
fn read_headers<R: BufRead>(r: &mut R) -> io::Result<Result<Vec<(String, String)>, ParseError>> {
    let mut headers = Vec::new();
    loop {
        let line = match read_line(r)? {
            Ok(line) => line,
            Err(e) => return Ok(Err(e)),
        };
        if line.is_empty() {
            return Ok(Ok(headers));
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(Err(ParseError::TooLarge(format!(
                "more than {MAX_HEADERS} headers"
            ))));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Err(ParseError::Malformed(format!(
                "header line without `:`: {line:?}"
            ))));
        };
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

/// Reads the `Content-Length`-framed body described by `headers`,
/// rejecting declared lengths above `max_body` **before** allocating.
fn read_body<R: BufRead>(
    r: &mut R,
    headers: &[(String, String)],
    max_body: usize,
) -> io::Result<Result<Vec<u8>, ParseError>> {
    if header_lookup(headers, "Transfer-Encoding").is_some() {
        return Ok(Err(ParseError::UnsupportedFraming));
    }
    let len = match header_lookup(headers, "Content-Length") {
        None => return Ok(Ok(Vec::new())),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(len) if len <= max_body => len,
            Ok(_) => {
                return Ok(Err(ParseError::TooLarge(format!(
                    "Content-Length exceeds {max_body} bytes"
                ))))
            }
            Err(_) => {
                return Ok(Err(ParseError::Malformed(format!(
                    "unparseable Content-Length {raw:?}"
                ))))
            }
        },
    };
    let mut body = vec![0u8; len];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Ok(body)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(Err(ParseError::Malformed(
            "connection closed mid-body".into(),
        ))),
        Err(e) => Err(e),
    }
}

/// Reads one request off `r` with the default [`MAX_BODY`] limit.
///
/// # Errors
///
/// Only genuine transport errors surface as `io::Error`; protocol
/// violations come back as [`ReadOutcome::Invalid`] so the server can
/// answer them with a status code.
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<ReadOutcome> {
    read_request_limited(r, MAX_BODY)
}

/// [`read_request`] with an explicit body-size ceiling (the server's
/// configurable request-body limit; oversized declarations come back as
/// [`ParseError::TooLarge`] without buffering a byte of the body).
///
/// # Errors
///
/// As [`read_request`].
pub fn read_request_limited<R: BufRead>(r: &mut R, max_body: usize) -> io::Result<ReadOutcome> {
    let line = match read_line(r)? {
        Ok(line) => line,
        Err(e) => return Ok(ReadOutcome::Invalid(e)),
    };
    if line.is_empty() {
        return Ok(ReadOutcome::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Invalid(ParseError::Malformed(format!(
            "bad request line {line:?}"
        ))));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Invalid(ParseError::Malformed(format!(
            "unsupported protocol {version:?}"
        ))));
    }
    let headers = match read_headers(r)? {
        Ok(h) => h,
        Err(e) => return Ok(ReadOutcome::Invalid(e)),
    };
    let body = match read_body(r, &headers, max_body)? {
        Ok(b) => b,
        Err(e) => return Ok(ReadOutcome::Invalid(e)),
    };
    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Reads one response off `r` (the client side).
///
/// # Errors
///
/// `io::Error` on transport failure; `ParseError` (wrapped in
/// `io::Error::InvalidData`) on a malformed status line or headers.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let invalid = |e: ParseError| io::Error::new(io::ErrorKind::InvalidData, e);
    let line = read_line(r)?.map_err(invalid)?;
    let mut parts = line.split_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(invalid(ParseError::Malformed(format!(
            "bad status line {line:?}"
        ))));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(ParseError::Malformed(format!(
            "unsupported protocol {version:?}"
        ))));
    }
    let status: u16 = code
        .parse()
        .map_err(|_| invalid(ParseError::Malformed(format!("bad status code {code:?}"))))?;
    let headers = read_headers(r)?.map_err(invalid)?;
    let body = match header_lookup(&headers, "Content-Length") {
        Some(_) => read_body(r, &headers, MAX_BODY)?.map_err(invalid)?,
        None => {
            // No explicit framing: the peer closes the connection at the
            // end of the body (we always send Connection: close).
            let mut body = Vec::new();
            r.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(raw)).unwrap()
    }

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /v1/models/m/sample HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let ReadOutcome::Request(req) = parse(raw) else {
            panic!("expected request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/models/m/sample");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn empty_connection_is_closed_not_invalid() {
        assert!(matches!(parse(b""), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_chunked_and_oversized() {
        let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert!(matches!(
            parse(raw),
            ReadOutcome::Invalid(ParseError::UnsupportedFraming)
        ));
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            ReadOutcome::Invalid(ParseError::TooLarge(_))
        ));
    }

    #[test]
    fn explicit_body_limit_rejects_before_buffering() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let outcome = read_request_limited(&mut BufReader::new(raw.as_slice()), 4).unwrap();
        assert!(matches!(
            outcome,
            ReadOutcome::Invalid(ParseError::TooLarge(_))
        ));
        let outcome = read_request_limited(&mut BufReader::new(raw.as_slice()), 5).unwrap();
        assert!(matches!(outcome, ReadOutcome::Request(req) if req.body == b"hello"));
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::new(429)
            .with_header("Retry-After", "2")
            .with_body("application/json", b"{}".to_vec());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let back = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(back.status, 429);
        assert_eq!(back.header("retry-after"), Some("2"));
        assert_eq!(back.body, b"{}");
    }
}
