//! # ember-http
//!
//! The network edge of the sampling service: a dependency-free
//! HTTP/1.1 server and blocking client over
//! [`SamplingService`](ember_serve::SamplingService), with a
//! **bit-packed binary wire format** for sample batches.
//!
//! The paper's serving economics (§3.2: per-minibatch programming of
//! volatile analog weights) pay off when many remote clients share one
//! programmed substrate. That requires a network boundary — and since
//! sampled states are binary and already live bit-packed in
//! [`BitMatrix`](ember_core::kernels::BitMatrix) words, the natural
//! wire encoding is 1 bit/state: a 24-byte header (magic, version,
//! rows, cols, model version, flags) followed by the raw little-endian
//! `u64` row words. At 784 visible units that is 98 payload bytes per
//! sample row — 50–90× smaller than any textual encoding.
//!
//! * [`wire`] — the versioned binary format: [`wire::encode_samples`] /
//!   [`wire::decode`] with typed [`wire::WireError`] rejection of
//!   corrupt or truncated frames, shared by server and client.
//! * [`Server`] — blocking accept loop + worker threads (the `vendor/`
//!   playbook: no crates.io, no async runtime), exposing
//!   `POST /v1/models/{name}/sample`, `POST /v1/models/{name}/train`,
//!   `GET /v1/models`, `GET /v1/stats`, `GET /healthz`. Content
//!   negotiation via `Accept`/`Content-Type`
//!   (`application/x-ember-bits` vs a pretty-printed JSON debug
//!   fallback), the serving error taxonomy mapped onto status codes
//!   (`429` + `Retry-After`, `504` deadlines, `404`, `400`, `503`), and
//!   SIGTERM-style [`Server::shutdown`] that drains connections before
//!   handing the rest of the deadline to the service's queue drain.
//!   [`ServerConfig`] hardens each connection — slowloris read/write
//!   timeouts answered with `408`, a request-body ceiling answered with
//!   `413` — and can attach an
//!   [`ember_store::SnapshotDaemon`] to expose the durable lifecycle:
//!   `POST /v1/models/{name}/rollback` (republish a retained version)
//!   and `POST /v1/admin/snapshot` (seal a snapshot on demand).
//! * [`Client`] — a small blocking client speaking both encodings,
//!   used by the integration tests, the `http_service` example and the
//!   `http-edge` bench dimension. [`Client::with_retry`] layers a
//!   seeded [`RetryPolicy`](ember_core::RetryPolicy) over every call:
//!   `429` backpressure is always retried honoring the server's
//!   `Retry-After`/`X-Ember-Retry-After-Ms` hints, transient `503`s
//!   only on idempotent requests.
//!
//! Because every chain carries its own seed-derived RNG stream,
//! **HTTP-served samples are bit-identical to in-process
//! `service.sample()`** for the same seed, regardless of shard count or
//! coalescing — the loopback tests pin that at 1/2/8 shards.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod json;
pub mod proto;
mod server;
pub mod wire;

pub use client::{BinarySample, Client, ClientError, JsonSample, SampleOptions};
pub use server::{headers, Server, ServerConfig, ShutdownReport};
