//! A small blocking client for the edge, speaking both encodings.
//!
//! One TCP connection per request (the server answers
//! `Connection: close`), so the client is trivially `Send`/`Sync`-free
//! state-wise — clone the address and fan out across threads.
//!
//! [`Client::with_retry`] layers the serving crate's
//! [`RetryPolicy`](ember_core::RetryPolicy) over every call: `429`
//! backpressure answers are always retried (honoring the server's
//! `Retry-After` / `X-Ember-Retry-After-Ms` hints), transient `503`s
//! only on **idempotent** requests (reads and seeded sampling — never
//! train, rollback, or snapshot, which mutate state the client cannot
//! prove was not applied).

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ndarray::Array1;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ember_core::RetryPolicy;
use ember_serve::{Priority, ServiceStats};

use crate::json::{
    ErrorReply, Health, ModelList, RollbackReply, SampleReply, SnapshotReply, TrainReply, JSON_MIME,
};
use crate::proto::{read_response, Response};
use crate::server::headers;
use crate::wire::{self, WireError, WireSamples, WIRE_MIME};

/// Errors surfaced by [`Client`] calls.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect/read/write).
    Io(io::Error),
    /// The server answered with a non-2xx status; the typed error body
    /// and taxonomy headers are attached.
    Http {
        /// HTTP status code.
        status: u16,
        /// Stable machine-readable code from the error body.
        code: String,
        /// Human-readable description from the error body.
        error: String,
        /// The backlog-drain hint of a `429` (from
        /// `X-Ember-Retry-After-Ms`, falling back to `Retry-After`
        /// seconds).
        retry_after: Option<Duration>,
    },
    /// A 2xx body failed to decode (JSON shape or wire format).
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Http {
                status,
                code,
                error,
                ..
            } => write!(f, "HTTP {status} ({code}): {error}"),
            ClientError::Decode(what) => write!(f, "undecodable response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Decode(e.to_string())
    }
}

impl ClientError {
    /// The `retry_after` hint if this is a `429 queue_full` answer.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Http { retry_after, .. } => *retry_after,
            _ => None,
        }
    }

    /// The HTTP status, if the server answered at all.
    pub fn status(&self) -> Option<u16> {
        match self {
            ClientError::Http { status, .. } => Some(*status),
            _ => None,
        }
    }
}

/// Knobs of a sample request, shared by both encodings.
#[derive(Debug, Clone, Default)]
pub struct SampleOptions {
    /// Chains to draw (`None` = server default of 1).
    pub n_samples: Option<usize>,
    /// Gibbs steps per chain (`None` = server default of 1).
    pub gibbs_steps: Option<usize>,
    /// Master seed for bit-reproducible responses.
    pub seed: Option<u64>,
    /// Initial visible levels shared by every chain.
    pub clamp: Option<Vec<f64>>,
    /// Upload the clamp as binary wire bits instead of JSON (requires
    /// every clamp level to be exactly 0.0 or 1.0).
    pub binary_clamp: bool,
    /// Request deadline, sent as `X-Ember-Timeout-Ms`.
    pub timeout: Option<Duration>,
    /// Scheduling lane, sent as `X-Ember-Priority` (`None` = server
    /// default of `Interactive`).
    pub priority: Option<Priority>,
}

impl SampleOptions {
    /// All server defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy requesting `n` samples.
    #[must_use]
    pub fn samples(mut self, n: usize) -> Self {
        self.n_samples = Some(n);
        self
    }

    /// Returns a copy taking `k` Gibbs steps per chain.
    #[must_use]
    pub fn gibbs_steps(mut self, k: usize) -> Self {
        self.gibbs_steps = Some(k);
        self
    }

    /// Returns a copy with a fixed master seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Returns a copy with every chain starting from `levels`.
    #[must_use]
    pub fn clamp(mut self, levels: impl Into<Vec<f64>>) -> Self {
        self.clamp = Some(levels.into());
        self
    }

    /// Returns a copy uploading the clamp as wire bits.
    #[must_use]
    pub fn binary_clamp(mut self, on: bool) -> Self {
        self.binary_clamp = on;
        self
    }

    /// Returns a copy that expires `budget` after submission.
    #[must_use]
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.timeout = Some(budget);
        self
    }

    /// Returns a copy scheduled on the given priority lane.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }
}

/// A binary-wire sample response plus the metadata headers it rode with.
#[derive(Debug, Clone)]
pub struct BinarySample {
    /// The decoded wire payload (header + packed bits).
    pub samples: WireSamples,
    /// Executing shard (`X-Ember-Shard`).
    pub shard: usize,
    /// Coalesced batch rows (`X-Ember-Coalesced-Rows`).
    pub coalesced_rows: usize,
    /// Bytes of the response body on the wire.
    pub body_bytes: usize,
}

/// A JSON sample response plus its on-wire body size.
#[derive(Debug, Clone)]
pub struct JsonSample {
    /// The decoded reply.
    pub reply: SampleReply,
    /// Bytes of the response body on the wire.
    pub body_bytes: usize,
}

/// One retry costs this many milli-tokens from the budget bucket.
const RETRY_COST_MTOK: u64 = 1_000;

/// Seeded retry state shared by every clone of a retrying client: the
/// policy, an attempt counter that derives a fresh deterministic jitter
/// stream per backoff, and the **retry budget** — a token bucket that
/// caps how many retries the client may issue per success it observes.
///
/// Per-call `max_retries` bounds one request's persistence; the budget
/// bounds the *fleet effect*: during a brownout every call fails, every
/// call would retry `max_retries` times, and the offered load multiplies
/// exactly when the server can least afford it. With the bucket, a
/// run of failures drains the budget and further failures surface
/// immediately — the client sheds its own retry amplification — while
/// each success refills a token and restores normal retrying.
#[derive(Debug)]
struct RetryState {
    policy: RetryPolicy,
    seed: u64,
    counter: AtomicU64,
    /// Remaining budget in milli-tokens (1 retry = 1000 mtok).
    budget_mtok: AtomicU64,
    /// Bucket capacity in milli-tokens.
    capacity_mtok: u64,
    /// Milli-tokens refunded per successful response.
    refill_mtok: u64,
}

impl RetryState {
    /// Takes one retry's worth of budget; `false` when the bucket is
    /// too empty (the caller must surface the error instead of
    /// retrying).
    fn try_spend(&self) -> bool {
        let mut current = self.budget_mtok.load(Ordering::Relaxed);
        loop {
            if current < RETRY_COST_MTOK {
                return false;
            }
            match self.budget_mtok.compare_exchange_weak(
                current,
                current - RETRY_COST_MTOK,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Refills the bucket by one success's worth, capped at capacity.
    fn refund(&self) {
        let mut current = self.budget_mtok.load(Ordering::Relaxed);
        loop {
            let next = current
                .saturating_add(self.refill_mtok)
                .min(self.capacity_mtok);
            if next == current {
                return;
            }
            match self.budget_mtok.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// Blocking HTTP client for an [`crate::Server`] edge.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    retry: Option<Arc<RetryState>>,
}

impl Client {
    /// A client for the edge at `addr` (no retries; every transient
    /// failure surfaces immediately).
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, retry: None }
    }

    /// Returns a copy that retries transient failures under `policy`
    /// with jitter seeded by `seed` (deterministic backoff schedules
    /// for tests; share one seed fleet-wide and the per-attempt counter
    /// still decorrelates the streams).
    ///
    /// Retried: `429 queue_full` / `429 overloaded` on **every** request
    /// (the server explicitly asked for a later retry and its
    /// `Retry-After` / `X-Ember-Retry-After-Ms` hints are honored as a
    /// lower bound on the pause), and `503` on **idempotent** requests
    /// only — reads and seeded sampling, never train/rollback/snapshot.
    ///
    /// Retries draw from a shared **retry budget** (default: 10 tokens,
    /// one refunded per success — tune with [`Client::retry_budget`]):
    /// during a sustained brownout the budget drains and further
    /// failures surface immediately instead of multiplying the offered
    /// load, which is exactly when the server can least afford extra
    /// traffic.
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy, seed: u64) -> Self {
        const DEFAULT_CAPACITY: u64 = 10 * RETRY_COST_MTOK;
        self.retry = Some(Arc::new(RetryState {
            policy,
            seed,
            counter: AtomicU64::new(0),
            budget_mtok: AtomicU64::new(DEFAULT_CAPACITY),
            capacity_mtok: DEFAULT_CAPACITY,
            refill_mtok: RETRY_COST_MTOK,
        }));
        self
    }

    /// Returns a copy whose retry budget holds `capacity` tokens
    /// (starting full; 1 retry = 1 token) and refunds
    /// `refill_per_success` tokens per successful response. Call after
    /// [`Client::with_retry`].
    ///
    /// # Panics
    ///
    /// Panics when no retry policy is configured.
    #[must_use]
    pub fn retry_budget(mut self, capacity: u32, refill_per_success: f64) -> Self {
        let state = self
            .retry
            .as_ref()
            .expect("retry_budget requires with_retry first");
        let capacity_mtok = u64::from(capacity) * RETRY_COST_MTOK;
        self.retry = Some(Arc::new(RetryState {
            policy: state.policy,
            seed: state.seed,
            counter: AtomicU64::new(0),
            budget_mtok: AtomicU64::new(capacity_mtok),
            capacity_mtok,
            refill_mtok: (refill_per_success.max(0.0) * RETRY_COST_MTOK as f64) as u64,
        }));
        self
    }

    /// The edge address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` when `e` may be answered differently by a later attempt:
    /// `429` always (explicit backpressure), `503` only when the
    /// request is safe to replay.
    fn transient(e: &ClientError, idempotent: bool) -> bool {
        match e.status() {
            Some(429) => true,
            Some(503) => idempotent,
            _ => false,
        }
    }

    /// One attempt plus up to `policy.max_retries` replays on transient
    /// failures. The pause before retry `k` is the policy's jittered
    /// exponential backoff, raised to any server `Retry-After` hint and
    /// capped at the policy's `max_backoff`.
    fn roundtrip(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(String, String)],
        content_type: Option<&str>,
        body: &[u8],
        idempotent: bool,
    ) -> Result<Response, ClientError> {
        let Some(state) = self.retry.as_ref() else {
            return self.roundtrip_once(method, path, extra_headers, content_type, body);
        };
        let mut attempt = 0u32;
        loop {
            match self.roundtrip_once(method, path, extra_headers, content_type, body) {
                Ok(response) => {
                    state.refund();
                    return Ok(response);
                }
                Err(e) => {
                    attempt += 1;
                    if attempt > state.policy.max_retries || !Self::transient(&e, idempotent) {
                        return Err(e);
                    }
                    if !state.try_spend() {
                        // Budget exhausted: surface the failure instead
                        // of adding retry load to a browning-out server.
                        return Err(e);
                    }
                    let lane = state.counter.fetch_add(1, Ordering::Relaxed);
                    let mut rng = StdRng::seed_from_u64(
                        state.seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut pause = state.policy.backoff(attempt, &mut rng);
                    if let Some(hint) = e.retry_after() {
                        pause = pause.max(hint);
                    }
                    std::thread::sleep(pause.min(state.policy.max_backoff));
                }
            }
        }
    }

    fn roundtrip_once(
        &self,
        method: &str,
        path: &str,
        extra_headers: &[(String, String)],
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<Response, ClientError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        for (name, value) in extra_headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if let Some(ct) = content_type {
            head.push_str(&format!("Content-Type: {ct}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_response(&mut BufReader::new(stream))?;
        if (200..300).contains(&response.status) {
            return Ok(response);
        }
        // Non-2xx: decode the typed error body.
        let retry_after = response
            .header(headers::RETRY_AFTER_MS)
            .and_then(|ms| ms.trim().parse::<u64>().ok().map(Duration::from_millis))
            .or_else(|| {
                response
                    .header("Retry-After")
                    .and_then(|s| s.trim().parse::<u64>().ok().map(Duration::from_secs))
            });
        let (code, error) = match std::str::from_utf8(&response.body)
            .ok()
            .and_then(|text| serde_json::from_str::<ErrorReply>(text).ok())
        {
            Some(reply) => (reply.code, reply.error),
            None => (
                "opaque".to_string(),
                String::from_utf8_lossy(&response.body).into_owned(),
            ),
        };
        Err(ClientError::Http {
            status: response.status,
            code,
            error,
            retry_after,
        })
    }

    fn decode_json<T: serde::de::DeserializeOwned>(response: &Response) -> Result<T, ClientError> {
        let text = std::str::from_utf8(&response.body)
            .map_err(|_| ClientError::Decode("non-UTF-8 JSON body".into()))?;
        serde_json::from_str(text).map_err(|e| ClientError::Decode(e.to_string()))
    }

    /// `GET /healthz`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn health(&self) -> Result<Health, ClientError> {
        let response = self.roundtrip("GET", "/healthz", &[], None, &[], true)?;
        Self::decode_json(&response)
    }

    /// `GET /v1/models`.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn models(&self) -> Result<ModelList, ClientError> {
        let response = self.roundtrip("GET", "/v1/models", &[], None, &[], true)?;
        Self::decode_json(&response)
    }

    /// `GET /v1/stats`: the service's accounting snapshot.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn stats(&self) -> Result<ServiceStats, ClientError> {
        let response = self.roundtrip("GET", "/v1/stats", &[], None, &[], true)?;
        Self::decode_json(&response)
    }

    fn sample_headers(options: &SampleOptions) -> Vec<(String, String)> {
        let mut extra = Vec::new();
        if let Some(ms) = options.timeout {
            extra.push((headers::TIMEOUT_MS.to_string(), ms.as_millis().to_string()));
        }
        if let Some(priority) = options.priority {
            extra.push((headers::PRIORITY.to_string(), priority.as_str().to_string()));
        }
        extra
    }

    fn json_sample_body(options: &SampleOptions) -> Vec<u8> {
        // Assemble by hand so omitted knobs stay omitted (the lenient
        // server-side parser fills in serving defaults).
        let mut pairs: Vec<(String, serde::Value)> = Vec::new();
        if let Some(n) = options.n_samples {
            pairs.push(("n_samples".into(), serde::Value::UInt(n as u64)));
        }
        if let Some(k) = options.gibbs_steps {
            pairs.push(("gibbs_steps".into(), serde::Value::UInt(k as u64)));
        }
        if let Some(seed) = options.seed {
            pairs.push(("seed".into(), serde::Value::UInt(seed)));
        }
        if let Some(clamp) = &options.clamp {
            pairs.push((
                "clamp".into(),
                serde::Value::Seq(clamp.iter().map(|&x| serde::Value::Float(x)).collect()),
            ));
        }
        serde_json::to_string(&serde::Value::Map(pairs))
            .expect("serialize sample body")
            .into_bytes()
    }

    /// `POST /v1/models/{model}/sample` negotiating the **binary** wire
    /// format (`Accept: application/x-ember-bits`). With
    /// [`SampleOptions::binary_clamp`], the clamp is uploaded as wire
    /// bits too and the knobs ride in `X-Ember-*` headers.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP (e.g. 429/504 taxonomy), or
    /// wire-decode failure.
    pub fn sample_binary(
        &self,
        model: &str,
        options: &SampleOptions,
    ) -> Result<BinarySample, ClientError> {
        let mut extra = Self::sample_headers(options);
        extra.push(("Accept".to_string(), WIRE_MIME.to_string()));
        let (content_type, body) = if options.binary_clamp {
            let clamp = options
                .clamp
                .as_ref()
                .ok_or_else(|| ClientError::Decode("binary_clamp set without a clamp".into()))?;
            let row = ndarray::Array2::from_shape_vec((1, clamp.len()), clamp.clone())
                .map_err(|e| ClientError::Decode(e.to_string()))?;
            let bytes = wire::encode_samples(&row, 0, 0)?;
            // Binary bodies have no JSON fields: every knob goes in a
            // header.
            if let Some(n) = options.n_samples {
                extra.push((headers::SAMPLES.to_string(), n.to_string()));
            }
            if let Some(k) = options.gibbs_steps {
                extra.push((headers::GIBBS_STEPS.to_string(), k.to_string()));
            }
            if let Some(seed) = options.seed {
                extra.push((headers::SEED.to_string(), seed.to_string()));
            }
            (WIRE_MIME, bytes)
        } else {
            (JSON_MIME, Self::json_sample_body(options))
        };
        let response = self.roundtrip(
            "POST",
            &format!("/v1/models/{model}/sample"),
            &extra,
            Some(content_type),
            &body,
            true, // sampling mutates nothing; a replay is safe
        )?;
        let body_bytes = response.body.len();
        let samples = wire::decode(&response.body)?;
        let header_usize = |name: &str| {
            response
                .header(name)
                .and_then(|v| v.trim().parse::<usize>().ok())
                .unwrap_or(0)
        };
        Ok(BinarySample {
            samples,
            shard: header_usize(headers::SHARD),
            coalesced_rows: header_usize(headers::COALESCED_ROWS),
            body_bytes,
        })
    }

    /// `POST /v1/models/{model}/sample` with the JSON fallback encoding
    /// on both sides.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn sample_json(
        &self,
        model: &str,
        options: &SampleOptions,
    ) -> Result<JsonSample, ClientError> {
        let extra = Self::sample_headers(options);
        let body = Self::json_sample_body(options);
        let response = self.roundtrip(
            "POST",
            &format!("/v1/models/{model}/sample"),
            &extra,
            Some(JSON_MIME),
            &body,
            true, // sampling mutates nothing; a replay is safe
        )?;
        let body_bytes = response.body.len();
        let reply = Self::decode_json(&response)?;
        Ok(JsonSample { reply, body_bytes })
    }

    /// `POST /v1/models/{model}/train`: run CD-k on `data` and publish a
    /// new model version.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn train(
        &self,
        model: &str,
        data: &ndarray::Array2<f64>,
        epochs: usize,
        seed: u64,
    ) -> Result<TrainReply, ClientError> {
        let rows: Vec<serde::Value> = data
            .rows()
            .map(|row| serde::Value::Seq(row.iter().map(|&x| serde::Value::Float(x)).collect()))
            .collect();
        let body = serde_json::to_string(&serde::Value::Map(vec![
            ("data".into(), serde::Value::Seq(rows)),
            ("epochs".into(), serde::Value::UInt(epochs as u64)),
            ("seed".into(), serde::Value::UInt(seed)),
        ]))
        .expect("serialize train body")
        .into_bytes();
        let response = self.roundtrip(
            "POST",
            &format!("/v1/models/{model}/train"),
            &[],
            Some(JSON_MIME),
            &body,
            false, // a replayed train would publish a second version
        )?;
        Self::decode_json(&response)
    }

    /// `POST /v1/models/{model}/rollback`: republish retained `version`
    /// as a new one. Not retried on `503` — a replay could republish
    /// twice.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP (`404 version_not_found` when
    /// the version was evicted from history), or decode failure.
    pub fn rollback(&self, model: &str, version: u64) -> Result<RollbackReply, ClientError> {
        let body = serde_json::to_string(&serde::Value::Map(vec![(
            "version".into(),
            serde::Value::UInt(version),
        )]))
        .expect("serialize rollback body")
        .into_bytes();
        let response = self.roundtrip(
            "POST",
            &format!("/v1/models/{model}/rollback"),
            &[],
            Some(JSON_MIME),
            &body,
            false,
        )?;
        Self::decode_json(&response)
    }

    /// `POST /v1/admin/snapshot`: seal a durable snapshot now. Answers
    /// `503 no_persistence` when the server runs without a store. Not
    /// retried — a replay would burn a second snapshot sequence.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport, HTTP, or decode failure.
    pub fn snapshot(&self) -> Result<SnapshotReply, ClientError> {
        let response = self.roundtrip("POST", "/v1/admin/snapshot", &[], None, &[], false)?;
        Self::decode_json(&response)
    }
}

/// Convenience for callers that want dense samples out of a binary
/// response without touching the wire types.
impl BinarySample {
    /// The samples as a dense 0.0/1.0 matrix.
    pub fn to_dense(&self) -> ndarray::Array2<f64> {
        self.samples.to_dense()
    }

    /// Model version the samples were drawn from (wire header).
    pub fn model_version(&self) -> u64 {
        self.samples.header.model_version
    }

    /// `true` when served by the degraded fallback (wire flag).
    pub fn degraded(&self) -> bool {
        self.samples.header.degraded()
    }

    /// The clamp row as `Array1` — helper for tests comparing uploads.
    pub fn row(&self, r: usize) -> Array1<f64> {
        self.to_dense().row(r).to_owned()
    }
}
