//! JSON bodies of the HTTP edge.
//!
//! Response bodies are plain derive-`Serialize` DTOs (the derive also
//! emits `Deserialize`, which the [`crate::Client`] uses to read them
//! back). Request bodies are parsed **leniently** by hand from the
//! [`serde_json::parse_value`] tree instead: the vendored derive
//! rejects any missing field, while the edge wants every request knob
//! optional with serving defaults — `{}` is a valid sample request.

use serde::{Deserialize, Serialize, Value};

/// JSON MIME type.
pub const JSON_MIME: &str = "application/json";

/// One registry entry in `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelInfo {
    /// Registered model name.
    pub name: String,
    /// Current published version.
    pub version: u64,
    /// Visible-layer width.
    pub visible: usize,
    /// Hidden-layer width.
    pub hidden: usize,
}

/// Body of `GET /v1/models`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelList {
    /// Every registered model, in registry (name) order.
    pub models: Vec<ModelInfo>,
}

/// JSON body of a successful `POST /v1/models/{name}/sample` when the
/// client did not negotiate the binary wire format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleReply {
    /// One sampled visible configuration per row (values are 0.0/1.0).
    pub samples: Vec<Vec<f64>>,
    /// Shard that executed the request.
    pub shard: usize,
    /// Model version the samples were drawn from.
    pub model_version: u64,
    /// Total rows of the coalesced batch the request rode in.
    pub coalesced_rows: usize,
    /// `true` when served by the degraded software fallback.
    pub degraded: bool,
}

/// JSON body of a successful `POST /v1/models/{name}/train`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReply {
    /// Version the trained parameters were published under.
    pub new_version: u64,
    /// Shard that trained.
    pub shard: usize,
    /// Minibatches processed in the final epoch.
    pub batches: usize,
    /// Final epoch's mean absolute reconstruction error.
    pub reconstruction_error: f64,
    /// Final epoch's mean gradient L2 norm.
    pub gradient_norm: f64,
}

/// JSON body of a successful `POST /v1/models/{name}/rollback`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollbackReply {
    /// The **new** version the rolled-back parameters were republished
    /// under (versions only move forward; a rollback is a republication
    /// of old parameters, not a rewind of the counter).
    pub new_version: u64,
    /// The retained version whose parameters were restored.
    pub rolled_back_to: u64,
}

/// JSON body of a successful `POST /v1/admin/snapshot`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotReply {
    /// Monotonic sequence number of the sealed snapshot.
    pub sequence: u64,
    /// Snapshot file name inside the store.
    pub file: String,
    /// Encoded snapshot size in bytes.
    pub bytes: u64,
    /// Models captured.
    pub models: usize,
    /// Total retained versions captured across all models.
    pub versions: usize,
}

/// JSON body of every non-2xx answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// Stable machine-readable error code (e.g. `queue_full`).
    pub code: String,
    /// Human-readable description.
    pub error: String,
}

/// Body of `GET /healthz`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Health {
    /// `"ok"` while the service accepts requests, `"draining"` after
    /// shutdown began.
    pub status: String,
    /// Worker shard count.
    pub shards: usize,
}

/// Parsed knobs of a JSON sample request. Every field is optional on
/// the wire; missing knobs take the serving defaults.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleBody {
    /// Chains to draw (`n_samples`), default 1.
    pub n_samples: Option<usize>,
    /// Gibbs steps per chain, default 1.
    pub gibbs_steps: Option<usize>,
    /// Master seed; omitted = shard-lane seeding.
    pub seed: Option<u64>,
    /// Initial visible levels shared by every chain.
    pub clamp: Option<Vec<f64>>,
}

/// Parsed knobs of a JSON train request. `data` is required; the rest
/// default to the `TrainRequest::new` settings.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainBody {
    /// Training rows (`rows × visible`).
    pub data: Vec<Vec<f64>>,
    /// The `k` of CD-k, default 1.
    pub cd_k: Option<usize>,
    /// Learning rate, default 0.05.
    pub learning_rate: Option<f64>,
    /// Minibatch size, default 10.
    pub batch_size: Option<usize>,
    /// Epochs, default 1.
    pub epochs: Option<usize>,
    /// Training seed; omitted = shard-lane seeding.
    pub seed: Option<u64>,
}

fn value_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        Value::UInt(u) => Ok(*u),
        _ => Err(format!("`{what}` must be a non-negative integer")),
    }
}

fn value_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::UInt(u) => Ok(*u as f64),
        Value::Float(f) => Ok(*f),
        _ => Err(format!("`{what}` must be a number")),
    }
}

fn value_f64_seq(v: &Value, what: &str) -> Result<Vec<f64>, String> {
    let seq = v
        .as_seq()
        .ok_or_else(|| format!("`{what}` must be an array of numbers"))?;
    seq.iter().map(|x| value_f64(x, what)).collect()
}

/// Parses a sample-request body. An empty body is the all-defaults
/// request.
///
/// # Errors
///
/// A human-readable reason (mapped to `400 Bad Request`) on malformed
/// JSON, wrong field types, or unknown fields.
pub fn parse_sample_body(body: &[u8]) -> Result<SampleBody, String> {
    if body.is_empty() {
        return Ok(SampleBody::default());
    }
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let pairs = value
        .as_map()
        .ok_or_else(|| "sample body must be a JSON object".to_string())?;
    let mut parsed = SampleBody::default();
    for (key, v) in pairs {
        match key.as_str() {
            "n_samples" => parsed.n_samples = Some(value_u64(v, key)? as usize),
            "gibbs_steps" => parsed.gibbs_steps = Some(value_u64(v, key)? as usize),
            "seed" => parsed.seed = Some(value_u64(v, key)?),
            "clamp" => parsed.clamp = Some(value_f64_seq(v, key)?),
            other => return Err(format!("unknown sample field `{other}`")),
        }
    }
    Ok(parsed)
}

/// Parses a train-request body (`data` required).
///
/// # Errors
///
/// A human-readable reason (mapped to `400 Bad Request`) on malformed
/// JSON, a missing/ragged `data` matrix, wrong field types, or unknown
/// fields.
pub fn parse_train_body(body: &[u8]) -> Result<TrainBody, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let pairs = value
        .as_map()
        .ok_or_else(|| "train body must be a JSON object".to_string())?;
    let mut data: Option<Vec<Vec<f64>>> = None;
    let mut parsed = TrainBody {
        data: Vec::new(),
        cd_k: None,
        learning_rate: None,
        batch_size: None,
        epochs: None,
        seed: None,
    };
    for (key, v) in pairs {
        match key.as_str() {
            "data" => {
                let rows = v
                    .as_seq()
                    .ok_or_else(|| "`data` must be an array of rows".to_string())?;
                let matrix: Vec<Vec<f64>> = rows
                    .iter()
                    .map(|row| value_f64_seq(row, "data row"))
                    .collect::<Result<_, _>>()?;
                if let Some(first) = matrix.first() {
                    if matrix.iter().any(|row| row.len() != first.len()) {
                        return Err("`data` rows have inconsistent lengths".to_string());
                    }
                }
                data = Some(matrix);
            }
            "cd_k" => parsed.cd_k = Some(value_u64(v, key)? as usize),
            "learning_rate" => parsed.learning_rate = Some(value_f64(v, key)?),
            "batch_size" => parsed.batch_size = Some(value_u64(v, key)? as usize),
            "epochs" => parsed.epochs = Some(value_u64(v, key)? as usize),
            "seed" => parsed.seed = Some(value_u64(v, key)?),
            other => return Err(format!("unknown train field `{other}`")),
        }
    }
    parsed.data = data.ok_or_else(|| "train body needs a `data` matrix".to_string())?;
    Ok(parsed)
}

/// Parses a rollback-request body (`version` required).
///
/// # Errors
///
/// A human-readable reason (mapped to `400 Bad Request`) on malformed
/// JSON, a missing `version`, wrong field types, or unknown fields.
pub fn parse_rollback_body(body: &[u8]) -> Result<u64, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value = serde_json::parse_value(text).map_err(|e| e.to_string())?;
    let pairs = value
        .as_map()
        .ok_or_else(|| "rollback body must be a JSON object".to_string())?;
    let mut version = None;
    for (key, v) in pairs {
        match key.as_str() {
            "version" => version = Some(value_u64(v, key)?),
            other => return Err(format!("unknown rollback field `{other}`")),
        }
    }
    version.ok_or_else(|| "rollback body needs a `version`".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_body_is_all_defaults() {
        assert_eq!(parse_sample_body(b"").unwrap(), SampleBody::default());
        assert_eq!(parse_sample_body(b"{}").unwrap(), SampleBody::default());
    }

    #[test]
    fn sample_body_round_trips_fields() {
        let body = br#"{"n_samples": 8, "gibbs_steps": 3, "seed": 42, "clamp": [0.0, 1.0, 0.5]}"#;
        let parsed = parse_sample_body(body).unwrap();
        assert_eq!(parsed.n_samples, Some(8));
        assert_eq!(parsed.gibbs_steps, Some(3));
        assert_eq!(parsed.seed, Some(42));
        assert_eq!(parsed.clamp, Some(vec![0.0, 1.0, 0.5]));
    }

    #[test]
    fn sample_body_rejects_junk() {
        assert!(parse_sample_body(b"[1, 2]").is_err());
        assert!(parse_sample_body(br#"{"n_samples": -3}"#).is_err());
        assert!(parse_sample_body(br#"{"frobnicate": 1}"#).is_err());
        assert!(parse_sample_body(br#"{"clamp": "nope"}"#).is_err());
    }

    #[test]
    fn train_body_requires_rectangular_data() {
        let parsed =
            parse_train_body(br#"{"data": [[0.0, 1.0], [1.0, 0.0]], "epochs": 2}"#).unwrap();
        assert_eq!(parsed.data.len(), 2);
        assert_eq!(parsed.epochs, Some(2));
        assert!(parse_train_body(br#"{"epochs": 2}"#).is_err());
        assert!(parse_train_body(br#"{"data": [[0.0], [1.0, 0.0]]}"#).is_err());
    }

    #[test]
    fn rollback_body_requires_a_version() {
        assert_eq!(parse_rollback_body(br#"{"version": 3}"#).unwrap(), 3);
        assert!(parse_rollback_body(b"{}").is_err());
        assert!(parse_rollback_body(br#"{"version": -1}"#).is_err());
        assert!(parse_rollback_body(br#"{"version": 1, "force": true}"#).is_err());
        assert!(parse_rollback_body(b"[3]").is_err());
    }

    #[test]
    fn reply_dtos_round_trip_through_json() {
        let reply = SampleReply {
            samples: vec![vec![0.0, 1.0], vec![1.0, 1.0]],
            shard: 1,
            model_version: 3,
            coalesced_rows: 16,
            degraded: false,
        };
        let text = serde_json::to_string(&reply).unwrap();
        let back: SampleReply = serde_json::from_str(&text).unwrap();
        assert_eq!(back, reply);

        let err = ErrorReply {
            code: "queue_full".into(),
            error: "try later".into(),
        };
        let text = serde_json::to_string(&err).unwrap();
        let back: ErrorReply = serde_json::from_str(&text).unwrap();
        assert_eq!(back, err);
    }
}
