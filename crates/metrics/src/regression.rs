//! Rating-prediction error metrics for the recommendation-system
//! benchmark (Fig. 9, Table 4).

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// use ember_metrics::mean_absolute_error;
///
/// let mae = mean_absolute_error(&[1.0, 2.0], &[1.5, 1.0]);
/// assert!((mae - 0.75).abs() < 1e-12);
/// ```
pub fn mean_absolute_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(!predictions.is_empty(), "need at least one prediction");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// use ember_metrics::root_mean_squared_error;
///
/// let rmse = root_mean_squared_error(&[0.0, 0.0], &[3.0, 4.0]);
/// assert!((rmse - (12.5f64).sqrt()).abs() < 1e-12);
/// ```
pub fn root_mean_squared_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "prediction/target length mismatch"
    );
    assert!(!predictions.is_empty(), "need at least one prediction");
    (predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / predictions.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_on_exact_predictions() {
        let xs = [1.0, -2.0, 3.5];
        assert_eq!(mean_absolute_error(&xs, &xs), 0.0);
        assert_eq!(root_mean_squared_error(&xs, &xs), 0.0);
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = [1.0, 2.0, 3.0, 4.0];
        let t = [1.5, 1.0, 4.5, 2.0];
        assert!(root_mean_squared_error(&p, &t) >= mean_absolute_error(&p, &t));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }
}
