use ndarray::{Array1, Array2, Axis};
use rand::Rng;
use serde::{Deserialize, Serialize};

use ember_rbm::math::{logsumexp, sigmoid, softplus};
use ember_rbm::Rbm;

/// The result of an AIS run: the log-partition estimate and spread
/// diagnostics over the independent chains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AisEstimate {
    /// `log Ẑ` of the target model.
    pub estimate: f64,
    /// Standard deviation of the per-chain importance weights (in log
    /// space, computed around the estimate) — the ±3σ interval of
    /// Salakhutdinov & Murray.
    pub log_std: f64,
    /// Number of chains used.
    pub chains: usize,
}

/// Annealed importance sampling for RBM partition functions
/// (Salakhutdinov & Murray 2008, the paper's reference \[58\]).
///
/// The base-rate model `p₀` has zero weights and visible biases fitted to
/// nothing (uniform), for which `Z₀ = 2^(m+n)` exactly. A geometric ladder
/// of `β` values interpolates `p_β(v) ∝ e^{−β F_A(v) − (1−β) F_0(v)}`; each
/// chain alternates importance-weight accumulation and one Gibbs transition
/// at the current temperature.
///
/// The mean log probability of data under the model is then
/// `⟨−F(v)⟩ − log Ẑ` ([`Ais::mean_log_probability`]).
///
/// # Example
///
/// ```
/// use ember_metrics::Ais;
///
/// let ais = Ais::new(100, 10);
/// assert_eq!(ais.betas(), 100);
/// assert_eq!(ais.chains(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ais {
    betas: usize,
    chains: usize,
}

impl Ais {
    /// Creates an AIS estimator with `betas` intermediate temperatures and
    /// `chains` independent particles.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(betas: usize, chains: usize) -> Self {
        assert!(betas >= 1, "need at least one temperature");
        assert!(chains >= 1, "need at least one chain");
        Ais { betas, chains }
    }

    /// Number of intermediate temperatures.
    pub fn betas(&self) -> usize {
        self.betas
    }

    /// Number of independent chains.
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Estimates `log Z` of `rbm`.
    pub fn log_partition<R: Rng + ?Sized>(&self, rbm: &Rbm, rng: &mut R) -> AisEstimate {
        let m = rbm.visible_len();
        let n = rbm.hidden_len();
        // Base model: zero weights, zero biases → uniform over v; its
        // log Z is (m+n)·ln2.
        let log_z0 = (m + n) as f64 * std::f64::consts::LN_2;

        let mut log_weights = Vec::with_capacity(self.chains);
        for _ in 0..self.chains {
            // v ~ p0 = uniform.
            let mut v = Array1::from_shape_fn(m, |_| if rng.random_bool(0.5) { 1.0 } else { 0.0 });
            let mut log_w = 0.0;
            let mut beta_prev = 0.0;
            for step in 1..=self.betas {
                let beta = step as f64 / self.betas as f64;
                // Importance weight: p*_{β}(v) / p*_{β_prev}(v) in logs.
                log_w += self.log_p_star(rbm, &v, beta) - self.log_p_star(rbm, &v, beta_prev);
                // Gibbs transition at temperature β (skip after last ratio).
                if step < self.betas {
                    v = self.gibbs_at_beta(rbm, &v, beta, rng);
                }
                beta_prev = beta;
            }
            log_weights.push(log_w);
        }

        let log_mean_w = logsumexp(&log_weights) - (self.chains as f64).ln();
        let estimate = log_mean_w + log_z0;
        let mean = log_weights.iter().sum::<f64>() / self.chains as f64;
        let var = log_weights.iter().map(|w| (w - mean).powi(2)).sum::<f64>() / self.chains as f64;
        AisEstimate {
            estimate,
            log_std: var.sqrt(),
            chains: self.chains,
        }
    }

    /// `log p*_β(v)`: unnormalized log probability of the intermediate
    /// model — the RBM with all parameters scaled by `β`, hiddens
    /// marginalized analytically:
    ///
    /// ```text
    /// log p*_β(v) = β·(b_v·v) + Σ_j softplus(β·act_j)
    /// ```
    ///
    /// At `β = 0` this is the uniform base model (`p*_0(v) = 2ⁿ`, so
    /// `Z₀ = 2^{m+n}`); at `β = 1` it is the target RBM.
    fn log_p_star(&self, rbm: &Rbm, v: &Array1<f64>, beta: f64) -> f64 {
        let act = rbm.weights().t().dot(v) + rbm.hidden_bias();
        let hidden_term: f64 = act.iter().map(|&x| softplus(beta * x)).sum();
        beta * rbm.visible_bias().dot(v) + hidden_term
    }

    /// One Gibbs sweep under the intermediate model at inverse temperature
    /// `β`: `P(h_j|v) = σ(β·act_j)`, `P(v_i|h) = σ(β·(b_i + (Wh)_i))`.
    fn gibbs_at_beta<R: Rng + ?Sized>(
        &self,
        rbm: &Rbm,
        v: &Array1<f64>,
        beta: f64,
        rng: &mut R,
    ) -> Array1<f64> {
        let act_h = (rbm.weights().t().dot(v) + rbm.hidden_bias()) * beta;
        let h = act_h.mapv(|x| {
            if rng.random::<f64>() < sigmoid(x) {
                1.0
            } else {
                0.0
            }
        });
        let act_v = (rbm.weights().dot(&h) + rbm.visible_bias()) * beta;
        act_v.mapv(|x| {
            if rng.random::<f64>() < sigmoid(x) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Mean log probability of `data` under `rbm`:
    /// `⟨−F(v)⟩_data − log Ẑ` — the y-axis of Figs. 7–8.
    pub fn mean_log_probability<R: Rng + ?Sized>(
        &self,
        rbm: &Rbm,
        data: &Array2<f64>,
        rng: &mut R,
    ) -> f64 {
        let log_z = self.log_partition(rbm, rng).estimate;
        let mean_free: f64 = data
            .axis_iter(Axis(0))
            .map(|v| -rbm.free_energy(&v))
            .sum::<f64>()
            / data.nrows() as f64;
        mean_free - log_z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ember_rbm::exact;
    use rand::SeedableRng;

    #[test]
    fn exact_on_zero_weight_model() {
        // With W = 0 the AIS ladder is exact at any chain count: every
        // importance ratio is deterministic.
        let rbm = Rbm::new(5, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let est = Ais::new(50, 5).log_partition(&rbm, &mut rng);
        let truth = exact::log_partition(&rbm);
        assert!(
            (est.estimate - truth).abs() < 1e-9,
            "est {} truth {truth}",
            est.estimate
        );
        assert!(est.log_std < 1e-12);
    }

    #[test]
    fn close_to_enumeration_on_small_models() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for seed in 0..3 {
            let mut prng = rand::rngs::StdRng::seed_from_u64(seed + 10);
            let rbm = Rbm::random(6, 4, 0.5, &mut prng);
            let truth = exact::log_partition(&rbm);
            let est = Ais::new(500, 50).log_partition(&rbm, &mut rng);
            assert!(
                (est.estimate - truth).abs() < 0.3,
                "seed {seed}: est {} vs {truth}",
                est.estimate
            );
        }
    }

    #[test]
    fn mean_log_probability_close_to_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rbm = Rbm::random(6, 3, 0.4, &mut rng);
        let data = Array2::from_shape_fn((10, 6), |(i, j)| ((i + j) % 2) as f64);
        let exact_ll = exact::mean_log_likelihood(&rbm, &data);
        let ais_ll = Ais::new(400, 40).mean_log_probability(&rbm, &data, &mut rng);
        assert!(
            (ais_ll - exact_ll).abs() < 0.3,
            "ais {ais_ll} vs exact {exact_ll}"
        );
    }

    #[test]
    fn more_betas_reduce_bias() {
        // Coarse ladders overestimate variance; check the fine ladder is at
        // least as close on average.
        let mut prng = rand::rngs::StdRng::seed_from_u64(20);
        let rbm = Rbm::random(6, 4, 0.8, &mut prng);
        let truth = exact::log_partition(&rbm);
        let mut err_coarse = 0.0;
        let mut err_fine = 0.0;
        for seed in 0..5 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            err_coarse += (Ais::new(10, 30).log_partition(&rbm, &mut rng).estimate - truth).abs();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            err_fine += (Ais::new(300, 30).log_partition(&rbm, &mut rng).estimate - truth).abs();
        }
        assert!(
            err_fine <= err_coarse + 0.2,
            "fine {err_fine} vs coarse {err_coarse}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_chains() {
        let _ = Ais::new(10, 0);
    }
}
