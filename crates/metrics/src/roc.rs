use serde::{Deserialize, Serialize};

/// A receiver operating characteristic curve with its AUC — the
/// anomaly-detection metric of Fig. 10 / Table 4.
///
/// Build from `(score, is_positive)` pairs where *higher scores mean more
/// anomalous* (for RBM anomaly detection the score is the free energy of
/// the sample, high free energy = poorly modeled = anomalous).
///
/// # Example
///
/// ```
/// use ember_metrics::RocCurve;
///
/// // Perfect separation: positives all score higher.
/// let scores = [0.9, 0.8, 0.2, 0.1];
/// let labels = [true, true, false, false];
/// let roc = RocCurve::new(&scores, &labels);
/// assert!((roc.auc() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    false_positive_rates: Vec<f64>,
    true_positive_rates: Vec<f64>,
    auc: f64,
}

impl RocCurve {
    /// Computes the curve by sweeping a threshold over the sorted scores.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, are empty, contain NaN, or
    /// contain only one class.
    pub fn new(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        assert!(!scores.is_empty(), "need at least one sample");
        assert!(scores.iter().all(|s| !s.is_nan()), "NaN score");
        let positives = labels.iter().filter(|&&l| l).count();
        let negatives = labels.len() - positives;
        assert!(
            positives > 0 && negatives > 0,
            "need both positive and negative samples"
        );

        // Sort by descending score; sweep thresholds between distinct
        // scores, counting cumulative TP/FP.
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("no NaN"));

        let mut fprs = vec![0.0];
        let mut tprs = vec![0.0];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut idx = 0;
        while idx < order.len() {
            // Process ties together so the curve is threshold-consistent.
            let score = scores[order[idx]];
            while idx < order.len() && scores[order[idx]] == score {
                if labels[order[idx]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                idx += 1;
            }
            fprs.push(fp as f64 / negatives as f64);
            tprs.push(tp as f64 / positives as f64);
        }

        // Trapezoidal AUC.
        let mut auc = 0.0;
        for w in fprs.windows(2).zip(tprs.windows(2)) {
            let (fw, tw) = w;
            auc += (fw[1] - fw[0]) * (tw[0] + tw[1]) / 2.0;
        }

        RocCurve {
            false_positive_rates: fprs,
            true_positive_rates: tprs,
            auc,
        }
    }

    /// Area under the curve, in `[0, 1]`.
    pub fn auc(&self) -> f64 {
        self.auc
    }

    /// The FPR axis points (including the (0,0) and (1,1) endpoints).
    pub fn false_positive_rates(&self) -> &[f64] {
        &self.false_positive_rates
    }

    /// The TPR axis points.
    pub fn true_positive_rates(&self) -> &[f64] {
        &self.true_positive_rates
    }

    /// The curve as `(fpr, tpr)` pairs for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.false_positive_rates
            .iter()
            .zip(&self.true_positive_rates)
            .map(|(&f, &t)| (f, t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn perfect_and_inverted_classifiers() {
        let scores = [0.9, 0.8, 0.7, 0.2, 0.1];
        let labels = [true, true, true, false, false];
        assert!((RocCurve::new(&scores, &labels).auc() - 1.0).abs() < 1e-12);
        let inverted: Vec<bool> = labels.iter().map(|l| !l).collect();
        assert!(RocCurve::new(&scores, &inverted).auc() < 1e-12);
    }

    #[test]
    fn random_scores_give_half_auc() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let scores: Vec<f64> = (0..4000).map(|_| rng.random::<f64>()).collect();
        let labels: Vec<bool> = (0..4000).map(|_| rng.random_bool(0.3)).collect();
        let auc = RocCurve::new(&scores, &labels).auc();
        assert!((auc - 0.5).abs() < 0.03, "auc {auc}");
    }

    #[test]
    fn auc_invariant_under_monotone_transform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let scores: Vec<f64> = (0..200).map(|_| rng.random::<f64>() * 4.0 - 2.0).collect();
        let labels: Vec<bool> = scores
            .iter()
            .map(|&s| s + 0.5 * rng.random::<f64>() > 0.0)
            .collect();
        let auc1 = RocCurve::new(&scores, &labels).auc();
        let transformed: Vec<f64> = scores.iter().map(|&s| (s * 2.0).exp()).collect();
        let auc2 = RocCurve::new(&transformed, &labels).auc();
        assert!((auc1 - auc2).abs() < 1e-9);
    }

    #[test]
    fn ties_handled_consistently() {
        // All scores equal: AUC must be exactly 0.5.
        let scores = [1.0, 1.0, 1.0, 1.0];
        let labels = [true, false, true, false];
        assert!((RocCurve::new(&scores, &labels).auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints() {
        let scores = [0.3, 0.6, 0.1];
        let labels = [true, false, true];
        let roc = RocCurve::new(&scores, &labels);
        let pts = roc.points();
        assert_eq!(pts.first(), Some(&(0.0, 0.0)));
        assert_eq!(pts.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    #[should_panic(expected = "both positive and negative")]
    fn rejects_single_class() {
        let _ = RocCurve::new(&[0.1, 0.2], &[true, true]);
    }
}
