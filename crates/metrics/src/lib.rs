//! # ember-metrics
//!
//! The evaluation metrics of the paper's §4.1:
//!
//! * [`Ais`] — annealed importance sampling (Salakhutdinov & Murray 2008)
//!   to estimate the RBM partition function, giving the "average log
//!   probability of the training samples" of Figs. 7–8;
//! * [`kl_divergence`] / [`kl_to_ground_truth`] — the Appendix A bias
//!   study's distance between a trained model and an enumerated ground
//!   truth (Fig. 11);
//! * [`RocCurve`] — receiver operating characteristic and AUC for the
//!   anomaly-detection benchmark (Fig. 10);
//! * [`mean_absolute_error`] — the recommendation-system error metric
//!   (Fig. 9, Table 4);
//! * [`MovingAverage`] — the 10-point smoothing of Fig. 8;
//! * [`empirical_cdf`] — the CDF presentation of Fig. 11.
//!
//! # Example: AIS on a tiny model vs. exact enumeration
//!
//! ```
//! use ember_metrics::Ais;
//! use ember_rbm::{exact, Rbm};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let rbm = Rbm::random(6, 4, 0.4, &mut rng);
//! let ais = Ais::new(200, 30);
//! let est = ais.log_partition(&rbm, &mut rng);
//! let truth = exact::log_partition(&rbm);
//! assert!((est.estimate - truth).abs() < 0.3);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod ais;
mod kl;
mod regression;
mod roc;
mod smooth;

pub use ais::{Ais, AisEstimate};
pub use kl::{empirical_cdf, kl_divergence, kl_to_ground_truth};
pub use regression::{mean_absolute_error, root_mean_squared_error};
pub use roc::RocCurve;
pub use smooth::MovingAverage;
