//! KL divergence and CDF helpers for the Appendix A bias study (Fig. 11).

use ndarray::Array1;

/// `D_KL(p ‖ q) = Σᵢ pᵢ ln(pᵢ/qᵢ)` in nats.
///
/// Zero-probability entries of `p` contribute nothing; zero entries of `q`
/// where `p > 0` yield `+∞` (the divergence is genuinely infinite there).
///
/// # Panics
///
/// Panics if the distributions have different lengths, negative entries, or
/// do not each sum to 1 within `1e-6`.
///
/// # Example
///
/// ```
/// use ember_metrics::kl_divergence;
/// use ndarray::arr1;
///
/// let p = arr1(&[0.5, 0.5]);
/// let q = arr1(&[0.9, 0.1]);
/// let d = kl_divergence(&p, &q);
/// assert!(d > 0.0);
/// assert_eq!(kl_divergence(&p, &p), 0.0);
/// ```
pub fn kl_divergence(p: &Array1<f64>, q: &Array1<f64>) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution lengths differ");
    assert!(
        p.iter().all(|&x| x >= 0.0) && q.iter().all(|&x| x >= 0.0),
        "probabilities must be non-negative"
    );
    assert!((p.sum() - 1.0).abs() < 1e-6, "p must sum to 1");
    assert!((q.sum() - 1.0).abs() < 1e-6, "q must sum to 1");
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi == 0.0 {
            continue;
        }
        if qi == 0.0 {
            return f64::INFINITY;
        }
        total += pi * (pi / qi).ln();
    }
    total.max(0.0)
}

/// KL divergence from an empirical training distribution (the "ground
/// truth" of the Appendix A methodology) to a model's visible
/// distribution: `D_KL(data ‖ model)`.
///
/// `data_hist` is a count/frequency histogram over the same state indexing
/// as `model_dist` (little-endian bit codes); it is normalized internally.
///
/// # Panics
///
/// Panics if the lengths differ or `data_hist` sums to zero.
pub fn kl_to_ground_truth(data_hist: &Array1<f64>, model_dist: &Array1<f64>) -> f64 {
    assert_eq!(data_hist.len(), model_dist.len(), "length mismatch");
    let total = data_hist.sum();
    assert!(total > 0.0, "empty data histogram");
    let p = data_hist.mapv(|c| c / total);
    kl_divergence(&p, model_dist)
}

/// Empirical CDF points of a sample set: returns `(sorted_values,
/// cumulative_fractions)` — every point `(x, y)` says "`y` of the runs had
/// a value of `x` or less" (Fig. 11's presentation).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn empirical_cdf(values: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!values.is_empty(), "need at least one value");
    assert!(values.iter().all(|v| !v.is_nan()), "NaN in CDF input");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = sorted.len() as f64;
    let fractions = (1..=sorted.len()).map(|i| i as f64 / n).collect();
    (sorted, fractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::arr1;

    #[test]
    fn kl_nonnegative_and_zero_iff_equal() {
        let p = arr1(&[0.2, 0.3, 0.5]);
        let q = arr1(&[0.3, 0.3, 0.4]);
        assert!(kl_divergence(&p, &q) > 0.0);
        assert_eq!(kl_divergence(&p, &p), 0.0);
    }

    #[test]
    fn kl_asymmetric() {
        let p = arr1(&[0.9, 0.1]);
        let q = arr1(&[0.5, 0.5]);
        let pq = kl_divergence(&p, &q);
        let qp = kl_divergence(&q, &p);
        assert!((pq - qp).abs() > 1e-3);
    }

    #[test]
    fn kl_infinite_on_missing_support() {
        let p = arr1(&[0.5, 0.5]);
        let q = arr1(&[1.0, 0.0]);
        assert!(kl_divergence(&p, &q).is_infinite());
    }

    #[test]
    fn kl_handles_zero_p_entries() {
        let p = arr1(&[1.0, 0.0]);
        let q = arr1(&[0.5, 0.5]);
        let d = kl_divergence(&p, &q);
        assert!((d - (1.0f64 / 0.5).ln()).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_normalizes_histogram() {
        let hist = arr1(&[30.0, 10.0, 0.0, 0.0]);
        let model = arr1(&[0.25, 0.25, 0.25, 0.25]);
        let d = kl_to_ground_truth(&hist, &model);
        let p = arr1(&[0.75, 0.25, 0.0, 0.0]);
        assert!((d - kl_divergence(&p, &model)).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let (xs, ys) = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(xs, vec![1.0, 2.0, 2.0, 3.0]);
        assert!((ys.last().unwrap() - 1.0).abs() < 1e-12);
        for w in ys.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        let p = arr1(&[0.5, 0.2]);
        let q = arr1(&[0.5, 0.5]);
        let _ = kl_divergence(&p, &q);
    }
}
