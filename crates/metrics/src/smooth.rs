use serde::{Deserialize, Serialize};

/// Moving-average smoothing of a trace — Fig. 8 smooths the log-probability
/// trajectories "using a moving average of 10 points".
///
/// # Example
///
/// ```
/// use ember_metrics::MovingAverage;
///
/// let smoothed = MovingAverage::new(2).apply(&[1.0, 3.0, 5.0, 7.0]);
/// assert_eq!(smoothed, vec![1.0, 2.0, 4.0, 6.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
}

impl MovingAverage {
    /// Creates a smoother with the given window length.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        MovingAverage { window }
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Smooths the trace: output `i` is the mean of the last
    /// `min(i+1, window)` inputs (warm-up uses the available prefix).
    pub fn apply(&self, trace: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(trace.len());
        let mut sum = 0.0;
        for (i, &x) in trace.iter().enumerate() {
            sum += x;
            if i >= self.window {
                sum -= trace[i - self.window];
            }
            let count = (i + 1).min(self.window);
            out.push(sum / count as f64);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_is_identity() {
        let xs = [4.0, -1.0, 2.5];
        assert_eq!(MovingAverage::new(1).apply(&xs), xs.to_vec());
    }

    #[test]
    fn constant_input_unchanged() {
        let xs = [2.0; 20];
        assert!(MovingAverage::new(10)
            .apply(&xs)
            .iter()
            .all(|&y| (y - 2.0).abs() < 1e-12));
    }

    #[test]
    fn smooths_alternating_noise() {
        let xs: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let smoothed = MovingAverage::new(10).apply(&xs);
        // After warm-up, a window of 10 over ±1 alternation averages to 0.
        assert!(smoothed[20..].iter().all(|&y| y.abs() < 1e-12));
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(MovingAverage::new(5).apply(&[]).is_empty());
    }

    #[test]
    fn matches_naive_windowed_mean() {
        let xs: Vec<f64> = (0..25).map(|i| (i as f64 * 0.7).sin()).collect();
        let got = MovingAverage::new(7).apply(&xs);
        for i in 0..xs.len() {
            let lo = i.saturating_sub(6);
            let expected = xs[lo..=i].iter().sum::<f64>() / (i - lo + 1) as f64;
            assert!((got[i] - expected).abs() < 1e-12, "index {i}");
        }
    }
}
