//! Property-based tests of the metric implementations.

use ember_metrics::{
    empirical_cdf, kl_divergence, mean_absolute_error, Ais, MovingAverage, RocCurve,
};
use ember_rbm::{exact, Rbm};
use ndarray::Array1;
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_distribution(len: usize) -> impl Strategy<Value = Array1<f64>> {
    proptest::collection::vec(0.01f64..1.0, len).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        Array1::from_iter(raw.into_iter().map(|x| x / sum))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gibbs' inequality: KL ≥ 0, zero iff equal.
    #[test]
    fn kl_nonnegative(p in arb_distribution(8), q in arb_distribution(8)) {
        let d = kl_divergence(&p, &q);
        prop_assert!(d >= 0.0);
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-12);
    }

    /// AUC is within [0, 1] and invariant under strictly monotone score
    /// transformations.
    #[test]
    fn auc_bounds_and_invariance(
        scores in proptest::collection::vec(-10.0f64..10.0, 4..40),
        flips in any::<u64>(),
    ) {
        let labels: Vec<bool> = (0..scores.len()).map(|i| (flips >> (i % 64)) & 1 == 1).collect();
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        let auc = RocCurve::new(&scores, &labels).auc();
        prop_assert!((0.0..=1.0).contains(&auc));
        let transformed: Vec<f64> = scores.iter().map(|s| s.exp() + 1.0).collect();
        let auc2 = RocCurve::new(&transformed, &labels).auc();
        prop_assert!((auc - auc2).abs() < 1e-9);
    }

    /// A moving average stays within [min, max] of its input.
    #[test]
    fn moving_average_bounded(xs in proptest::collection::vec(-5.0f64..5.0, 1..50), w in 1usize..12) {
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let smoothed = MovingAverage::new(w).apply(&xs);
        prop_assert_eq!(smoothed.len(), xs.len());
        prop_assert!(smoothed.iter().all(|&y| y >= min - 1e-12 && y <= max + 1e-12));
    }

    /// The empirical CDF is monotone, in [0,1], and sorted.
    #[test]
    fn cdf_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let (vals, fracs) = empirical_cdf(&xs);
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!((fracs.last().unwrap() - 1.0).abs() < 1e-12);
    }

    /// MAE is translation-covariant: shifting predictions by c shifts the
    /// error by at most |c|.
    #[test]
    fn mae_triangle(preds in proptest::collection::vec(-5.0f64..5.0, 1..20), c in -3.0f64..3.0) {
        let targets: Vec<f64> = preds.iter().map(|p| p * 0.9).collect();
        let base = mean_absolute_error(&preds, &targets);
        let shifted: Vec<f64> = preds.iter().map(|p| p + c).collect();
        let moved = mean_absolute_error(&shifted, &targets);
        prop_assert!(moved <= base + c.abs() + 1e-12);
        prop_assert!(moved >= base - c.abs() - 1e-12);
    }

    /// AIS is exact on factorized (zero-weight) models of any size.
    #[test]
    fn ais_exact_on_factorized(m in 2usize..8, n in 1usize..6, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rbm = Rbm::new(m, n);
        // Biases only: model stays factorized, AIS ratios stay exact in
        // expectation with tiny variance.
        use rand::Rng;
        for b in rbm.visible_bias_mut().iter_mut() {
            *b = rng.random_range(-1.0..1.0);
        }
        let est = Ais::new(60, 8).log_partition(&rbm, &mut rng);
        let truth = exact::log_partition(&rbm);
        prop_assert!((est.estimate - truth).abs() < 0.2, "est {} truth {}", est.estimate, truth);
    }
}
