//! Property-based tests of the analog component invariants.

use ember_analog::{ChargePump, Comparator, Dac, Dtc, NoiseModel, SigmoidUnit, ThermalRng};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sigmoid unit is monotone and bounded for any legal tuning.
    #[test]
    fn sigmoid_monotone_bounded(
        gain in 0.1f64..8.0,
        threshold in -2.0f64..2.0,
        saturation in 0.0f64..0.4,
        x in -20.0f64..20.0,
    ) {
        let s = SigmoidUnit::new(gain, threshold, saturation).unwrap();
        let y = s.transfer(x);
        prop_assert!((0.0..=1.0).contains(&y));
        let y2 = s.transfer(x + 0.5);
        prop_assert!(y2 >= y - 1e-12);
    }

    /// Charge-pump voltages never leave the rails, and the closed form
    /// matches iterated packets for any ratio/count.
    #[test]
    fn pump_rails_and_closed_form(
        ratio in 1e-4f64..0.5,
        v0 in 0.0f64..1.0,
        packets in 1u32..64,
        up in any::<bool>(),
    ) {
        let pump = ChargePump::new(ratio).unwrap();
        let mut v = v0;
        for _ in 0..packets {
            v = if up { pump.increment(v) } else { pump.decrement(v) };
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let closed = pump.apply_packets(v0, packets, up);
        prop_assert!((v - closed).abs() < 1e-9);
    }

    /// Pump steps are strictly smaller near the destination rail
    /// (the f_ij nonlinearity of Eq. 12).
    #[test]
    fn pump_step_shrinks_toward_rail(ratio in 1e-3f64..0.3, v in 0.05f64..0.45) {
        let pump = ChargePump::new(ratio).unwrap();
        prop_assert!(pump.step_at(v, true) > pump.step_at(1.0 - v + 0.0, true) - 1e-15);
        prop_assert!(pump.step_at(1.0 - v, false) > pump.step_at(v, false) - 1e-15);
    }

    /// DAC quantization error is at most half an LSB and quantization is
    /// idempotent.
    #[test]
    fn dac_error_bound(bits in 1u32..12, x in 0.0f64..1.0) {
        let dac = Dac::new(bits).unwrap();
        let q = dac.quantize(x, 0.0, 1.0);
        prop_assert!((q - x).abs() <= dac.max_error(0.0, 1.0) + 1e-12);
        prop_assert_eq!(dac.quantize(q, 0.0, 1.0), q);
    }

    /// The DTC is monotone even with bow nonlinearity.
    #[test]
    fn dtc_monotone(inl in -0.05f64..0.05, x in 0.0f64..0.95) {
        let dtc = Dtc::new(8, inl).unwrap();
        prop_assert!(dtc.convert(x + 0.05) >= dtc.convert(x) - 1e-12);
    }

    /// Comparator respects certainty regardless of the noise profile.
    #[test]
    fn comparator_certainty(seed in any::<u64>(), swing in 0.05f64..0.5, gf in 0.0f64..1.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let noise = ThermalRng::with_profile(swing, gf).unwrap();
        let cmp = Comparator::ideal();
        prop_assert!(cmp.sample(1.1, &noise, &mut rng));
        prop_assert!(!cmp.sample(-0.1, &noise, &mut rng));
    }

    /// Variation maps are positive and mean ≈ 1 for any legal RMS.
    #[test]
    fn variation_positive(seed in any::<u64>(), rms in 0.0f64..0.5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let noise = NoiseModel::new(rms, 0.0).unwrap();
        let map = noise.sample_variation((12, 12), &mut rng);
        prop_assert!(map.factors().iter().all(|&f| f > 0.0));
    }

    /// Noiseless perturbation is the identity for any input.
    #[test]
    fn zero_noise_identity(x in -100.0f64..100.0, scale in 0.0f64..10.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let noise = NoiseModel::noiseless();
        prop_assert_eq!(noise.perturb(x, scale, &mut rng), x);
        prop_assert_eq!(noise.perturb_relative(x, &mut rng), x);
    }
}
