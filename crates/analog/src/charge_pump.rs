use serde::{Deserialize, Serialize};

use crate::{AnalogError, VDD};

/// Behavioral model of the charge-redistribution training circuit of
/// Fig. 14 — the mechanism that lets the Boltzmann gradient follower adjust
/// a coupling weight *in place* (§3.3, Appendix B.4).
///
/// Each coupling parameter `Wᵢⱼ` is stored as the gate voltage `V_gate` of a
/// transistor acting as a configurable resistor. During the pre-charge phase
/// a small capacitor `Cp` is charged to `Vdd` (and `Cn` discharged to
/// ground); during the charge-transfer phase, if the gating condition
/// `vᵢ·hⱼ = 1` holds, the packet is redistributed onto `C_gate`:
///
/// ```text
/// increment:  V⁺ = V + r · (Vdd − V)      (charge share from Cp)
/// decrement:  V⁻ = V − r · V              (charge share into Cn)
/// ```
///
/// where `r = Cp / (Cp + C_gate)` is the charge-sharing ratio. The step is
/// therefore *state-dependent*: it shrinks near the rails, which is exactly
/// the nonlinearity `f_ij(·)` the paper folds into Eq. 12. Per-device
/// variation scales `r` multiplicatively.
///
/// # Example
///
/// ```
/// use ember_analog::ChargePump;
///
/// # fn main() -> Result<(), ember_analog::AnalogError> {
/// let pump = ChargePump::new(1.0 / 256.0)?;
/// let v0 = 0.5;
/// let up = pump.increment(v0);
/// let down = pump.decrement(v0);
/// assert!(up > v0 && down < v0);
/// // Near the top rail the increment step shrinks.
/// assert!(pump.increment(0.99) - 0.99 < up - v0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChargePump {
    ratio: f64,
    device_factor: f64,
}

impl ChargePump {
    /// Creates a pump with charge-sharing ratio `r = Cp / (Cp + C_gate)`.
    ///
    /// The paper notes the packet "can be accurately controlled to achieve a
    /// step size of only a small number of electrons"; typical useful ratios
    /// are `2⁻⁶ … 2⁻¹²` of the rail.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidParameter`] if `ratio ∉ (0, 0.5]`.
    pub fn new(ratio: f64) -> Result<Self, AnalogError> {
        Self::with_device_factor(ratio, 1.0)
    }

    /// Creates a pump whose effective ratio is scaled by a per-device
    /// process-variation factor (sampled once at "fabrication" by
    /// [`crate::NoiseModel::sample_variation`]).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidParameter`] if `ratio ∉ (0, 0.5]` or
    /// `device_factor ∉ (0, 2]`.
    pub fn with_device_factor(ratio: f64, device_factor: f64) -> Result<Self, AnalogError> {
        if !(ratio > 0.0 && ratio <= 0.5) {
            return Err(AnalogError::InvalidParameter {
                name: "ratio",
                reason: "charge-sharing ratio must be in (0, 0.5]",
            });
        }
        if !(device_factor > 0.0 && device_factor <= 2.0) {
            return Err(AnalogError::InvalidParameter {
                name: "device_factor",
                reason: "variation factor must be in (0, 2]",
            });
        }
        Ok(ChargePump {
            ratio,
            device_factor,
        })
    }

    /// The nominal charge-sharing ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// The effective ratio after device variation.
    pub fn effective_ratio(&self) -> f64 {
        (self.ratio * self.device_factor).min(0.5)
    }

    /// One positive-phase packet: raises the gate voltage toward `Vdd`.
    #[must_use]
    pub fn increment(&self, v_gate: f64) -> f64 {
        let v = v_gate.clamp(0.0, VDD);
        v + self.effective_ratio() * (VDD - v)
    }

    /// One negative-phase packet: lowers the gate voltage toward ground.
    #[must_use]
    pub fn decrement(&self, v_gate: f64) -> f64 {
        let v = v_gate.clamp(0.0, VDD);
        v - self.effective_ratio() * v
    }

    /// Applies `n` packets in the given direction (`true` = increment).
    ///
    /// Equivalent to folding [`ChargePump::increment`]/[`ChargePump::decrement`]
    /// `n` times, but in closed form — used when a behavioral step covers
    /// multiple hardware cycles.
    #[must_use]
    pub fn apply_packets(&self, v_gate: f64, n: u32, increment: bool) -> f64 {
        let r = self.effective_ratio();
        let keep = (1.0 - r).powi(n as i32);
        let v = v_gate.clamp(0.0, VDD);
        if increment {
            VDD - (VDD - v) * keep
        } else {
            v * keep
        }
    }

    /// The local step size `dV` for a single packet at operating point `v`
    /// — the derivative magnitude of the `f_ij` nonlinearity.
    pub fn step_at(&self, v_gate: f64, increment: bool) -> f64 {
        if increment {
            self.increment(v_gate) - v_gate.clamp(0.0, VDD)
        } else {
            v_gate.clamp(0.0, VDD) - self.decrement(v_gate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_shrink_near_rails() {
        let pump = ChargePump::new(0.01).unwrap();
        assert!(pump.step_at(0.9, true) < pump.step_at(0.1, true));
        assert!(pump.step_at(0.1, false) < pump.step_at(0.9, false));
    }

    #[test]
    fn voltage_never_leaves_rails() {
        let pump = ChargePump::new(0.25).unwrap();
        let mut v = 0.5;
        for _ in 0..100 {
            v = pump.increment(v);
            assert!((0.0..=VDD).contains(&v));
        }
        for _ in 0..200 {
            v = pump.decrement(v);
            assert!((0.0..=VDD).contains(&v));
        }
    }

    #[test]
    fn increment_decrement_approximately_invert_midrange() {
        // Near mid-rail the up and down steps are nearly equal, so the
        // composition is close to identity (first-order in r).
        let pump = ChargePump::new(1.0 / 512.0).unwrap();
        let v = 0.5;
        let roundtrip = pump.decrement(pump.increment(v));
        assert!((roundtrip - v).abs() < 1e-5);
    }

    #[test]
    fn apply_packets_matches_folding() {
        let pump = ChargePump::new(0.03).unwrap();
        let mut v = 0.2;
        for _ in 0..7 {
            v = pump.increment(v);
        }
        let closed = pump.apply_packets(0.2, 7, true);
        assert!((v - closed).abs() < 1e-12);

        let mut w = 0.8;
        for _ in 0..5 {
            w = pump.decrement(w);
        }
        let closed = pump.apply_packets(0.8, 5, false);
        assert!((w - closed).abs() < 1e-12);
    }

    #[test]
    fn device_factor_scales_step() {
        let nominal = ChargePump::new(0.01).unwrap();
        let fast = ChargePump::with_device_factor(0.01, 1.5).unwrap();
        assert!(fast.step_at(0.5, true) > nominal.step_at(0.5, true));
    }

    #[test]
    fn fixed_point_of_alternation_is_interior() {
        // Alternating +/- packets converge to v* where r(1-v) = r v, i.e. 0.5.
        let pump = ChargePump::new(0.05).unwrap();
        let mut v = 0.05;
        for _ in 0..500 {
            v = pump.decrement(pump.increment(v));
        }
        assert!((v - 0.5).abs() < 0.05, "fixed point {v}");
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ChargePump::new(0.0).is_err());
        assert!(ChargePump::new(0.9).is_err());
        assert!(ChargePump::with_device_factor(0.01, 0.0).is_err());
        assert!(ChargePump::with_device_factor(0.01, 3.0).is_err());
    }
}
