use serde::{Deserialize, Serialize};

use crate::{AnalogError, VDD};

/// Behavioral model of the sigmoid unit of Fig. 13(a).
///
/// The circuit is a differential-to-single-ended amplifier whose gain is
/// intentionally set low so its transfer function resembles the logistic
/// `S(x) = 1 / (1 + e^{−c₁(x−c₂)})` (Appendix B.2). The two
/// hyper-parameters map to circuit knobs: `c₁` (slope) is tuned by the bias
/// current `V_hp`, `c₂` (threshold) by the input common mode. The output is
/// hard-clipped to the rails `[0, Vdd]`, which deviates from an ideal
/// logistic only in the deep-saturation tails.
///
/// # Example
///
/// ```
/// use ember_analog::SigmoidUnit;
///
/// let s = SigmoidUnit::ideal();
/// assert!((s.transfer(0.0) - 0.5).abs() < 1e-12);
/// assert!(s.transfer(10.0) > 0.99);
/// assert!(s.transfer(-10.0) < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SigmoidUnit {
    gain: f64,
    threshold: f64,
    saturation: f64,
}

impl SigmoidUnit {
    /// An ideal logistic unit: `c₁ = 1`, `c₂ = 0`, no extra saturation.
    pub fn ideal() -> Self {
        SigmoidUnit {
            gain: 1.0,
            threshold: 0.0,
            saturation: 0.0,
        }
    }

    /// Creates a unit with explicit hyper-parameters.
    ///
    /// * `gain` — the logistic slope `c₁` (set by the amplifier bias).
    /// * `threshold` — the input offset `c₂`.
    /// * `saturation` — fraction of the output range lost to early rail
    ///   clipping (`0.0` = ideal; e.g. `0.02` clips the top and bottom 2%).
    ///
    /// # Errors
    ///
    /// * [`AnalogError::InvalidParameter`] if `gain ≤ 0`, or `saturation`
    ///   is outside `[0, 0.5)`.
    pub fn new(gain: f64, threshold: f64, saturation: f64) -> Result<Self, AnalogError> {
        if gain <= 0.0 || !gain.is_finite() {
            return Err(AnalogError::InvalidParameter {
                name: "gain",
                reason: "must be positive and finite",
            });
        }
        if !(0.0..0.5).contains(&saturation) {
            return Err(AnalogError::InvalidParameter {
                name: "saturation",
                reason: "must be in [0, 0.5)",
            });
        }
        Ok(SigmoidUnit {
            gain,
            threshold,
            saturation,
        })
    }

    /// The logistic slope `c₁`.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// The input threshold `c₂`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The transfer function: logistic response clipped to the rails.
    ///
    /// Input is the summed node current (in normalized units); output is a
    /// voltage in `[0, Vdd]` interpreted downstream as `P(node = 1)`.
    pub fn transfer(&self, x: f64) -> f64 {
        let ideal = 1.0 / (1.0 + (-(self.gain) * (x - self.threshold)).exp());
        if self.saturation == 0.0 {
            return ideal.clamp(0.0, VDD);
        }
        // Early rail clipping: rescale so [sat, 1-sat] maps onto [0, 1].
        let stretched = (ideal - self.saturation) / (1.0 - 2.0 * self.saturation);
        stretched.clamp(0.0, VDD)
    }

    /// Applies the transfer function element-wise.
    pub fn transfer_slice(&self, xs: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), out.len(), "output slice length mismatch");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.transfer(x);
        }
    }

    /// Maximum absolute deviation from the ideal logistic over `[-8, 8]`,
    /// measured on a fine grid. Used in tests and to report model fidelity
    /// ("a modified inverter can approximate the function admirably", §3.2).
    pub fn max_deviation_from_logistic(&self) -> f64 {
        let mut worst = 0.0f64;
        let steps = 1600;
        for k in 0..=steps {
            let x = -8.0 + 16.0 * k as f64 / steps as f64;
            let ideal = 1.0 / (1.0 + (-x).exp());
            let dev = (self.transfer(x) - ideal).abs();
            worst = worst.max(dev);
        }
        worst
    }
}

impl Default for SigmoidUnit {
    fn default() -> Self {
        SigmoidUnit::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_matches_logistic() {
        let s = SigmoidUnit::ideal();
        for &x in &[-3.0f64, -1.0, 0.0, 0.5, 2.0] {
            let expected = 1.0 / (1.0 + (-x).exp());
            assert!((s.transfer(x) - expected).abs() < 1e-12);
        }
        assert!(s.max_deviation_from_logistic() < 1e-12);
    }

    #[test]
    fn gain_steepens_curve() {
        let shallow = SigmoidUnit::new(0.5, 0.0, 0.0).unwrap();
        let steep = SigmoidUnit::new(4.0, 0.0, 0.0).unwrap();
        assert!(steep.transfer(1.0) > shallow.transfer(1.0));
        assert!(steep.transfer(-1.0) < shallow.transfer(-1.0));
    }

    #[test]
    fn threshold_shifts_midpoint() {
        let s = SigmoidUnit::new(1.0, 2.0, 0.0).unwrap();
        assert!((s.transfer(2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturation_clips_tails() {
        let s = SigmoidUnit::new(1.0, 0.0, 0.05).unwrap();
        assert_eq!(s.transfer(10.0), 1.0);
        assert_eq!(s.transfer(-10.0), 0.0);
        // Midpoint is preserved.
        assert!((s.transfer(0.0) - 0.5).abs() < 1e-12);
        // Deviation is bounded by the clip fraction (plus rescale effect).
        assert!(s.max_deviation_from_logistic() < 0.06);
    }

    #[test]
    fn output_always_within_rails() {
        let s = SigmoidUnit::new(3.0, -1.0, 0.1).unwrap();
        for k in -100..=100 {
            let y = s.transfer(k as f64 * 0.2);
            assert!((0.0..=VDD).contains(&y));
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        let s = SigmoidUnit::new(2.0, 0.3, 0.02).unwrap();
        let mut prev = s.transfer(-8.0);
        for k in 1..=160 {
            let y = s.transfer(-8.0 + k as f64 * 0.1);
            assert!(y >= prev - 1e-12);
            prev = y;
        }
    }

    #[test]
    fn rejects_bad_params() {
        assert!(SigmoidUnit::new(0.0, 0.0, 0.0).is_err());
        assert!(SigmoidUnit::new(-1.0, 0.0, 0.0).is_err());
        assert!(SigmoidUnit::new(1.0, 0.0, 0.5).is_err());
        assert!(SigmoidUnit::new(f64::NAN, 0.0, 0.0).is_err());
    }

    #[test]
    fn transfer_slice_matches_scalar() {
        let s = SigmoidUnit::new(1.5, 0.2, 0.01).unwrap();
        let xs = [-2.0, 0.0, 2.0];
        let mut out = [0.0; 3];
        s.transfer_slice(&xs, &mut out);
        for (o, &x) in out.iter().zip(&xs) {
            assert_eq!(*o, s.transfer(x));
        }
    }
}
