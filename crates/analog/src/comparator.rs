use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{AnalogError, ThermalRng};

/// Behavioral model of the dynamic comparator of Fig. 13(c).
///
/// The comparator receives the sigmoid unit's output (a probability encoded
/// as a voltage) on one input and the thermal-noise reference on the other;
/// its latched digital output is therefore a Bernoulli sample with success
/// probability equal to the sigmoid output (Appendix B.3). A real dynamic
/// comparator adds a small input-referred offset; we expose it as a model
/// parameter.
///
/// # Example
///
/// ```
/// use ember_analog::{Comparator, ThermalRng};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let cmp = Comparator::ideal();
/// let noise = ThermalRng::default();
/// let hits = (0..4000).filter(|_| cmp.sample(0.25, &noise, &mut rng)).count();
/// let freq = hits as f64 / 4000.0;
/// assert!((freq - 0.25).abs() < 0.03);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparator {
    offset: f64,
}

impl Comparator {
    /// A zero-offset comparator.
    pub fn ideal() -> Self {
        Comparator { offset: 0.0 }
    }

    /// A comparator with a fixed input-referred offset (in probability
    /// units; positive offset biases the output toward 1).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidParameter`] if `offset` is not in `[-0.5, 0.5]`.
    pub fn with_offset(offset: f64) -> Result<Self, AnalogError> {
        if !(-0.5..=0.5).contains(&offset) {
            return Err(AnalogError::InvalidParameter {
                name: "offset",
                reason: "must be in [-0.5, 0.5]",
            });
        }
        Ok(Comparator { offset })
    }

    /// The input-referred offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Compares `probability` (the sigmoid output, in `[0, 1]`) against one
    /// draw from the noise reference; returns the latched digital decision.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        probability: f64,
        noise: &ThermalRng,
        rng: &mut R,
    ) -> bool {
        let reference = noise.sample_unit(rng);
        probability + self.offset > reference
    }

    /// Samples a whole layer at once: `out[i] = sample(probs[i])`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn sample_slice<R: Rng + ?Sized>(
        &self,
        probs: &[f64],
        noise: &ThermalRng,
        rng: &mut R,
        out: &mut [bool],
    ) {
        assert_eq!(probs.len(), out.len(), "output slice length mismatch");
        for (o, &p) in out.iter_mut().zip(probs) {
            *o = self.sample(p, noise, rng);
        }
    }
}

impl Default for Comparator {
    fn default() -> Self {
        Comparator::ideal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn frequencies_match_probabilities() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cmp = Comparator::ideal();
        let noise = ThermalRng::default();
        for &p in &[0.1, 0.5, 0.9] {
            let hits = (0..8000)
                .filter(|_| cmp.sample(p, &noise, &mut rng))
                .count();
            let freq = hits as f64 / 8000.0;
            assert!((freq - p).abs() < 0.02, "p={p} freq={freq}");
        }
    }

    #[test]
    fn extreme_probabilities_are_deterministic() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cmp = Comparator::ideal();
        let noise = ThermalRng::default();
        assert!((0..100).all(|_| cmp.sample(1.01, &noise, &mut rng)));
        assert!((0..100).all(|_| !cmp.sample(-0.01, &noise, &mut rng)));
    }

    #[test]
    fn offset_biases_output() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let biased = Comparator::with_offset(0.2).unwrap();
        let noise = ThermalRng::default();
        let hits = (0..4000)
            .filter(|_| biased.sample(0.5, &noise, &mut rng))
            .count();
        let freq = hits as f64 / 4000.0;
        assert!((freq - 0.7).abs() < 0.03, "freq {freq}");
    }

    #[test]
    fn rejects_huge_offset() {
        assert!(Comparator::with_offset(0.9).is_err());
    }

    #[test]
    fn slice_sampling_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let cmp = Comparator::ideal();
        let noise = ThermalRng::default();
        let probs = [0.0, 1.0, 0.5];
        let mut out = [false; 3];
        cmp.sample_slice(&probs, &noise, &mut rng, &mut out);
        assert!(!out[0]);
        assert!(out[1]);
    }
}
