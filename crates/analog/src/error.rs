use std::error::Error;
use std::fmt;

/// Errors produced when configuring analog circuit models.
///
/// # Example
///
/// ```
/// use ember_analog::{Dac, AnalogError};
///
/// let err = Dac::new(0).unwrap_err();
/// assert!(matches!(err, AnalogError::InvalidBits(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalogError {
    /// Converter resolution must be between 1 and 16 bits.
    InvalidBits(u32),
    /// A parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::InvalidBits(bits) => {
                write!(f, "converter resolution must be 1..=16 bits, got {bits}")
            }
            AnalogError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for AnalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_sendable() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AnalogError>();
    }

    #[test]
    fn display_messages() {
        assert!(AnalogError::InvalidBits(20).to_string().contains("20"));
        let e = AnalogError::InvalidParameter {
            name: "gain",
            reason: "must be positive",
        };
        assert!(e.to_string().contains("gain"));
    }
}
