//! # ember-analog
//!
//! Behavioral models of the analog circuits that augment the Ising substrate
//! for RBM support (paper §3.2, §3.3 and Appendix B).
//!
//! All voltages are normalized to `Vdd = 1.0`, with the common-mode level
//! `Vcm = 0.5` (`Vdd/2`, as in Fig. 12). The models capture the *behavior*
//! (transfer curves, quantization, stochastic comparison, charge packets)
//! rather than transistor-level detail — the same abstraction level as the
//! paper's Matlab behavioral models (§4.1).
//!
//! | Circuit (paper) | Model |
//! |---|---|
//! | Sigmoid unit, Fig. 13(a) | [`SigmoidUnit`] — low-gain differential amp whose transfer approximates `σ(c₁(x−c₂))`, clipped to the rails |
//! | Thermal-noise RNG, Fig. 13(b) | [`ThermalRng`] — amplified diode noise, clipped to `Vcm ± A·Vnoise` |
//! | Dynamic comparator, Fig. 13(c) | [`Comparator`] — latched compare with input-referred offset |
//! | DAC / DTC / ADC | [`Dac`], [`Dtc`], [`Adc`] — uniform quantizers (paper uses 8-bit converters) |
//! | Charge-pump trainer, Fig. 14 | [`ChargePump`] — charge-redistribution weight increment/decrement with rail-dependent step (the `f_ij` of Eq. 12) |
//! | Process variation + circuit noise (§4.5) | [`NoiseModel`] — static Gaussian variation and dynamic Gaussian noise, RMS-parameterized |
//!
//! # Example
//!
//! ```
//! use ember_analog::{SigmoidUnit, ThermalRng, Comparator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let sigmoid = SigmoidUnit::ideal();
//! let noise = ThermalRng::new(0.5);
//! let comparator = Comparator::ideal();
//!
//! // A strongly positive summed current should almost always sample 1.
//! let p = sigmoid.transfer(4.0);
//! let ones = (0..1000)
//!     .filter(|_| comparator.sample(p, &noise, &mut rng))
//!     .count();
//! assert!(ones > 900);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod charge_pump;
mod comparator;
mod converter;
mod error;
mod noise;
mod rng;
mod sigmoid;

pub use charge_pump::ChargePump;
pub use comparator::Comparator;
pub use converter::{Adc, Dac, Dtc};
pub use error::AnalogError;
pub use noise::{NoiseModel, VariationMap};
pub use rng::ThermalRng;
pub use sigmoid::SigmoidUnit;

/// Supply voltage every model is normalized to.
pub const VDD: f64 = 1.0;

/// Common-mode voltage (`Vdd / 2`, Fig. 12).
pub const VCM: f64 = VDD / 2.0;
