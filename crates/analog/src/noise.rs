use ndarray::{Array1, Array2};
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::AnalogError;

/// Static + dynamic non-ideality model for the analog substrate (§4.5).
///
/// The paper's robustness study injects two Gaussian disturbance classes,
/// each parameterized by an RMS value between 3% and 30%:
///
/// * **static variation** — per-device resistance mismatch of the coupling
///   units, sampled once at "fabrication" and frozen for the lifetime of the
///   chip ([`NoiseModel::sample_variation`] / [`NoiseModel::sample_variation_vec`]);
/// * **dynamic noise** — cycle-to-cycle circuit noise at both the nodes and
///   the coupling units ([`NoiseModel::perturb`] and
///   [`NoiseModel::perturb_relative`]).
///
/// A result pair `(RMS_variation, RMS_noise)` identifies one experimental
/// configuration, e.g. `(0.1, 0.1)` in Figures 8–10.
///
/// # Example
///
/// ```
/// use ember_analog::NoiseModel;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ember_analog::AnalogError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let noise = NoiseModel::new(0.1, 0.05)?;
/// let map = noise.sample_variation((4, 3), &mut rng);
/// assert_eq!(map.factors().dim(), (4, 3));
/// let x = noise.perturb(1.0, 1.0, &mut rng);
/// assert!((x - 1.0).abs() < 1.0); // perturbed but bounded w.h.p.
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    variation_rms: f64,
    noise_rms: f64,
}

impl NoiseModel {
    /// A perfectly clean substrate: the `(0.0, 0.0)` configuration.
    pub fn noiseless() -> Self {
        NoiseModel {
            variation_rms: 0.0,
            noise_rms: 0.0,
        }
    }

    /// Creates a model with the given static-variation and dynamic-noise
    /// RMS values (fractions, e.g. `0.1` = 10%).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidParameter`] if either RMS is negative or above
    /// 50% (far outside the paper's 3–30% sweep and physically implausible).
    pub fn new(variation_rms: f64, noise_rms: f64) -> Result<Self, AnalogError> {
        for (name, v) in [("variation_rms", variation_rms), ("noise_rms", noise_rms)] {
            if !(0.0..=0.5).contains(&v) {
                return Err(AnalogError::InvalidParameter {
                    name: if name == "variation_rms" {
                        "variation_rms"
                    } else {
                        "noise_rms"
                    },
                    reason: "must be in [0, 0.5]",
                });
            }
        }
        Ok(NoiseModel {
            variation_rms,
            noise_rms,
        })
    }

    /// The static variation RMS.
    pub fn variation_rms(&self) -> f64 {
        self.variation_rms
    }

    /// The dynamic noise RMS.
    pub fn noise_rms(&self) -> f64 {
        self.noise_rms
    }

    /// Label used by the experiment harness, e.g. `"0.1_0.05"` — the same
    /// naming the paper uses for its `(variation, noise)` pairs.
    pub fn label(&self) -> String {
        format!("{}_{}", self.variation_rms, self.noise_rms)
    }

    /// Samples the frozen per-coupler variation map for an `(m, n)` coupler
    /// array: multiplicative factors `max(0.05, 1 + N(0, RMS_var))`.
    pub fn sample_variation<R: Rng + ?Sized>(
        &self,
        shape: (usize, usize),
        rng: &mut R,
    ) -> VariationMap {
        let factors = if self.variation_rms == 0.0 {
            Array2::ones(shape)
        } else {
            let dist = Normal::new(1.0, self.variation_rms).expect("validated rms");
            Array2::from_shape_fn(shape, |_| dist.sample(rng).max(0.05))
        };
        VariationMap { factors }
    }

    /// Samples a frozen per-node variation vector (for node circuits such as
    /// the sigmoid units and comparators).
    pub fn sample_variation_vec<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Array1<f64> {
        if self.variation_rms == 0.0 {
            Array1::ones(len)
        } else {
            let dist = Normal::new(1.0, self.variation_rms).expect("validated rms");
            Array1::from_shape_fn(len, |_| dist.sample(rng).max(0.05))
        }
    }

    /// Adds dynamic noise to `x` with standard deviation `RMS_noise × scale`.
    ///
    /// `scale` is the characteristic signal magnitude at that circuit node
    /// (e.g. the RMS of summed currents), so the injected noise tracks the
    /// paper's *relative* RMS parameterization.
    pub fn perturb<R: Rng + ?Sized>(&self, x: f64, scale: f64, rng: &mut R) -> f64 {
        if self.noise_rms == 0.0 || scale == 0.0 {
            return x;
        }
        let dist = Normal::new(0.0, self.noise_rms * scale.abs()).expect("validated rms");
        x + dist.sample(rng)
    }

    /// Multiplicative form: `x · (1 + N(0, RMS_noise))`, for disturbances
    /// proportional to the local signal itself (coupler current noise).
    pub fn perturb_relative<R: Rng + ?Sized>(&self, x: f64, rng: &mut R) -> f64 {
        if self.noise_rms == 0.0 {
            return x;
        }
        let dist = Normal::new(1.0, self.noise_rms).expect("validated rms");
        x * dist.sample(rng)
    }

    /// The 25-point grid of §4.5 (5 variation × 5 noise RMS values,
    /// 3%–30%), plus the noiseless reference.
    pub fn paper_grid() -> Vec<NoiseModel> {
        let levels = [0.03, 0.05, 0.1, 0.2, 0.3];
        let mut grid = vec![NoiseModel::noiseless()];
        for &v in &levels {
            for &n in &levels {
                grid.push(NoiseModel::new(v, n).expect("grid levels valid"));
            }
        }
        grid
    }

    /// The six diagonal configurations plotted in Figures 8–10:
    /// `(0,0), (0.03,0.03), (0.05,0.05), (0.1,0.1), (0.2,0.2), (0.3,0.3)`.
    pub fn paper_diagonal() -> Vec<NoiseModel> {
        [0.0, 0.03, 0.05, 0.1, 0.2, 0.3]
            .iter()
            .map(|&v| NoiseModel::new(v, v).expect("diagonal levels valid"))
            .collect()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::noiseless()
    }
}

/// A frozen per-coupler multiplicative variation map (the "fabricated"
/// resistor mismatches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationMap {
    factors: Array2<f64>,
}

impl VariationMap {
    /// An identity map (no variation) of the given shape.
    pub fn identity(shape: (usize, usize)) -> Self {
        VariationMap {
            factors: Array2::ones(shape),
        }
    }

    /// The matrix of multiplicative factors.
    pub fn factors(&self) -> &Array2<f64> {
        &self.factors
    }

    /// The factor for coupler `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn factor(&self, i: usize, j: usize) -> f64 {
        self.factors[[i, j]]
    }

    /// Applies the variation to a weight matrix element-wise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn apply(&self, weights: &Array2<f64>) -> Array2<f64> {
        assert_eq!(weights.dim(), self.factors.dim(), "shape mismatch");
        weights * &self.factors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn noiseless_is_identity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let noise = NoiseModel::noiseless();
        assert_eq!(noise.perturb(3.0, 1.0, &mut rng), 3.0);
        assert_eq!(noise.perturb_relative(3.0, &mut rng), 3.0);
        let map = noise.sample_variation((3, 3), &mut rng);
        assert!(map.factors().iter().all(|&f| f == 1.0));
    }

    #[test]
    fn variation_statistics_match_rms() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let noise = NoiseModel::new(0.1, 0.0).unwrap();
        let map = noise.sample_variation((100, 100), &mut rng);
        let mean = map.factors().mean().unwrap();
        let std = map.factors().std(0.0);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        assert!((std - 0.1).abs() < 0.01, "std {std}");
    }

    #[test]
    fn variation_factors_stay_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let noise = NoiseModel::new(0.5, 0.0).unwrap();
        let map = noise.sample_variation((50, 50), &mut rng);
        assert!(map.factors().iter().all(|&f| f > 0.0));
    }

    #[test]
    fn perturb_scale_controls_sigma() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let noise = NoiseModel::new(0.0, 0.1).unwrap();
        let small: Vec<f64> = (0..2000)
            .map(|_| noise.perturb(0.0, 1.0, &mut rng))
            .collect();
        let large: Vec<f64> = (0..2000)
            .map(|_| noise.perturb(0.0, 5.0, &mut rng))
            .collect();
        let rms = |xs: &[f64]| (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt();
        assert!((rms(&small) - 0.1).abs() < 0.01);
        assert!((rms(&large) - 0.5).abs() < 0.05);
    }

    #[test]
    fn paper_grids_have_expected_sizes() {
        assert_eq!(NoiseModel::paper_grid().len(), 26);
        assert_eq!(NoiseModel::paper_diagonal().len(), 6);
        assert_eq!(NoiseModel::paper_diagonal()[3].label(), "0.1_0.1");
    }

    #[test]
    fn apply_scales_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let noise = NoiseModel::new(0.2, 0.0).unwrap();
        let map = noise.sample_variation((2, 2), &mut rng);
        let w = ndarray::arr2(&[[1.0, 2.0], [3.0, 4.0]]);
        let out = map.apply(&w);
        for i in 0..2 {
            for j in 0..2 {
                assert!((out[[i, j]] - w[[i, j]] * map.factor(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(NoiseModel::new(-0.1, 0.0).is_err());
        assert!(NoiseModel::new(0.0, 0.9).is_err());
    }
}
