use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::AnalogError;

fn validate_bits(bits: u32) -> Result<(), AnalogError> {
    if (1..=16).contains(&bits) {
        Ok(())
    } else {
        Err(AnalogError::InvalidBits(bits))
    }
}

/// An ideal uniform digital-to-analog converter.
///
/// Quantizes a value in `[lo, hi]` onto `2^bits` levels. The paper drives
/// multi-bit training samples onto the visible nodes through 8-bit
/// converters (§4.1), so quantization error is part of the behavioral model.
///
/// # Example
///
/// ```
/// use ember_analog::Dac;
///
/// # fn main() -> Result<(), ember_analog::AnalogError> {
/// let dac = Dac::new(8)?;
/// let q = dac.quantize(0.5, 0.0, 1.0);
/// assert!((q - 0.5).abs() < 1.0 / 255.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dac {
    bits: u32,
}

impl Dac {
    /// Creates a DAC with the given resolution.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidBits`] unless `1 ≤ bits ≤ 16`.
    pub fn new(bits: u32) -> Result<Self, AnalogError> {
        validate_bits(bits)?;
        Ok(Dac { bits })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of output levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Quantizes `x` onto the converter grid over `[lo, hi]`; inputs outside
    /// the range are clamped first.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn quantize(&self, x: f64, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "invalid quantization range");
        let steps = (self.levels() - 1) as f64;
        let clamped = x.clamp(lo, hi);
        let code = ((clamped - lo) / (hi - lo) * steps).round();
        lo + code / steps * (hi - lo)
    }

    /// Largest possible quantization error over `[lo, hi]` (half an LSB).
    pub fn max_error(&self, lo: f64, hi: f64) -> f64 {
        (hi - lo) / ((self.levels() - 1) as f64) / 2.0
    }
}

/// A digital-to-time converter.
///
/// The paper inputs training data through DTCs (§4.1, citing a
/// measurement-validated design): the digital sample is encoded as a pulse
/// *duration* that charges the clamped node. Behaviorally this is a uniform
/// quantizer like the DAC, plus a deterministic integral-nonlinearity bow
/// (time-domain converters have characteristic INL from current-source
/// mismatch).
///
/// # Example
///
/// ```
/// use ember_analog::Dtc;
///
/// # fn main() -> Result<(), ember_analog::AnalogError> {
/// let dtc = Dtc::new(8, 0.0)?;
/// assert!((dtc.convert(0.25) - 0.25).abs() < 1.0 / 255.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dtc {
    bits: u32,
    inl: f64,
}

impl Dtc {
    /// Creates a DTC with the given resolution and integral nonlinearity.
    ///
    /// `inl` is the peak bow deviation as a fraction of full scale (`0.0` =
    /// ideal; a realistic 8-bit DTC has `|inl| ≲ 0.005`).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidBits`] unless `1 ≤ bits ≤ 16`;
    /// [`AnalogError::InvalidParameter`] if `|inl| > 0.1`.
    pub fn new(bits: u32, inl: f64) -> Result<Self, AnalogError> {
        validate_bits(bits)?;
        if inl.abs() > 0.1 {
            return Err(AnalogError::InvalidParameter {
                name: "inl",
                reason: "peak bow must be within ±10% of full scale",
            });
        }
        Ok(Dtc { bits, inl })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Converts a normalized digital value in `[0, 1]` to the analog clamp
    /// level actually seen by the node: quantized, then bowed by the INL.
    pub fn convert(&self, x: f64) -> f64 {
        let steps = ((1u32 << self.bits) - 1) as f64;
        let clamped = x.clamp(0.0, 1.0);
        let q = (clamped * steps).round() / steps;
        // Parabolic bow, zero at the endpoints, peak `inl` at mid-scale.
        (q + self.inl * 4.0 * q * (1.0 - q)).clamp(0.0, 1.0)
    }
}

/// A successive-approximation analog-to-digital converter.
///
/// Used once at the end of BGF training to read out the trained coupler
/// voltages, one column at a time (§3.3 step 6). 8-bit per the paper, with
/// optional input-referred thermal noise.
///
/// # Example
///
/// ```
/// use ember_analog::Adc;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ember_analog::AnalogError> {
/// let adc = Adc::new(8, 0.0)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let code = adc.read(0.5, 0.0, 1.0, &mut rng);
/// assert!((code - 0.5).abs() < 1.0 / 255.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u32,
    noise_rms: f64,
}

impl Adc {
    /// Creates an ADC with the given resolution and input-referred noise
    /// (RMS, as a fraction of full scale).
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidBits`] unless `1 ≤ bits ≤ 16`;
    /// [`AnalogError::InvalidParameter`] if `noise_rms` is negative or
    /// above 10% of full scale.
    pub fn new(bits: u32, noise_rms: f64) -> Result<Self, AnalogError> {
        validate_bits(bits)?;
        if !(0.0..=0.1).contains(&noise_rms) {
            return Err(AnalogError::InvalidParameter {
                name: "noise_rms",
                reason: "must be in [0, 0.1] of full scale",
            });
        }
        Ok(Adc { bits, noise_rms })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reads an analog value in `[lo, hi]`, adding input noise then
    /// quantizing. Returns the reconstructed analog value of the output
    /// code.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn read<R: Rng + ?Sized>(&self, x: f64, lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "invalid conversion range");
        let noisy = if self.noise_rms > 0.0 {
            let sigma = self.noise_rms * (hi - lo);
            let dist = Normal::new(0.0, sigma).expect("validated sigma");
            x + dist.sample(rng)
        } else {
            x
        };
        let steps = ((1u32 << self.bits) - 1) as f64;
        let clamped = noisy.clamp(lo, hi);
        let code = ((clamped - lo) / (hi - lo) * steps).round();
        lo + code / steps * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dac_error_within_half_lsb() {
        let dac = Dac::new(8).unwrap();
        for k in 0..=100 {
            let x = k as f64 / 100.0;
            let q = dac.quantize(x, 0.0, 1.0);
            assert!((q - x).abs() <= dac.max_error(0.0, 1.0) + 1e-12);
        }
    }

    #[test]
    fn dac_clamps_out_of_range() {
        let dac = Dac::new(4).unwrap();
        assert_eq!(dac.quantize(2.0, 0.0, 1.0), 1.0);
        assert_eq!(dac.quantize(-1.0, 0.0, 1.0), 0.0);
    }

    #[test]
    fn dac_one_bit_is_binary() {
        let dac = Dac::new(1).unwrap();
        assert_eq!(dac.quantize(0.4, 0.0, 1.0), 0.0);
        assert_eq!(dac.quantize(0.6, 0.0, 1.0), 1.0);
    }

    #[test]
    fn dtc_ideal_matches_dac_grid() {
        let dtc = Dtc::new(8, 0.0).unwrap();
        let dac = Dac::new(8).unwrap();
        for k in 0..=50 {
            let x = k as f64 / 50.0;
            assert!((dtc.convert(x) - dac.quantize(x, 0.0, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn dtc_bow_peaks_midscale_and_vanishes_at_ends() {
        let dtc = Dtc::new(8, 0.01).unwrap();
        assert_eq!(dtc.convert(0.0), 0.0);
        assert_eq!(dtc.convert(1.0), 1.0);
        // 0.5 is not exactly on the 255-step grid; allow half-LSB slack.
        let mid = dtc.convert(0.5);
        assert!(mid > 0.5 && (mid - 0.51).abs() < 3e-3);
    }

    #[test]
    fn adc_noiseless_roundtrip() {
        let adc = Adc::new(8, 0.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for k in 0..=20 {
            let x = -1.0 + 2.0 * k as f64 / 20.0;
            let y = adc.read(x, -1.0, 1.0, &mut rng);
            assert!((x - y).abs() <= 2.0 / 255.0 / 2.0 + 1e-12);
        }
    }

    #[test]
    fn adc_noise_perturbs_codes() {
        let adc = Adc::new(8, 0.05).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let reads: Vec<f64> = (0..100)
            .map(|_| adc.read(0.5, 0.0, 1.0, &mut rng))
            .collect();
        let distinct: std::collections::BTreeSet<u64> =
            reads.iter().map(|r| (r * 1e9) as u64).collect();
        assert!(distinct.len() > 3, "noise should spread the codes");
    }

    #[test]
    fn converters_reject_bad_bits() {
        assert!(Dac::new(0).is_err());
        assert!(Dac::new(17).is_err());
        assert!(Dtc::new(0, 0.0).is_err());
        assert!(Adc::new(32, 0.0).is_err());
        assert!(Dtc::new(8, 0.5).is_err());
        assert!(Adc::new(8, 0.5).is_err());
    }
}
