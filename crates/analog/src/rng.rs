use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::{AnalogError, VCM};

/// Behavioral model of the thermal-noise random number generator of
/// Fig. 13(b).
///
/// Two diodes generate thermal noise which a variable-gain amplifier, biased
/// at `Vcm = Vdd/2`, amplifies to a random voltage in
/// `[Vcm − A·V_noise, Vcm + A·V_noise]` (Appendix B.3). Physically the
/// amplified noise is Gaussian-ish but the amplifier saturates at the design
/// swing; we model it as a Gaussian clipped to the swing, which for the
/// default configuration is indistinguishable from the uniform reference
/// distribution closely enough for Bernoulli sampling (validated in tests
/// against exact probabilities).
///
/// The `swing` parameter is `A·V_noise` in normalized volts; `0.5` spans the
/// full `[0, 1]` range, which is what the probabilistic node sampling needs:
/// comparing a probability `p ∈ [0, 1]` against a uniform `[0, 1]` reference
/// yields a Bernoulli(`p`) sample.
///
/// # Example
///
/// ```
/// use ember_analog::ThermalRng;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let noise = ThermalRng::new(0.5);
/// let v = noise.sample_voltage(&mut rng);
/// assert!((0.0..=1.0).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalRng {
    swing: f64,
    gaussian_fraction: f64,
}

impl ThermalRng {
    /// Creates an RNG with the given swing `A·V_noise` (in normalized volts)
    /// and a purely uniform amplified-noise profile.
    ///
    /// # Panics
    ///
    /// Panics if `swing` is not in `(0, 0.5]`.
    pub fn new(swing: f64) -> Self {
        Self::with_profile(swing, 0.0).expect("default profile is valid")
    }

    /// Creates an RNG with an explicit noise profile.
    ///
    /// `gaussian_fraction ∈ [0, 1]` blends between an idealized uniform
    /// reference (`0.0` — what a perfectly flattened amplified noise would
    /// give) and a clipped Gaussian whose σ equals half the swing (`1.0` —
    /// a pessimistic un-flattened amplifier). Real silicon sits in between.
    ///
    /// # Errors
    ///
    /// [`AnalogError::InvalidParameter`] if `swing ∉ (0, 0.5]` or
    /// `gaussian_fraction ∉ [0, 1]`.
    pub fn with_profile(swing: f64, gaussian_fraction: f64) -> Result<Self, AnalogError> {
        if !(swing > 0.0 && swing <= VCM) {
            return Err(AnalogError::InvalidParameter {
                name: "swing",
                reason: "must be in (0, Vdd/2]",
            });
        }
        if !(0.0..=1.0).contains(&gaussian_fraction) {
            return Err(AnalogError::InvalidParameter {
                name: "gaussian_fraction",
                reason: "must be in [0, 1]",
            });
        }
        Ok(ThermalRng {
            swing,
            gaussian_fraction,
        })
    }

    /// The configured swing `A·V_noise`.
    pub fn swing(&self) -> f64 {
        self.swing
    }

    /// Draws one random reference voltage in `[Vcm − swing, Vcm + swing]`.
    pub fn sample_voltage<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let lo = VCM - self.swing;
        let hi = VCM + self.swing;
        if self.gaussian_fraction == 0.0 {
            return rng.random_range(lo..hi);
        }
        let uniform = rng.random_range(lo..hi);
        let normal = Normal::new(VCM, self.swing / 2.0).expect("valid sigma");
        let gauss = normal.sample(rng).clamp(lo, hi);
        (1.0 - self.gaussian_fraction) * uniform + self.gaussian_fraction * gauss
    }

    /// Draws one normalized reference in `[0, 1]` (voltage rescaled by the
    /// swing), the form the comparator uses against a probability.
    pub fn sample_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = self.sample_voltage(rng);
        (v - (VCM - self.swing)) / (2.0 * self.swing)
    }
}

impl Default for ThermalRng {
    /// Full-swing uniform reference — the design target of Appendix B.3.
    fn default() -> Self {
        ThermalRng::new(VCM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_swing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let noise = ThermalRng::new(0.3);
        for _ in 0..1000 {
            let v = noise.sample_voltage(&mut rng);
            assert!((VCM - 0.3..=VCM + 0.3).contains(&v));
        }
    }

    #[test]
    fn unit_samples_cover_zero_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let noise = ThermalRng::default();
        let samples: Vec<f64> = (0..5000).map(|_| noise.sample_unit(&mut rng)).collect();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(min < 0.05 && max > 0.95, "range [{min}, {max}]");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_profile_concentrates_near_center() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let uniform = ThermalRng::new(0.5);
        let gaussian = ThermalRng::with_profile(0.5, 1.0).unwrap();
        let spread = |noise: &ThermalRng, rng: &mut rand::rngs::StdRng| {
            let xs: Vec<f64> = (0..4000).map(|_| noise.sample_unit(rng)).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        assert!(spread(&gaussian, &mut rng) < spread(&uniform, &mut rng));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(ThermalRng::with_profile(0.0, 0.0).is_err());
        assert!(ThermalRng::with_profile(0.6, 0.0).is_err());
        assert!(ThermalRng::with_profile(0.5, 1.5).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let noise = ThermalRng::default();
        let a: Vec<f64> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            (0..10).map(|_| noise.sample_unit(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            (0..10).map(|_| noise.sample_unit(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
