use ndarray::{Array1, Array2};
use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingProblem, SpinVec};

/// The bipartite special case of the Ising problem used for RBMs (§3.1,
/// Fig. 3): `m` visible nodes couple only to `n` hidden nodes through the
/// weight matrix `W` (`m × n`), with per-node biases.
///
/// Energy over *bit* variables `v ∈ {0,1}ᵐ, h ∈ {0,1}ⁿ` follows paper Eq. 3:
///
/// ```text
/// E(v, h) = − vᵀ W h − bᵥᵀ v − bₕᵀ h
/// ```
///
/// The paper notes the bipartite layout needs ~6× fewer coupling units than
/// an all-to-all substrate for a 784×200 RBM; [`BipartiteProblem::coupler_count`]
/// and [`BipartiteProblem::dense_coupler_count`] expose that comparison.
///
/// # Example
///
/// ```
/// use ember_ising::BipartiteProblem;
/// use ndarray::{arr1, arr2};
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// let p = BipartiteProblem::new(
///     arr2(&[[1.0, -1.0], [0.5, 2.0]]),
///     arr1(&[0.1, 0.2]),
///     arr1(&[-0.3, 0.0]),
/// )?;
/// let e = p.energy_bits(&[true, false], &[false, true]);
/// // E = -(W[0][1]*1*1) - bv0 - bh1 = 1.0 - 0.1 - 0.0
/// assert!((e - 0.9).abs() < 1e-12);
/// // 784×200 example from the paper: ~6× coupler savings.
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BipartiteProblem {
    weights: Array2<f64>,
    visible_bias: Array1<f64>,
    hidden_bias: Array1<f64>,
}

impl BipartiteProblem {
    /// Creates a bipartite problem from a weight matrix (`m × n`) and bias
    /// vectors for the visible (`m`) and hidden (`n`) sides.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::DimensionMismatch`] if the bias lengths do not
    /// match the weight matrix.
    pub fn new(
        weights: Array2<f64>,
        visible_bias: Array1<f64>,
        hidden_bias: Array1<f64>,
    ) -> Result<Self, IsingError> {
        let (m, n) = weights.dim();
        if visible_bias.len() != m {
            return Err(IsingError::DimensionMismatch {
                expected: m,
                actual: visible_bias.len(),
            });
        }
        if hidden_bias.len() != n {
            return Err(IsingError::DimensionMismatch {
                expected: n,
                actual: hidden_bias.len(),
            });
        }
        Ok(BipartiteProblem {
            weights,
            visible_bias,
            hidden_bias,
        })
    }

    /// Number of visible nodes `m`.
    pub fn visible_len(&self) -> usize {
        self.weights.nrows()
    }

    /// Number of hidden nodes `n`.
    pub fn hidden_len(&self) -> usize {
        self.weights.ncols()
    }

    /// The `m × n` coupling weight matrix.
    pub fn weights(&self) -> &Array2<f64> {
        &self.weights
    }

    /// Visible-side biases.
    pub fn visible_bias(&self) -> &Array1<f64> {
        &self.visible_bias
    }

    /// Hidden-side biases.
    pub fn hidden_bias(&self) -> &Array1<f64> {
        &self.hidden_bias
    }

    /// Energy over bit variables (paper Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if the slices have the wrong lengths.
    pub fn energy_bits(&self, v: &[bool], h: &[bool]) -> f64 {
        assert_eq!(v.len(), self.visible_len(), "visible length mismatch");
        assert_eq!(h.len(), self.hidden_len(), "hidden length mismatch");
        let mut e = 0.0;
        for (i, &vi) in v.iter().enumerate() {
            if !vi {
                continue;
            }
            e -= self.visible_bias[i];
            for (j, &hj) in h.iter().enumerate() {
                if hj {
                    e -= self.weights[[i, j]];
                }
            }
        }
        for (j, &hj) in h.iter().enumerate() {
            if hj {
                e -= self.hidden_bias[j];
            }
        }
        e
    }

    /// Energy with real-valued unit activations (used by analog models where
    /// node voltages are continuous in `[0, 1]` before thresholding).
    ///
    /// # Panics
    ///
    /// Panics if the arrays have the wrong lengths.
    pub fn energy_real(&self, v: &Array1<f64>, h: &Array1<f64>) -> f64 {
        assert_eq!(v.len(), self.visible_len(), "visible length mismatch");
        assert_eq!(h.len(), self.hidden_len(), "hidden length mismatch");
        -v.dot(&self.weights.dot(h)) - self.visible_bias.dot(v) - self.hidden_bias.dot(h)
    }

    /// Number of physical coupling units the bipartite substrate needs
    /// (`m × n`, §3.1).
    pub fn coupler_count(&self) -> usize {
        self.visible_len() * self.hidden_len()
    }

    /// Number of coupling units an all-to-all substrate of the same node
    /// count would need (`(m+n)²`, §3.1's comparison).
    pub fn dense_coupler_count(&self) -> usize {
        let total = self.visible_len() + self.hidden_len();
        total * total
    }

    /// Embeds the bipartite problem into a full [`IsingProblem`] over
    /// `m + n` **spin** variables (visible first), converting the bit-based
    /// energy to spin form via `b = (σ+1)/2` so that for all assignments
    /// `energy_bits(v, h) == ising.energy(σ(v) ⊕ σ(h))`.
    pub fn to_ising(&self) -> IsingProblem {
        let m = self.visible_len();
        let n = self.hidden_len();
        let total = m + n;
        // E(b) = -Σ_ij W_ij v_i h_j - Σ bv_i v_i - Σ bh_j h_j with b=(σ+1)/2:
        //   v_i h_j = (σ_i σ_j + σ_i + σ_j + 1)/4
        //   v_i     = (σ_i + 1)/2
        let mut j = Array2::<f64>::zeros((total, total));
        let mut h = Array1::<f64>::zeros(total);
        let mut offset = 0.0;
        for i in 0..m {
            h[i] += self.visible_bias[i] / 2.0;
            offset -= self.visible_bias[i] / 2.0;
            for k in 0..n {
                let w = self.weights[[i, k]];
                j[[i, m + k]] = w / 4.0;
                j[[m + k, i]] = w / 4.0;
                h[i] += w / 4.0;
                h[m + k] += w / 4.0;
                offset -= w / 4.0;
            }
        }
        for k in 0..n {
            h[m + k] += self.hidden_bias[k] / 2.0;
            offset -= self.hidden_bias[k] / 2.0;
        }
        IsingProblem::from_parts(j, h, offset).expect("constructed parts are valid")
    }

    /// Splits a combined spin state (visible first) back into bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != visible_len() + hidden_len()`.
    pub fn split_state(&self, state: &SpinVec) -> (Vec<bool>, Vec<bool>) {
        let m = self.visible_len();
        let n = self.hidden_len();
        assert_eq!(state.len(), m + n, "combined state length mismatch");
        let bits = state.to_bits();
        (bits[..m].to_vec(), bits[m..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::{arr1, arr2};

    fn problem() -> BipartiteProblem {
        BipartiteProblem::new(
            arr2(&[[1.0, -0.5], [0.25, 2.0], [-1.5, 0.75]]),
            arr1(&[0.1, -0.2, 0.3]),
            arr1(&[0.4, -0.6]),
        )
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let p = problem();
        assert_eq!(p.visible_len(), 3);
        assert_eq!(p.hidden_len(), 2);
        assert_eq!(p.coupler_count(), 6);
        assert_eq!(p.dense_coupler_count(), 25);
    }

    #[test]
    fn rejects_mismatched_biases() {
        let err = BipartiteProblem::new(arr2(&[[1.0, 0.0]]), arr1(&[0.0, 0.0]), arr1(&[0.0, 0.0]))
            .unwrap_err();
        assert!(matches!(err, IsingError::DimensionMismatch { .. }));
    }

    #[test]
    fn energy_bits_matches_real_on_binary_inputs() {
        let p = problem();
        for vc in 0u8..8 {
            for hc in 0u8..4 {
                let v: Vec<bool> = (0..3).map(|b| (vc >> b) & 1 == 1).collect();
                let h: Vec<bool> = (0..2).map(|b| (hc >> b) & 1 == 1).collect();
                let vr = Array1::from_iter(v.iter().map(|&b| if b { 1.0 } else { 0.0 }));
                let hr = Array1::from_iter(h.iter().map(|&b| if b { 1.0 } else { 0.0 }));
                assert!((p.energy_bits(&v, &h) - p.energy_real(&vr, &hr)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn ising_embedding_preserves_energy() {
        let p = problem();
        let ising = p.to_ising();
        for vc in 0u8..8 {
            for hc in 0u8..4 {
                let v: Vec<bool> = (0..3).map(|b| (vc >> b) & 1 == 1).collect();
                let h: Vec<bool> = (0..2).map(|b| (hc >> b) & 1 == 1).collect();
                let combined: Vec<bool> = v.iter().chain(h.iter()).copied().collect();
                let s = SpinVec::from_bits(&combined);
                assert!(
                    (p.energy_bits(&v, &h) - ising.energy(&s)).abs() < 1e-10,
                    "mismatch v={v:?} h={h:?}"
                );
            }
        }
    }

    #[test]
    fn split_state_roundtrip() {
        let p = problem();
        let s = SpinVec::from_bits(&[true, false, true, false, true]);
        let (v, h) = p.split_state(&s);
        assert_eq!(v, vec![true, false, true]);
        assert_eq!(h, vec![false, true]);
    }

    #[test]
    fn paper_784x200_coupler_savings_about_6x() {
        let p = BipartiteProblem::new(
            Array2::zeros((784, 200)),
            Array1::zeros(784),
            Array1::zeros(200),
        )
        .unwrap();
        let ratio = p.dense_coupler_count() as f64 / p.coupler_count() as f64;
        assert!(
            (ratio - 6.17).abs() < 0.1,
            "expected ~6x savings, got {ratio}"
        );
    }
}
