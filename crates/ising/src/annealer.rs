use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{IsingProblem, SpinVec};

/// A temperature schedule for simulated annealing.
///
/// The schedule yields one temperature per sweep; the Metropolis acceptance
/// probability for an uphill move of `ΔE > 0` at temperature `T` is
/// `exp(−ΔE / T)` (Kirkpatrick et al. 1983, the algorithm the paper cites as
/// the software analogue of the Ising machine's annealing control).
///
/// # Example
///
/// ```
/// use ember_ising::AnnealSchedule;
///
/// let sched = AnnealSchedule::geometric(10.0, 0.1, 5);
/// let temps: Vec<f64> = sched.temperatures().collect();
/// assert_eq!(temps.len(), 5);
/// assert!(temps[0] > temps[4]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealSchedule {
    t_start: f64,
    t_end: f64,
    sweeps: usize,
}

impl AnnealSchedule {
    /// A geometric (exponentially decaying) schedule from `t_start` down to
    /// `t_end` over `sweeps` sweeps.
    ///
    /// # Panics
    ///
    /// Panics if either temperature is not positive or `t_end > t_start`.
    pub fn geometric(t_start: f64, t_end: f64, sweeps: usize) -> Self {
        assert!(
            t_start > 0.0 && t_end > 0.0,
            "temperatures must be positive"
        );
        assert!(t_end <= t_start, "schedule must cool, not heat");
        AnnealSchedule {
            t_start,
            t_end,
            sweeps,
        }
    }

    /// A constant-temperature schedule (plain Metropolis sampling at fixed
    /// `t` for `sweeps` sweeps). Used for Boltzmann-distribution sampling
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not positive.
    pub fn constant(t: f64, sweeps: usize) -> Self {
        assert!(t > 0.0, "temperature must be positive");
        AnnealSchedule {
            t_start: t,
            t_end: t,
            sweeps,
        }
    }

    /// Number of sweeps in the schedule.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Iterator over the per-sweep temperatures.
    pub fn temperatures(&self) -> impl Iterator<Item = f64> + '_ {
        let n = self.sweeps;
        let (t0, t1) = (self.t_start, self.t_end);
        (0..n).map(move |k| {
            if n <= 1 || t0 == t1 {
                t0
            } else {
                let frac = k as f64 / (n - 1) as f64;
                t0 * (t1 / t0).powf(frac)
            }
        })
    }
}

/// The result of an annealing run: best state found and its energy, plus the
/// per-sweep energy trace for convergence analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Best (lowest-energy) state observed during the run.
    pub state: SpinVec,
    /// Energy of [`Solution::state`].
    pub energy: f64,
    /// Energy of the *current* state after each sweep (not the best-so-far).
    pub energy_trace: Vec<f64>,
}

/// Metropolis simulated-annealing solver: the von-Neumann baseline the paper
/// compares nature-based substrates against (§2.1, §4.3).
///
/// # Example
///
/// ```
/// use ember_ising::{Annealer, AnnealSchedule, generate};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let problem = generate::random_gaussian(16, 1.0, 0.0, &mut rng);
/// let annealer = Annealer::new(AnnealSchedule::geometric(3.0, 0.05, 100));
/// let sol = annealer.solve(&problem, &mut rng);
/// assert_eq!(sol.energy_trace.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annealer {
    schedule: AnnealSchedule,
}

impl Annealer {
    /// Creates an annealer with the given schedule.
    pub fn new(schedule: AnnealSchedule) -> Self {
        Annealer { schedule }
    }

    /// The configured schedule.
    pub fn schedule(&self) -> &AnnealSchedule {
        &self.schedule
    }

    /// Runs annealing from a uniformly random initial state.
    pub fn solve<R: Rng + ?Sized>(&self, problem: &IsingProblem, rng: &mut R) -> Solution {
        let init = SpinVec::random(problem.len(), rng);
        self.solve_from(problem, init, rng)
    }

    /// Runs annealing from a caller-supplied initial state.
    ///
    /// # Panics
    ///
    /// Panics if `init` has the wrong length.
    pub fn solve_from<R: Rng + ?Sized>(
        &self,
        problem: &IsingProblem,
        init: SpinVec,
        rng: &mut R,
    ) -> Solution {
        assert_eq!(init.len(), problem.len(), "initial state length mismatch");
        let n = problem.len();
        let mut state = init;
        let mut energy = problem.energy(&state);
        let mut best_state = state.clone();
        let mut best_energy = energy;
        let mut energy_trace = Vec::with_capacity(self.schedule.sweeps());

        for t in self.schedule.temperatures() {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let delta = problem.flip_delta(&state, i);
                if delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp() {
                    state.flip(i);
                    energy += delta;
                    if energy < best_energy {
                        best_energy = energy;
                        best_state = state.clone();
                    }
                }
            }
            energy_trace.push(energy);
        }

        Solution {
            state: best_state,
            energy: best_energy,
            energy_trace,
        }
    }

    /// Draws `count` approximate Boltzmann samples at temperature `t` by
    /// running Metropolis chains with `burn_in` sweeps of equilibration and
    /// `thin` sweeps between samples.
    ///
    /// Used as a software reference for what the physical substrate does
    /// "for free" (§3.3: the substrate "directly embodies" Boltzmann
    /// statistics).
    pub fn sample_boltzmann<R: Rng + ?Sized>(
        &self,
        problem: &IsingProblem,
        t: f64,
        count: usize,
        burn_in: usize,
        thin: usize,
        rng: &mut R,
    ) -> Vec<SpinVec> {
        assert!(t > 0.0, "temperature must be positive");
        let n = problem.len();
        let mut state = SpinVec::random(n, rng);
        let sweep = |state: &mut SpinVec, rng: &mut R| {
            for _ in 0..n {
                let i = rng.random_range(0..n);
                let delta = problem.flip_delta(state, i);
                if delta <= 0.0 || rng.random::<f64>() < (-delta / t).exp() {
                    state.flip(i);
                }
            }
        };
        for _ in 0..burn_in {
            sweep(&mut state, rng);
        }
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            for _ in 0..thin.max(1) {
                sweep(&mut state, rng);
            }
            samples.push(state.clone());
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schedule_is_monotone_decreasing() {
        let sched = AnnealSchedule::geometric(5.0, 0.01, 50);
        let temps: Vec<f64> = sched.temperatures().collect();
        for w in temps.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!((temps[0] - 5.0).abs() < 1e-12);
        assert!((temps[49] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn constant_schedule_is_flat() {
        let temps: Vec<f64> = AnnealSchedule::constant(2.0, 4).temperatures().collect();
        assert!(temps.iter().all(|&t| (t - 2.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "cool")]
    fn schedule_rejects_heating() {
        let _ = AnnealSchedule::geometric(1.0, 2.0, 10);
    }

    #[test]
    fn annealer_finds_ferromagnetic_ground_state() {
        let mut b = IsingProblem::builder(10);
        for i in 0..9 {
            b.coupling(i, i + 1, 1.0).unwrap();
        }
        let p = b.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let annealer = Annealer::new(AnnealSchedule::geometric(3.0, 0.02, 300));
        let sol = annealer.solve(&p, &mut rng);
        assert!((sol.energy - (-9.0)).abs() < 1e-12, "energy {}", sol.energy);
    }

    #[test]
    fn reported_energy_is_consistent_with_state() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let p = crate::generate::random_gaussian(12, 1.0, 0.3, &mut rng);
        let annealer = Annealer::new(AnnealSchedule::geometric(2.0, 0.05, 100));
        let sol = annealer.solve(&p, &mut rng);
        assert!((p.energy(&sol.state) - sol.energy).abs() < 1e-9);
    }

    #[test]
    fn annealer_matches_brute_force_on_small_problems() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for seed in 0..5 {
            let mut prng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = crate::generate::random_gaussian(10, 1.0, 0.2, &mut prng);
            let (_, ground) = p.brute_force_ground_state();
            let annealer = Annealer::new(AnnealSchedule::geometric(4.0, 0.02, 400));
            // Like the physical machine, take the best of a few restarts:
            // a single anneal occasionally parks in a local minimum.
            let best = (0..4)
                .map(|_| annealer.solve(&p, &mut rng).energy)
                .fold(f64::INFINITY, f64::min);
            assert!(best >= ground - 1e-9, "below ground?!");
            assert!(
                best <= ground + 1e-9,
                "annealer energy {best} worse than ground {ground}"
            );
        }
    }

    #[test]
    fn boltzmann_sampling_prefers_low_energy() {
        // Single strongly-biased spin: P(up) = σ(2h/T).
        let mut b = IsingProblem::builder(1);
        b.field(0, 1.0).unwrap();
        let p = b.build();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let annealer = Annealer::new(AnnealSchedule::constant(1.0, 1));
        let samples = annealer.sample_boltzmann(&p, 1.0, 2000, 50, 1, &mut rng);
        let ups = samples.iter().filter(|s| s.spin(0).to_bit()).count() as f64;
        let frac = ups / samples.len() as f64;
        // Exact: e^1/(e^1+e^-1) = σ(2) ≈ 0.8808.
        assert!((frac - 0.8808).abs() < 0.04, "frac {frac}");
    }
}
