//! Deterministic per-chain RNG streams for the parallel sampling engine.
//!
//! Every parallel sampling routine in this workspace follows the same
//! reproducibility contract: a single **master seed** is split into one
//! independent stream per Markov chain with [`RngStreams`], each chain
//! consumes only its own stream, and results are keyed by chain index.
//! Because no stream is shared across chains, the outputs are
//! **bit-identical at every rayon thread count** — scheduling can change
//! which worker runs a chain, never which random numbers the chain sees.
//!
//! Streams are derived with SplitMix64 finalization over
//! `master ⊕ f(index)`, the standard recipe for splitting one seed into
//! uncorrelated substreams (also used by upstream rand's
//! `SeedableRng::seed_from_u64`).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A family of deterministic RNG streams split from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngStreams {
    master: u64,
}

impl RngStreams {
    /// Creates the stream family for `master` seed.
    pub fn new(master: u64) -> Self {
        RngStreams { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed of stream `index`.
    pub fn seed(&self, index: u64) -> u64 {
        // SplitMix64 finalizer over a golden-ratio indexed offset: adjacent
        // indices land in statistically independent streams.
        let mut z = self
            .master
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The generator for stream `index`.
    pub fn rng(&self, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed(index))
    }

    /// A sub-family for nested splitting (e.g. one family per minibatch,
    /// then one stream per row).
    pub fn subfamily(&self, index: u64) -> RngStreams {
        RngStreams {
            master: self.seed(index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_deterministic() {
        let a = RngStreams::new(42);
        let b = RngStreams::new(42);
        for i in 0..16 {
            assert_eq!(a.seed(i), b.seed(i));
            assert_eq!(a.rng(i).random::<f64>(), b.rng(i).random::<f64>());
        }
    }

    #[test]
    fn streams_differ_across_indices_and_masters() {
        let s = RngStreams::new(1);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(s.seed(i)), "seed collision at index {i}");
        }
        assert_ne!(RngStreams::new(1).seed(0), RngStreams::new(2).seed(0));
    }

    #[test]
    fn subfamily_streams_do_not_collide_with_parent() {
        let s = RngStreams::new(7);
        let sub = s.subfamily(3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(s.seed(i));
            seen.insert(sub.seed(i));
        }
        assert_eq!(seen.len(), 200);
    }

    #[test]
    fn adjacent_streams_look_independent() {
        // Crude cross-correlation check between neighboring streams.
        let s = RngStreams::new(99);
        let mut r0 = s.rng(0);
        let mut r1 = s.rng(1);
        let n = 10_000;
        let mut dot = 0.0;
        for _ in 0..n {
            dot += (r0.random::<f64>() - 0.5) * (r1.random::<f64>() - 0.5);
        }
        let corr = dot / n as f64 / (1.0 / 12.0);
        assert!(corr.abs() < 0.05, "correlation {corr}");
    }
}
