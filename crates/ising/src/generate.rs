//! Seeded random problem generators used by tests, examples and benches.
//!
//! All generators take a caller-supplied RNG so experiments are exactly
//! reproducible from a seed.

use ndarray::{Array1, Array2};
use rand::Rng;
use rand_distr::{Distribution, Normal};

use crate::{IsingProblem, MaxCut};

/// A dense Ising problem with i.i.d. Gaussian couplings
/// `Jᵢⱼ ~ N(0, coupling_std²)` and fields `hᵢ ~ N(0, field_std²)`
/// (a Sherrington–Kirkpatrick-style spin glass).
///
/// # Panics
///
/// Panics if either standard deviation is negative or not finite.
pub fn random_gaussian<R: Rng + ?Sized>(
    n: usize,
    coupling_std: f64,
    field_std: f64,
    rng: &mut R,
) -> IsingProblem {
    assert!(coupling_std >= 0.0 && coupling_std.is_finite());
    assert!(field_std >= 0.0 && field_std.is_finite());
    let j_dist = Normal::new(0.0, coupling_std.max(f64::MIN_POSITIVE)).expect("validated std");
    let h_dist = Normal::new(0.0, field_std.max(f64::MIN_POSITIVE)).expect("validated std");
    let mut j = Array2::<f64>::zeros((n, n));
    for i in 0..n {
        for k in (i + 1)..n {
            let v = if coupling_std == 0.0 {
                0.0
            } else {
                j_dist.sample(rng)
            };
            j[[i, k]] = v;
            j[[k, i]] = v;
        }
    }
    let h = Array1::from_iter((0..n).map(|_| {
        if field_std == 0.0 {
            0.0
        } else {
            h_dist.sample(rng)
        }
    }));
    IsingProblem::from_parts(j, h, 0.0).expect("generated parts are valid")
}

/// A dense Ising problem with couplings drawn uniformly from `{−1, +1}`
/// on each pair with probability `density`, zero otherwise.
///
/// # Panics
///
/// Panics if `density` is outside `[0, 1]`.
pub fn random_pm_one<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> IsingProblem {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut j = Array2::<f64>::zeros((n, n));
    for i in 0..n {
        for k in (i + 1)..n {
            if rng.random::<f64>() < density {
                let v = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
                j[[i, k]] = v;
                j[[k, i]] = v;
            }
        }
    }
    IsingProblem::from_parts(j, Array1::zeros(n), 0.0).expect("generated parts are valid")
}

/// An Erdős–Rényi `G(n, p)` max-cut instance with unit edge weights.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn random_maxcut<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> MaxCut {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0,1]"
    );
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                edges.push((u, v, 1.0));
            }
        }
    }
    MaxCut::new(n, &edges).expect("generated edges are valid")
}

/// A ferromagnetic ring of `n` spins with coupling strength `j` — its ground
/// states (all-up / all-down) are known analytically, making it a convenient
/// validation problem.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ferromagnetic_ring(n: usize, j: f64) -> IsingProblem {
    assert!(n >= 3, "a ring needs at least 3 spins");
    let mut b = IsingProblem::builder(n);
    for i in 0..n {
        b.coupling(i, (i + 1) % n, j).expect("indices valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gaussian_problem_is_symmetric_zero_diag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = random_gaussian(8, 1.0, 0.5, &mut rng);
        let j = p.couplings();
        for i in 0..8 {
            assert_eq!(j[[i, i]], 0.0);
            for k in 0..8 {
                assert_eq!(j[[i, k]], j[[k, i]]);
            }
        }
    }

    #[test]
    fn zero_std_gives_zero_couplings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = random_gaussian(5, 0.0, 0.0, &mut rng);
        assert!(p.couplings().iter().all(|&v| v == 0.0));
        assert!(p.field().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pm_one_density_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let empty = random_pm_one(6, 0.0, &mut rng);
        assert!(empty.couplings().iter().all(|&v| v == 0.0));
        let full = random_pm_one(6, 1.0, &mut rng);
        for i in 0..6 {
            for k in 0..6 {
                if i != k {
                    assert!(full.couplings()[[i, k]].abs() == 1.0);
                }
            }
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = random_gaussian(10, 1.0, 0.1, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = random_gaussian(10, 1.0, 0.1, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn ring_ground_state_energy() {
        let p = ferromagnetic_ring(6, 1.0);
        let (_, e) = p.brute_force_ground_state();
        assert!((e - (-6.0)).abs() < 1e-12);
    }

    #[test]
    fn random_maxcut_edge_count_reasonable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mc = random_maxcut(20, 0.5, &mut rng);
        let max_edges = 20 * 19 / 2;
        let count = mc.edges().len();
        assert!(count > max_edges / 4 && count < 3 * max_edges / 4);
    }
}
