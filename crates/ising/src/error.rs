use std::error::Error;
use std::fmt;

/// Errors produced when constructing or evaluating Ising problems.
///
/// # Example
///
/// ```
/// use ember_ising::{IsingProblem, IsingError};
///
/// let mut builder = IsingProblem::builder(2);
/// let err = builder.coupling(1, 1, 0.5).unwrap_err();
/// assert!(matches!(err, IsingError::SelfCoupling(1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IsingError {
    /// A spin was coupled to itself, which the Hamiltonian forbids.
    SelfCoupling(usize),
    /// A spin index exceeded the problem size.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of spins in the problem.
        len: usize,
    },
    /// A state vector did not match the problem dimension.
    DimensionMismatch {
        /// Dimension the problem expects.
        expected: usize,
        /// Dimension that was supplied.
        actual: usize,
    },
    /// A supplied matrix was not symmetric where symmetry is required.
    NotSymmetric {
        /// Row of the first asymmetric entry found.
        row: usize,
        /// Column of the first asymmetric entry found.
        col: usize,
    },
    /// A numeric parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
}

impl fmt::Display for IsingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsingError::SelfCoupling(i) => {
                write!(f, "spin {i} cannot be coupled to itself")
            }
            IsingError::IndexOutOfBounds { index, len } => {
                write!(f, "spin index {index} out of bounds for {len} spins")
            }
            IsingError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            IsingError::NotSymmetric { row, col } => {
                write!(f, "coupling matrix not symmetric at ({row}, {col})")
            }
            IsingError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for IsingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = IsingError::SelfCoupling(3);
        let msg = e.to_string();
        assert!(msg.starts_with("spin 3"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IsingError>();
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!(
            "{:?}",
            IsingError::DimensionMismatch {
                expected: 1,
                actual: 2
            }
        )
        .is_empty());
    }
}
