use ndarray::{Array1, Array2};
use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingProblem, SpinVec};

/// A quadratic unconstrained binary optimization (QUBO) problem.
///
/// Minimizes `f(b) = Σ_{i<j} Qᵢⱼ bᵢ bⱼ + Σᵢ Qᵢᵢ bᵢ + offset` over
/// `b ∈ {0,1}ⁿ`, stored as a symmetric matrix whose diagonal holds the
/// linear terms.
///
/// The paper (§2.1) notes that a QUBO maps to the Ising formula by the
/// substitution `σᵢ = 2bᵢ − 1`; [`Qubo::to_ising`] performs that mapping
/// exactly, tracking the constant offset so objective values are preserved,
/// and [`Qubo::from_ising`] inverts it.
///
/// # Example
///
/// ```
/// use ember_ising::{Qubo, SpinVec};
/// use ndarray::arr2;
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// // Minimize b0 + b1 - 2 b0 b1 (both-on or both-off are optimal).
/// let q = Qubo::new(arr2(&[[1.0, -1.0], [-1.0, 1.0]]), 0.0)?;
/// let ising = q.to_ising();
/// let both_on = SpinVec::from_bits(&[true, true]);
/// assert!((ising.energy(&both_on) - q.value(&[true, true])).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Qubo {
    /// Symmetric matrix; off-diagonal `[i][j]` and `[j][i]` each hold half…
    /// no — both hold the same full pair coefficient; pairs are counted once.
    matrix: Array2<f64>,
    offset: f64,
}

impl Qubo {
    /// Creates a QUBO from a symmetric coefficient matrix.
    ///
    /// Off-diagonal entry `(i, j)` (equal to `(j, i)`) is the coefficient of
    /// the *pair* term `bᵢbⱼ` (counted once); diagonal entry `(i, i)` is the
    /// linear coefficient of `bᵢ`.
    ///
    /// # Errors
    ///
    /// * [`IsingError::DimensionMismatch`] if the matrix is not square.
    /// * [`IsingError::NotSymmetric`] if it is not symmetric.
    pub fn new(matrix: Array2<f64>, offset: f64) -> Result<Self, IsingError> {
        let (rows, cols) = matrix.dim();
        if rows != cols {
            return Err(IsingError::DimensionMismatch {
                expected: rows,
                actual: cols,
            });
        }
        for i in 0..rows {
            for j in (i + 1)..cols {
                if (matrix[[i, j]] - matrix[[j, i]]).abs() > 1e-12 {
                    return Err(IsingError::NotSymmetric { row: i, col: j });
                }
            }
        }
        Ok(Qubo { matrix, offset })
    }

    /// Number of binary variables.
    pub fn len(&self) -> usize {
        self.matrix.nrows()
    }

    /// Whether the problem has zero variables.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// The symmetric coefficient matrix.
    pub fn matrix(&self) -> &Array2<f64> {
        &self.matrix
    }

    /// The constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Evaluates the objective on a bit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the problem size.
    pub fn value(&self, bits: &[bool]) -> f64 {
        assert_eq!(bits.len(), self.len(), "bit vector length mismatch");
        let mut total = self.offset;
        for (i, &bi) in bits.iter().enumerate() {
            if !bi {
                continue;
            }
            total += self.matrix[[i, i]];
            for (j, &bj) in bits.iter().enumerate().skip(i + 1) {
                if bj {
                    total += self.matrix[[i, j]];
                }
            }
        }
        total
    }

    /// Converts to an equivalent Ising problem via `bᵢ = (σᵢ + 1)/2`.
    ///
    /// For every bit assignment `b` and its spin image `σ`,
    /// `self.value(b) == ising.energy(σ)` exactly (up to floating error).
    pub fn to_ising(&self) -> IsingProblem {
        let n = self.len();
        // f(b) = Σ_{i<j} Q_ij b_i b_j + Σ_i Q_ii b_i + c, with b = (σ+1)/2:
        //   pair term: Q_ij/4 (σ_i σ_j + σ_i + σ_j + 1)
        //   linear:    Q_ii/2 (σ_i + 1)
        // Ising form H = -½σᵀJσ - hᵀσ + offset means J_ij = -Q_ij/4 per
        // symmetric pair (counted once as -J_ij σ_i σ_j), h_i = -(Q_ii/2 +
        // Σ_{j≠i} Q_ij/4).
        let mut j = Array2::<f64>::zeros((n, n));
        let mut h = Array1::<f64>::zeros(n);
        let mut offset = self.offset;
        for i in 0..n {
            offset += self.matrix[[i, i]] / 2.0;
            h[i] -= self.matrix[[i, i]] / 2.0;
            for k in (i + 1)..n {
                let q = self.matrix[[i, k]];
                j[[i, k]] = -q / 4.0;
                j[[k, i]] = -q / 4.0;
                h[i] -= q / 4.0;
                h[k] -= q / 4.0;
                offset += q / 4.0;
            }
        }
        IsingProblem::from_parts(j, h, offset)
            .expect("construction from symmetric parts cannot fail")
    }

    /// Converts an Ising problem to an equivalent QUBO via `σᵢ = 2bᵢ − 1`.
    ///
    /// Inverse of [`Qubo::to_ising`]: energies are preserved exactly.
    pub fn from_ising(ising: &IsingProblem) -> Self {
        let n = ising.len();
        let j = ising.couplings();
        let h = ising.field();
        // H = -Σ_{i<j} J_ij σ_i σ_j - Σ h_i σ_i + c, σ = 2b - 1:
        //   σ_i σ_j = 4 b_i b_j - 2 b_i - 2 b_j + 1
        //   σ_i     = 2 b_i - 1
        let mut q = Array2::<f64>::zeros((n, n));
        let mut offset = ising.offset();
        for i in 0..n {
            q[[i, i]] -= 2.0 * h[i];
            offset += h[i];
            for k in (i + 1)..n {
                let jij = j[[i, k]];
                q[[i, k]] -= 4.0 * jij;
                q[[k, i]] -= 4.0 * jij;
                q[[i, i]] += 2.0 * jij;
                q[[k, k]] += 2.0 * jij;
                offset -= jij;
            }
        }
        Qubo { matrix: q, offset }
    }

    /// Evaluates the QUBO on the bit image of a spin state.
    pub fn value_of_spins(&self, state: &SpinVec) -> f64 {
        self.value(&state.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndarray::arr2;

    fn enumerate_bits(n: usize) -> impl Iterator<Item = Vec<bool>> {
        (0u32..(1 << n)).map(move |code| (0..n).map(|b| (code >> b) & 1 == 1).collect())
    }

    #[test]
    fn qubo_to_ising_preserves_objective() {
        let q = Qubo::new(
            arr2(&[[1.0, -2.0, 0.5], [-2.0, 0.0, 3.0], [0.5, 3.0, -1.0]]),
            0.25,
        )
        .unwrap();
        let ising = q.to_ising();
        for bits in enumerate_bits(3) {
            let s = SpinVec::from_bits(&bits);
            assert!(
                (q.value(&bits) - ising.energy(&s)).abs() < 1e-10,
                "mismatch at {bits:?}"
            );
        }
    }

    #[test]
    fn ising_to_qubo_preserves_energy() {
        let mut b = IsingProblem::builder(3);
        b.coupling(0, 1, 1.5)
            .unwrap()
            .coupling(1, 2, -0.75)
            .unwrap()
            .field(0, 0.3)
            .unwrap()
            .field(2, -1.1)
            .unwrap()
            .offset(0.4);
        let ising = b.build();
        let q = Qubo::from_ising(&ising);
        for bits in enumerate_bits(3) {
            let s = SpinVec::from_bits(&bits);
            assert!(
                (q.value(&bits) - ising.energy(&s)).abs() < 1e-10,
                "mismatch at {bits:?}"
            );
        }
    }

    #[test]
    fn roundtrip_is_identity_on_values() {
        let q = Qubo::new(arr2(&[[2.0, 1.0], [1.0, -3.0]]), 1.0).unwrap();
        let round = Qubo::from_ising(&q.to_ising());
        for bits in enumerate_bits(2) {
            assert!((q.value(&bits) - round.value(&bits)).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_asymmetric() {
        let err = Qubo::new(arr2(&[[0.0, 1.0], [2.0, 0.0]]), 0.0).unwrap_err();
        assert!(matches!(err, IsingError::NotSymmetric { .. }));
    }

    #[test]
    fn value_counts_pairs_once() {
        let q = Qubo::new(arr2(&[[0.0, 4.0], [4.0, 0.0]]), 0.0).unwrap();
        assert!((q.value(&[true, true]) - 4.0).abs() < 1e-12);
    }
}
