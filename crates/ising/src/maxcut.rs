use serde::{Deserialize, Serialize};

use crate::{IsingError, IsingProblem, SpinVec};

/// A weighted max-cut instance over an undirected graph.
///
/// Max-cut is part of Karp's original NP-complete set and is the canonical
/// benchmark for Ising machines (paper §2.1): partition the vertices into two
/// sets maximizing the total weight of edges crossing the partition. The
/// Ising mapping assigns `Jᵢⱼ = −wᵢⱼ` so that antiparallel spins (a cut edge)
/// lower the energy; `cut = (W_total − H) / 2` where `W_total` is the sum of
/// all edge weights.
///
/// # Example
///
/// ```
/// use ember_ising::{MaxCut, SpinVec};
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// // A triangle: best cut severs 2 of the 3 edges.
/// let mc = MaxCut::new(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])?;
/// let partition = SpinVec::from_bits(&[true, false, true]);
/// assert_eq!(mc.cut_value(&partition), 2.0);
/// let ising = mc.to_ising();
/// assert!((mc.cut_from_energy(ising.energy(&partition)) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaxCut {
    n: usize,
    edges: Vec<(usize, usize, f64)>,
    total_weight: f64,
}

impl MaxCut {
    /// Creates a max-cut instance over `n` vertices with weighted edges.
    ///
    /// # Errors
    ///
    /// * [`IsingError::SelfCoupling`] for a self-loop edge.
    /// * [`IsingError::IndexOutOfBounds`] for a vertex index `≥ n`.
    pub fn new(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self, IsingError> {
        let mut total_weight = 0.0;
        for &(u, v, w) in edges {
            if u == v {
                return Err(IsingError::SelfCoupling(u));
            }
            for &idx in &[u, v] {
                if idx >= n {
                    return Err(IsingError::IndexOutOfBounds { index: idx, len: n });
                }
            }
            total_weight += w;
        }
        Ok(MaxCut {
            n,
            edges: edges.to_vec(),
            total_weight,
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The edge list `(u, v, weight)`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The weight of edges crossing the partition encoded by `state`
    /// (spins up on one side, down on the other).
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn cut_value(&self, state: &SpinVec) -> f64 {
        assert_eq!(state.len(), self.n, "state length must match vertex count");
        let s = state.values();
        self.edges
            .iter()
            .map(|&(u, v, w)| if s[u] != s[v] { w } else { 0.0 })
            .sum()
    }

    /// Maps the instance to Ising form: `Jᵢⱼ = −wᵢⱼ`, `h = 0`.
    ///
    /// Minimizing the resulting Hamiltonian maximizes the cut; recover the
    /// cut with [`MaxCut::cut_from_energy`]. Parallel edges accumulate.
    pub fn to_ising(&self) -> IsingProblem {
        let mut accumulated: std::collections::HashMap<(usize, usize), f64> =
            std::collections::HashMap::new();
        for &(u, v, w) in &self.edges {
            let key = (u.min(v), u.max(v));
            *accumulated.entry(key).or_insert(0.0) -= w;
        }
        let mut builder = IsingProblem::builder(self.n);
        for ((u, v), j) in accumulated {
            builder
                .coupling(u, v, j)
                .expect("edges validated in constructor");
        }
        builder.build()
    }

    /// Converts an Ising energy (of the mapped problem) back to a cut value:
    /// `cut = (W_total − H) / 2`.
    pub fn cut_from_energy(&self, energy: f64) -> f64 {
        (self.total_weight - energy) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_cut_matches_energy_mapping() {
        let mc = MaxCut::new(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let ising = mc.to_ising();
        for code in 0u32..8 {
            let bits: Vec<bool> = (0..3).map(|b| (code >> b) & 1 == 1).collect();
            let s = SpinVec::from_bits(&bits);
            let direct = mc.cut_value(&s);
            let via_energy = mc.cut_from_energy(ising.energy(&s));
            assert!((direct - via_energy).abs() < 1e-12, "state {bits:?}");
        }
    }

    #[test]
    fn best_cut_of_triangle_is_two() {
        let mc = MaxCut::new(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let ising = mc.to_ising();
        let (_, ground) = ising.brute_force_ground_state();
        assert!((mc.cut_from_energy(ground) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_cut() {
        let mc = MaxCut::new(4, &[(0, 1, 2.5), (2, 3, 1.5), (0, 3, 1.0)]).unwrap();
        let s = SpinVec::from_bits(&[true, false, true, false]);
        // cuts (0,1) and (2,3); (0,3) also cut (true vs false).
        assert!((mc.cut_value(&s) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mc = MaxCut::new(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        let ising = mc.to_ising();
        assert!((ising.couplings()[[0, 1]] - (-3.0)).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(MaxCut::new(3, &[(1, 1, 1.0)]).is_err());
        assert!(MaxCut::new(3, &[(0, 7, 1.0)]).is_err());
    }

    #[test]
    fn bisection_of_complete_graph_k4() {
        // K4 with unit weights: max cut = 4 (2+2 split).
        let edges: Vec<(usize, usize, f64)> = (0..4)
            .flat_map(|u| ((u + 1)..4).map(move |v| (u, v, 1.0)))
            .collect();
        let mc = MaxCut::new(4, &edges).unwrap();
        let (_, ground) = mc.to_ising().brute_force_ground_state();
        assert!((mc.cut_from_energy(ground) - 4.0).abs() < 1e-12);
    }
}
