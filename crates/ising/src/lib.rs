//! # ember-ising
//!
//! Core Ising-model types shared by every other `ember` crate.
//!
//! An *Ising problem* is the Hamiltonian of a system of coupled spins
//! `σᵢ ∈ {-1, +1}` (paper Eq. 1):
//!
//! ```text
//! H(σ) = − Σ_{i<j} Jᵢⱼ σᵢ σⱼ − Σᵢ hᵢ σᵢ
//! ```
//!
//! Physical Ising machines (quantum annealers, CIMs, OIMs, BRIM) seek
//! low-energy states of this Hamiltonian. This crate provides:
//!
//! * [`SpinVec`] — a vector of binary spins with bit conversions,
//! * [`IsingProblem`] — dense symmetric couplings + external field,
//! * [`BipartiteProblem`] — the RBM-shaped special case of §3.1 where only
//!   visible↔hidden couplings exist,
//! * [`Qubo`] — quadratic unconstrained binary optimization problems and the
//!   exact QUBO↔Ising transformation (`σᵢ = 2bᵢ − 1`),
//! * [`MaxCut`] — the classic NP-complete benchmark mapped to Ising form,
//! * [`Annealer`] — a Metropolis simulated-annealing baseline solver used as
//!   the von-Neumann comparison point for the substrate,
//! * [`generate`] — seeded random problem generators.
//!
//! # Example
//!
//! ```
//! use ember_ising::{IsingProblem, SpinVec, Annealer, AnnealSchedule};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), ember_ising::IsingError> {
//! // A 3-spin frustrated triangle: no state satisfies all couplings.
//! let mut builder = IsingProblem::builder(3);
//! builder.coupling(0, 1, -1.0)?;
//! builder.coupling(1, 2, -1.0)?;
//! builder.coupling(0, 2, -1.0)?;
//! let problem = builder.build();
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let annealer = Annealer::new(AnnealSchedule::geometric(2.0, 0.05, 200));
//! let solution = annealer.solve(&problem, &mut rng);
//! assert_eq!(solution.energy, problem.energy(&solution.state));
//! // Ground state of the frustrated triangle has energy -1.
//! assert!((solution.energy - (-1.0)).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
mod bipartite;
mod error;
pub mod generate;
mod maxcut;
mod model;
mod qubo;
mod stream;

pub use annealer::{AnnealSchedule, Annealer, Solution};
pub use bipartite::BipartiteProblem;
pub use error::IsingError;
pub use maxcut::MaxCut;
pub use model::{IsingBuilder, IsingProblem, Spin, SpinVec};
pub use qubo::Qubo;
pub use stream::RngStreams;
