use ndarray::{Array1, Array2};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::IsingError;

/// A single Ising spin, restricted to the two values `Up` (+1) and `Down` (−1).
///
/// # Example
///
/// ```
/// use ember_ising::Spin;
///
/// assert_eq!(Spin::Up.value(), 1.0);
/// assert_eq!(Spin::from_bit(false), Spin::Down);
/// assert_eq!(Spin::Down.flipped(), Spin::Up);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Spin {
    /// Spin value +1.
    #[default]
    Up,
    /// Spin value −1.
    Down,
}

impl Spin {
    /// Numeric value of the spin: `+1.0` or `−1.0`.
    #[inline]
    pub fn value(self) -> f64 {
        match self {
            Spin::Up => 1.0,
            Spin::Down => -1.0,
        }
    }

    /// Converts a QUBO bit to a spin via `σ = 2b − 1` (paper §2.1).
    #[inline]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Spin::Up
        } else {
            Spin::Down
        }
    }

    /// Converts the spin back to a QUBO bit: `b = (σ + 1) / 2`.
    #[inline]
    pub fn to_bit(self) -> bool {
        matches!(self, Spin::Up)
    }

    /// The opposite spin.
    #[inline]
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            Spin::Up => Spin::Down,
            Spin::Down => Spin::Up,
        }
    }
}

impl From<bool> for Spin {
    fn from(bit: bool) -> Self {
        Spin::from_bit(bit)
    }
}

/// A state vector of Ising spins.
///
/// Internally stores `±1.0` values so that energies are a plain dot product;
/// the invariant that every entry is exactly `+1.0` or `−1.0` is maintained
/// by construction.
///
/// # Example
///
/// ```
/// use ember_ising::SpinVec;
///
/// let s = SpinVec::from_bits(&[true, false, true]);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.values()[1], -1.0);
/// assert_eq!(s.to_bits(), vec![true, false, true]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpinVec {
    values: Array1<f64>,
}

impl SpinVec {
    /// Creates a state with every spin `Up`.
    pub fn all_up(n: usize) -> Self {
        SpinVec {
            values: Array1::ones(n),
        }
    }

    /// Creates a state with every spin `Down`.
    pub fn all_down(n: usize) -> Self {
        SpinVec {
            values: Array1::from_elem(n, -1.0),
        }
    }

    /// Creates a uniformly random state.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let values =
            Array1::from_iter((0..n).map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 }));
        SpinVec { values }
    }

    /// Builds a state from QUBO bits via `σ = 2b − 1`.
    pub fn from_bits(bits: &[bool]) -> Self {
        let values = Array1::from_iter(bits.iter().map(|&b| if b { 1.0 } else { -1.0 }));
        SpinVec { values }
    }

    /// Builds a state from explicit spins.
    pub fn from_spins(spins: &[Spin]) -> Self {
        let values = Array1::from_iter(spins.iter().map(|s| s.value()));
        SpinVec { values }
    }

    /// Builds a state from raw `±1.0` values.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::InvalidParameter`] if any entry is not exactly
    /// `+1.0` or `−1.0`.
    pub fn try_from_values(values: Array1<f64>) -> Result<Self, IsingError> {
        if values.iter().any(|&v| v != 1.0 && v != -1.0) {
            return Err(IsingError::InvalidParameter {
                name: "values",
                reason: "every entry must be exactly +1.0 or -1.0",
            });
        }
        Ok(SpinVec { values })
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state holds no spins.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The spin at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn spin(&self, index: usize) -> Spin {
        if self.values[index] > 0.0 {
            Spin::Up
        } else {
            Spin::Down
        }
    }

    /// Flips the spin at `index` in place.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn flip(&mut self, index: usize) {
        self.values[index] = -self.values[index];
    }

    /// Sets the spin at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&mut self, index: usize, spin: Spin) {
        self.values[index] = spin.value();
    }

    /// Raw `±1.0` view, suitable for dot products.
    pub fn values(&self) -> &Array1<f64> {
        &self.values
    }

    /// Converts to QUBO bits (`b = (σ+1)/2`).
    pub fn to_bits(&self) -> Vec<bool> {
        self.values.iter().map(|&v| v > 0.0).collect()
    }

    /// Iterates over the spins.
    pub fn iter(&self) -> impl Iterator<Item = Spin> + '_ {
        self.values
            .iter()
            .map(|&v| if v > 0.0 { Spin::Up } else { Spin::Down })
    }

    /// Hamming distance to another state (number of differing spins).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming(&self, other: &SpinVec) -> usize {
        assert_eq!(self.len(), other.len(), "states must have equal length");
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl FromIterator<Spin> for SpinVec {
    fn from_iter<I: IntoIterator<Item = Spin>>(iter: I) -> Self {
        let values = Array1::from_iter(iter.into_iter().map(|s| s.value()));
        SpinVec { values }
    }
}

/// A dense Ising problem: symmetric couplings `J`, external field `h`, and a
/// constant energy offset (used to track QUBO↔Ising equivalence exactly).
///
/// The Hamiltonian is `H(σ) = −½ σᵀJσ − hᵀσ + offset` where `J` is symmetric
/// with zero diagonal, so each pair `(i, j)` with `i < j` contributes
/// `−Jᵢⱼ σᵢ σⱼ` exactly once, matching paper Eq. 1.
///
/// # Example
///
/// ```
/// use ember_ising::{IsingProblem, SpinVec};
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// let mut b = IsingProblem::builder(2);
/// b.coupling(0, 1, 2.0)?.field(0, 0.5)?;
/// let p = b.build();
/// let s = SpinVec::from_bits(&[true, true]);
/// // H = -J01*1*1 - h0*1 = -2.0 - 0.5
/// assert!((p.energy(&s) - (-2.5)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsingProblem {
    couplings: Array2<f64>,
    field: Array1<f64>,
    offset: f64,
}

impl IsingProblem {
    /// Starts building a problem over `n` spins.
    pub fn builder(n: usize) -> IsingBuilder {
        IsingBuilder::new(n)
    }

    /// Constructs a problem directly from a symmetric coupling matrix and a
    /// field vector.
    ///
    /// # Errors
    ///
    /// * [`IsingError::DimensionMismatch`] if `couplings` is not square or
    ///   `field` has a different length.
    /// * [`IsingError::NotSymmetric`] if `couplings` is not symmetric.
    /// * [`IsingError::SelfCoupling`] if the diagonal is nonzero.
    pub fn from_parts(
        couplings: Array2<f64>,
        field: Array1<f64>,
        offset: f64,
    ) -> Result<Self, IsingError> {
        let (rows, cols) = couplings.dim();
        if rows != cols {
            return Err(IsingError::DimensionMismatch {
                expected: rows,
                actual: cols,
            });
        }
        if field.len() != rows {
            return Err(IsingError::DimensionMismatch {
                expected: rows,
                actual: field.len(),
            });
        }
        for i in 0..rows {
            if couplings[[i, i]] != 0.0 {
                return Err(IsingError::SelfCoupling(i));
            }
            for j in (i + 1)..cols {
                if (couplings[[i, j]] - couplings[[j, i]]).abs() > 1e-12 {
                    return Err(IsingError::NotSymmetric { row: i, col: j });
                }
            }
        }
        Ok(IsingProblem {
            couplings,
            field,
            offset,
        })
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        self.field.len()
    }

    /// Whether the problem has zero spins.
    pub fn is_empty(&self) -> bool {
        self.field.is_empty()
    }

    /// The symmetric coupling matrix `J` (zero diagonal).
    pub fn couplings(&self) -> &Array2<f64> {
        &self.couplings
    }

    /// The external field `h`.
    pub fn field(&self) -> &Array1<f64> {
        &self.field
    }

    /// The constant energy offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Evaluates the Hamiltonian `H(σ) = −½ σᵀJσ − hᵀσ + offset`.
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length.
    pub fn energy(&self, state: &SpinVec) -> f64 {
        assert_eq!(
            state.len(),
            self.len(),
            "state length must match problem size"
        );
        let s = state.values();
        let js = self.couplings.dot(s);
        -0.5 * s.dot(&js) - self.field.dot(s) + self.offset
    }

    /// Energy change from flipping spin `i`: `ΔE = 2 σᵢ (Σⱼ Jᵢⱼ σⱼ + hᵢ)`.
    ///
    /// This is the `O(N)` incremental form used by annealers; it equals
    /// `energy(flipped) − energy(state)` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `state` has the wrong length.
    pub fn flip_delta(&self, state: &SpinVec, i: usize) -> f64 {
        assert_eq!(
            state.len(),
            self.len(),
            "state length must match problem size"
        );
        let s = state.values();
        let local: f64 = self.couplings.row(i).dot(s);
        2.0 * s[i] * (local + self.field[i])
    }

    /// The local field seen by spin `i`: `Σⱼ Jᵢⱼ σⱼ + hᵢ`.
    ///
    /// In the BRIM substrate this is the net current charging node `i`'s
    /// capacitor (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds or `state` has the wrong length.
    pub fn local_field(&self, state: &SpinVec, i: usize) -> f64 {
        assert_eq!(state.len(), self.len());
        self.couplings.row(i).dot(state.values()) + self.field[i]
    }

    /// Exhaustively finds a ground state by enumeration.
    ///
    /// Intended for validation on tiny problems only.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than 24 spins (enumeration would be
    /// prohibitively slow).
    pub fn brute_force_ground_state(&self) -> (SpinVec, f64) {
        let n = self.len();
        assert!(n <= 24, "brute force limited to 24 spins, got {n}");
        let mut best_state = SpinVec::all_up(n);
        let mut best_energy = self.energy(&best_state);
        for code in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|b| (code >> b) & 1 == 1).collect();
            let state = SpinVec::from_bits(&bits);
            let e = self.energy(&state);
            if e < best_energy {
                best_energy = e;
                best_state = state;
            }
        }
        (best_state, best_energy)
    }
}

/// Incremental builder for [`IsingProblem`] (non-consuming, chainable).
///
/// # Example
///
/// ```
/// use ember_ising::IsingProblem;
///
/// # fn main() -> Result<(), ember_ising::IsingError> {
/// let mut b = IsingProblem::builder(3);
/// b.coupling(0, 1, 1.0)?.coupling(1, 2, -0.5)?.field(2, 0.25)?;
/// let p = b.build();
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IsingBuilder {
    n: usize,
    couplings: Array2<f64>,
    field: Array1<f64>,
    offset: f64,
}

impl IsingBuilder {
    /// Creates a builder for `n` spins with zero couplings and field.
    pub fn new(n: usize) -> Self {
        IsingBuilder {
            n,
            couplings: Array2::zeros((n, n)),
            field: Array1::zeros(n),
            offset: 0.0,
        }
    }

    /// Sets the symmetric coupling `Jᵢⱼ = Jⱼᵢ = value`.
    ///
    /// # Errors
    ///
    /// * [`IsingError::SelfCoupling`] if `i == j`.
    /// * [`IsingError::IndexOutOfBounds`] if either index is out of range.
    pub fn coupling(&mut self, i: usize, j: usize, value: f64) -> Result<&mut Self, IsingError> {
        if i == j {
            return Err(IsingError::SelfCoupling(i));
        }
        for &idx in &[i, j] {
            if idx >= self.n {
                return Err(IsingError::IndexOutOfBounds {
                    index: idx,
                    len: self.n,
                });
            }
        }
        self.couplings[[i, j]] = value;
        self.couplings[[j, i]] = value;
        Ok(self)
    }

    /// Sets the external field `hᵢ = value`.
    ///
    /// # Errors
    ///
    /// Returns [`IsingError::IndexOutOfBounds`] if `i` is out of range.
    pub fn field(&mut self, i: usize, value: f64) -> Result<&mut Self, IsingError> {
        if i >= self.n {
            return Err(IsingError::IndexOutOfBounds {
                index: i,
                len: self.n,
            });
        }
        self.field[i] = value;
        Ok(self)
    }

    /// Sets the constant energy offset.
    pub fn offset(&mut self, value: f64) -> &mut Self {
        self.offset = value;
        self
    }

    /// Finalizes the problem.
    pub fn build(&self) -> IsingProblem {
        IsingProblem {
            couplings: self.couplings.clone(),
            field: self.field.clone(),
            offset: self.offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_problem() -> IsingProblem {
        let mut b = IsingProblem::builder(4);
        b.coupling(0, 1, 1.0)
            .unwrap()
            .coupling(1, 2, -2.0)
            .unwrap()
            .coupling(2, 3, 0.5)
            .unwrap()
            .field(0, 0.3)
            .unwrap()
            .field(3, -0.7)
            .unwrap();
        b.build()
    }

    #[test]
    fn energy_matches_pairwise_definition() {
        let p = small_problem();
        let s = SpinVec::from_bits(&[true, false, true, false]);
        // Manual: -J01*(+1)(-1) - J12*(-1)(+1) - J23*(+1)(-1) - h0*(+1) - h3*(-1)
        let expected =
            -(-(1.0 * 1.0)) - (-2.0 * -1.0 * 1.0) - -(0.5 * 1.0) - (0.3 * 1.0) - (-0.7 * -1.0);
        assert!((p.energy(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn flip_delta_matches_full_recompute() {
        let p = small_problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let mut s = SpinVec::random(4, &mut rng);
            for i in 0..4 {
                let before = p.energy(&s);
                let delta = p.flip_delta(&s, i);
                s.flip(i);
                let after = p.energy(&s);
                s.flip(i);
                assert!(
                    (after - before - delta).abs() < 1e-10,
                    "delta mismatch at spin {i}"
                );
            }
        }
    }

    #[test]
    fn builder_rejects_self_coupling_and_oob() {
        let mut b = IsingProblem::builder(2);
        assert_eq!(
            b.coupling(0, 0, 1.0).unwrap_err(),
            IsingError::SelfCoupling(0)
        );
        assert!(matches!(
            b.coupling(0, 5, 1.0).unwrap_err(),
            IsingError::IndexOutOfBounds { index: 5, len: 2 }
        ));
        assert!(matches!(
            b.field(9, 1.0).unwrap_err(),
            IsingError::IndexOutOfBounds { index: 9, len: 2 }
        ));
    }

    #[test]
    fn from_parts_validates() {
        let j = ndarray::arr2(&[[0.0, 1.0], [2.0, 0.0]]);
        let h = ndarray::arr1(&[0.0, 0.0]);
        assert!(matches!(
            IsingProblem::from_parts(j, h, 0.0).unwrap_err(),
            IsingError::NotSymmetric { row: 0, col: 1 }
        ));

        let j = ndarray::arr2(&[[1.0, 0.0], [0.0, 0.0]]);
        let h = ndarray::arr1(&[0.0, 0.0]);
        assert!(matches!(
            IsingProblem::from_parts(j, h, 0.0).unwrap_err(),
            IsingError::SelfCoupling(0)
        ));
    }

    #[test]
    fn spinvec_bit_roundtrip() {
        let bits = vec![true, false, false, true, true];
        let s = SpinVec::from_bits(&bits);
        assert_eq!(s.to_bits(), bits);
    }

    #[test]
    fn spinvec_rejects_invalid_values() {
        let v = ndarray::arr1(&[1.0, 0.5]);
        assert!(SpinVec::try_from_values(v).is_err());
        let v = ndarray::arr1(&[1.0, -1.0]);
        assert!(SpinVec::try_from_values(v).is_ok());
    }

    #[test]
    fn spinvec_flip_and_hamming() {
        let mut s = SpinVec::all_up(3);
        s.flip(1);
        assert_eq!(s.spin(1), Spin::Down);
        assert_eq!(s.hamming(&SpinVec::all_up(3)), 1);
    }

    #[test]
    fn brute_force_finds_ferromagnetic_ground_state() {
        // Ferromagnetic chain: ground states are all-up / all-down.
        let mut b = IsingProblem::builder(5);
        for i in 0..4 {
            b.coupling(i, i + 1, 1.0).unwrap();
        }
        let p = b.build();
        let (state, energy) = p.brute_force_ground_state();
        assert!((energy - (-4.0)).abs() < 1e-12);
        let bits = state.to_bits();
        assert!(bits.iter().all(|&b| b == bits[0]));
    }

    #[test]
    fn spin_conversions() {
        assert_eq!(Spin::from_bit(true), Spin::Up);
        assert!(Spin::Up.to_bit());
        assert_eq!(Spin::from(false), Spin::Down);
        assert_eq!(Spin::default(), Spin::Up);
    }

    #[test]
    fn offset_shifts_energy_uniformly() {
        let mut b = IsingProblem::builder(2);
        b.coupling(0, 1, 1.0).unwrap().offset(5.0);
        let p = b.build();
        let s = SpinVec::all_up(2);
        assert!((p.energy(&s) - (5.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn local_field_is_flip_delta_over_two_sigma() {
        let p = small_problem();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = SpinVec::random(4, &mut rng);
        for i in 0..4 {
            let lf = p.local_field(&s, i);
            let delta = p.flip_delta(&s, i);
            assert!((delta - 2.0 * s.values()[i] * lf).abs() < 1e-12);
        }
    }
}
