//! Property-based tests for the Ising core invariants.

use ember_ising::{generate, BipartiteProblem, IsingProblem, Qubo, SpinVec};
use ndarray::{Array1, Array2};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_problem(max_n: usize) -> impl Strategy<Value = IsingProblem> {
    (2..=max_n, any::<u64>(), 0.0f64..2.0, 0.0f64..1.0).prop_map(|(n, seed, jstd, hstd)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generate::random_gaussian(n, jstd, hstd, &mut rng)
    })
}

fn arb_bits(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip delta must equal the full energy recomputation for every spin.
    #[test]
    fn flip_delta_consistent(problem in arb_problem(12), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = SpinVec::random(problem.len(), &mut rng);
        for i in 0..problem.len() {
            let before = problem.energy(&state);
            let delta = problem.flip_delta(&state, i);
            state.flip(i);
            let after = problem.energy(&state);
            prop_assert!((after - before - delta).abs() < 1e-9);
        }
    }

    /// Double flip returns to the original energy.
    #[test]
    fn double_flip_identity(problem in arb_problem(10), seed in any::<u64>(), idx in 0usize..10) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut state = SpinVec::random(problem.len(), &mut rng);
        let i = idx % problem.len();
        let e0 = problem.energy(&state);
        state.flip(i);
        state.flip(i);
        prop_assert!((problem.energy(&state) - e0).abs() < 1e-12);
    }

    /// QUBO → Ising preserves objective values for all assignments.
    #[test]
    fn qubo_ising_equivalence(seed in any::<u64>(), n in 2usize..7) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dense = generate::random_gaussian(n, 1.0, 0.5, &mut rng);
        let qubo = Qubo::from_ising(&dense);
        let back = qubo.to_ising();
        for code in 0u32..(1 << n) {
            let bits: Vec<bool> = (0..n).map(|b| (code >> b) & 1 == 1).collect();
            let s = SpinVec::from_bits(&bits);
            let e_orig = dense.energy(&s);
            let e_qubo = qubo.value(&bits);
            let e_back = back.energy(&s);
            prop_assert!((e_orig - e_qubo).abs() < 1e-8, "ising->qubo mismatch");
            prop_assert!((e_orig - e_back).abs() < 1e-8, "roundtrip mismatch");
        }
    }

    /// Bipartite embedding into the dense Ising form preserves energies.
    #[test]
    fn bipartite_embedding_equivalence(
        seed in any::<u64>(),
        m in 1usize..4,
        n in 1usize..4,
        v in arb_bits(4),
        h in arb_bits(4),
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        let w = Array2::from_shape_fn((m, n), |_| rng.random::<f64>() * 2.0 - 1.0);
        let bv = Array1::from_shape_fn(m, |_| rng.random::<f64>() - 0.5);
        let bh = Array1::from_shape_fn(n, |_| rng.random::<f64>() - 0.5);
        let p = BipartiteProblem::new(w, bv, bh).unwrap();
        let ising = p.to_ising();
        let v = &v[..m];
        let h = &h[..n];
        let combined: Vec<bool> = v.iter().chain(h.iter()).copied().collect();
        let s = SpinVec::from_bits(&combined);
        prop_assert!((p.energy_bits(v, h) - ising.energy(&s)).abs() < 1e-9);
    }

    /// Spin/bit conversion is a bijection.
    #[test]
    fn spin_bit_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
        let s = SpinVec::from_bits(&bits);
        prop_assert_eq!(s.to_bits(), bits);
    }

    /// Hamming distance is a metric w.r.t. flips.
    #[test]
    fn hamming_counts_flips(bits in proptest::collection::vec(any::<bool>(), 1..32), flips in proptest::collection::vec(any::<proptest::sample::Index>(), 0..8)) {
        let s0 = SpinVec::from_bits(&bits);
        let mut s1 = s0.clone();
        let mut flipped = std::collections::HashSet::new();
        for f in flips {
            let i = f.index(bits.len());
            s1.flip(i);
            if !flipped.insert(i) {
                flipped.remove(&i);
            }
        }
        prop_assert_eq!(s0.hamming(&s1), flipped.len());
    }
}
