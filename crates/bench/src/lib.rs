//! # ember-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`) plus Criterion micro-benchmarks (see `benches/`).
//!
//! Every binary accepts:
//!
//! * `--quick` (default) — CI-scale workloads that finish in seconds;
//! * `--full` — paper-scale workloads (Table 1 sizes, more epochs);
//! * `--seed <u64>` — RNG seed (default 2023);
//! * `--json` — also emit machine-readable results on stdout.
//!
//! Each prints the paper's reported values next to the measured ones so
//! the reproduction can be judged line by line (EXPERIMENTS.md records a
//! snapshot).

pub mod trajectory;

use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ember_core::{BgfConfig, BoltzmannGradientFollower, GibbsSampler, GsConfig};
use ember_datasets::ImageDataset;
use ember_rbm::{CdTrainer, Mlp, MlpConfig, Rbm};

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Paper-scale (`--full`) vs CI-scale (default).
    pub full: bool,
    /// RNG seed.
    pub seed: u64,
    /// Emit JSON blob at the end.
    pub json: bool,
}

impl RunConfig {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags or a malformed seed.
    pub fn from_args() -> Self {
        let mut config = RunConfig {
            full: false,
            seed: 2023,
            json: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => config.full = false,
                "--full" => config.full = true,
                "--json" => config.json = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    config.seed = v.parse().expect("--seed needs an integer");
                }
                other => panic!("unknown flag `{other}` (try --quick/--full/--seed/--json)"),
            }
        }
        config
    }

    /// A seeded RNG for this run.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Picks between the quick and full value of a parameter.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// Prints a boxed section header.
pub fn header(title: &str) {
    let line = "=".repeat(title.len() + 4);
    println!("\n{line}\n| {title} |\n{line}");
}

/// Prints one `name: paper vs measured` comparison row.
pub fn compare_row(name: &str, paper: &str, measured: &str) {
    println!("{name:<28} paper: {paper:<16} measured: {measured}");
}

/// Trains a fresh RBM with CD-k and returns it.
#[allow(clippy::too_many_arguments)]
pub fn train_cd(
    visible: usize,
    hidden: usize,
    data: &Array2<f64>,
    k: usize,
    lr: f64,
    batch: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> Rbm {
    let mut rbm = Rbm::random(visible, hidden, 0.01, rng);
    let trainer = CdTrainer::new(k, lr);
    trainer.train(&mut rbm, data, batch, epochs, rng);
    rbm
}

/// Trains a fresh RBM on the BGF behavioral hardware and returns the
/// machine's effective model.
pub fn train_bgf(
    visible: usize,
    hidden: usize,
    data: &Array2<f64>,
    config: BgfConfig,
    epochs: usize,
    rng: &mut StdRng,
) -> Rbm {
    let init = Rbm::random(visible, hidden, 0.01, rng);
    let mut bgf = BoltzmannGradientFollower::new(init, config, rng);
    for _ in 0..epochs {
        bgf.train_epoch(data, rng);
    }
    bgf.effective_rbm()
}

/// Trains a fresh RBM on the GS accelerator and returns the host model.
pub fn train_gs(
    visible: usize,
    hidden: usize,
    data: &Array2<f64>,
    config: GsConfig,
    batch: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> Rbm {
    let init = Rbm::random(visible, hidden, 0.01, rng);
    let mut gs = GibbsSampler::new(init, config, rng);
    for _ in 0..epochs {
        gs.train_epoch(data, batch, rng);
    }
    gs.rbm().clone()
}

/// RBM-features + logistic-regression-head classification accuracy
/// (the paper's §4.1 evaluation path for image benchmarks).
pub fn rbm_classifier_accuracy(
    rbm: &Rbm,
    train: &ImageDataset,
    test: &ImageDataset,
    head_epochs: usize,
    rng: &mut StdRng,
) -> f64 {
    let train_feats = rbm.hidden_probs_batch(train.images());
    let test_feats = rbm.hidden_probs_batch(test.images());
    let mut head = Mlp::new(rbm.hidden_len(), &[], train.classes(), 0.01, rng);
    let config = MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };
    for _ in 0..head_epochs {
        head.train_epoch(&train_feats, train.labels(), 32, &config, rng);
    }
    head.accuracy(&test_feats, test.labels())
}

/// Default BGF configuration for learning-quality experiments: a packet
/// size that lands near CD's per-sample effective rate on small data.
pub fn bgf_quality_config() -> BgfConfig {
    BgfConfig::default()
        .with_pump_ratio(1.0 / 2048.0)
        .with_negative_sweeps(2)
        .with_particles(20)
}

/// Epoch multiplier for BGF relative to CD in quality experiments: the
/// charge-packet learning rate is deliberately small (stability of the
/// minibatch-1 persistent chains), so the hardware needs more passes to
/// cover the same parameter distance. The hardware has the time budget to
/// spare — each pass is ~29× faster than the host's (Fig. 5).
pub const BGF_EPOCH_FACTOR: usize = 3;

/// Star-rating MAE of a collaborative-filtering RBM on the held-out split,
/// with a least-squares calibration `stars ≈ a + b·P(like)` fitted on the
/// *training* ratings (the binary like-matrix conflates "unrated" with
/// "disliked", so the raw reconstruction probability needs an affine map
/// onto the 1–5 scale; the paper's reference \[57\] uses softmax visibles
/// which build this calibration in).
pub fn movielens_mae(rbm: &Rbm, ml: &ember_datasets::MovieLens, matrix: &Array2<f64>) -> f64 {
    let hidden = rbm.hidden_probs_batch(matrix);
    let recon = rbm.visible_probs_batch(&hidden);

    // Fit stars = a + b·p on the training ratings.
    let (mut sum_p, mut sum_s, mut sum_pp, mut sum_ps) = (0.0, 0.0, 0.0, 0.0);
    let n = ml.train().len() as f64;
    for r in ml.train() {
        let p = recon[[r.item, r.user]];
        let s = r.stars as f64;
        sum_p += p;
        sum_s += s;
        sum_pp += p * p;
        sum_ps += p * s;
    }
    let var_p = sum_pp / n - (sum_p / n) * (sum_p / n);
    let (a, b) = if var_p > 1e-9 {
        let b = (sum_ps / n - sum_p / n * (sum_s / n)) / var_p;
        (sum_s / n - b * sum_p / n, b)
    } else {
        (sum_s / n, 0.0)
    };

    let mut preds = Vec::with_capacity(ml.test().len());
    let mut targets = Vec::with_capacity(ml.test().len());
    for r in ml.test() {
        let p = recon[[r.item, r.user]];
        preds.push((a + b * p).clamp(1.0, 5.0));
        targets.push(r.stars as f64);
    }
    ember_metrics::mean_absolute_error(&preds, &targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_switches_on_full() {
        let quick = RunConfig {
            full: false,
            seed: 0,
            json: false,
        };
        let full = RunConfig {
            full: true,
            ..quick
        };
        assert_eq!(quick.pick(1, 2), 1);
        assert_eq!(full.pick(1, 2), 2);
    }

    #[test]
    fn cd_helper_trains() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = Array2::from_shape_fn((20, 6), |(i, _)| (i % 2) as f64);
        let rbm = train_cd(6, 3, &data, 1, 0.1, 10, 5, &mut rng);
        assert_eq!(rbm.visible_len(), 6);
    }

    #[test]
    fn classifier_helper_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = ember_datasets::digits::generate(60, 3).binarized(0.5);
        let split = ember_datasets::train_test_split(&ds, 0.25, &mut rng);
        let rbm = train_cd(784, 16, split.train.images(), 1, 0.1, 10, 2, &mut rng);
        let acc = rbm_classifier_accuracy(&rbm, &split.train, &split.test, 10, &mut rng);
        assert!((0.0..=1.0).contains(&acc));
    }
}
