//! The per-PR performance-trajectory suite shared by the `bench_pr<N>`
//! binaries: fixed-seed workloads at the paper's layer sizes whose
//! throughput every future PR is held to (the `bench_gate` binary
//! compares two trajectory files and fails on regression).
//!
//! **Timing semantics:** all rows measure *process CPU time* (user +
//! system, summed over every thread — see [`time`]), not wall-clock.
//! CPU time is what makes the trajectory comparable on the shared,
//! background-loaded runners these files are produced on. The
//! consequence: throughput is work per CPU-second, so a suite that
//! parallelizes across threads (e.g. `gibbs-chain`'s
//! `parallel-streams` mode) is credited for its *total work*, not its
//! latency — on a multi-core host its "speedup" over the serial mode
//! reflects per-thread efficiency, not the wall-clock win. The
//! algorithmic gates (batched GEMM vs scalar, bipartite vs dense
//! kernel) are unaffected.
//!
//! **Committed artifacts:** shared runners oscillate their effective
//! clock by double digits over minutes (a same-binary self-gate fails
//! at 10% on the reference box), which no within-process estimator can
//! reject. [`time`] therefore takes the best of three windows *within*
//! a process (interference only ever adds time to a deterministic
//! workload), and the committed `BENCH_PR<N>.json` points are per-row
//! **medians across several process runs** — both files produced with
//! the same estimator, so the gate compares like with like. A few
//! percent of irreducible between-binary variance remains (final-link
//! code layout shifts hot-kernel alignment), which is part of what the
//! gate's drift tolerance absorbs.

use std::time::{Duration, Instant};

use ember_brim::{BipartiteBrim, BrimConfig, FlipSchedule};
use ember_core::kernels::{binary_gemm, BitMatrix};
use ember_core::substrate::{BrimSubstrate, SoftwareGibbs, Substrate};
use ember_core::{GibbsSampler, GsConfig, GsEngine, GsKernel, SubstrateSpec};
use ember_ising::{BipartiteProblem, RngStreams};
use ember_rbm::{gibbs, CdTrainer, Rbm};
use ember_serve::{Priority, SampleRequest, SamplingService};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{header, RunConfig};

/// The paper's layer sizes exercised by the suite.
pub const SIZES: [(usize, usize); 3] = [(784, 200), (784, 500), (108, 1024)];

/// One measured trajectory row; `(name, visible, hidden, mode)` is the
/// identity the regression gate matches on.
pub struct BenchRow {
    /// Suite name (e.g. `gibbs-cd1`).
    pub name: String,
    /// Visible-layer size.
    pub visible: usize,
    /// Hidden-layer size.
    pub hidden: usize,
    /// Variant within the suite (e.g. `batched` vs `serial-baseline`).
    pub mode: &'static str,
    /// Mean per-call process-CPU time of the measured unit in
    /// milliseconds (see [`time`]; the JSON key stays `wall_ms` for
    /// schema compatibility with the PR 1 trajectory point).
    pub wall_ms: f64,
    /// Work units per CPU-second (higher is better; the gated quantity).
    pub throughput: f64,
    /// Unit of `throughput`.
    pub unit: &'static str,
}

impl BenchRow {
    /// One JSON object, schema shared by every `BENCH_PR<N>.json`.
    pub fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"visible\":{},\"hidden\":{},\"mode\":\"{}\",\"wall_ms\":{:.3},\"throughput\":{:.3},\"unit\":\"{}\"}}",
            self.name, self.visible, self.hidden, self.mode, self.wall_ms, self.throughput,
            self.unit
        )
    }
}

/// Cumulative CPU time (user + system, all threads) of this process in
/// milliseconds, read from `/proc/self/stat`. Unlike wall-clock time,
/// CPU time is immune to preemption by unrelated load on the host —
/// essential on the shared single-core runners this trajectory is
/// measured on. Returns `None` off Linux.
fn process_cpu_time_ms() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields after the parenthesized comm (which may itself contain
    // spaces): state ppid pgrp session tty_nr tpgid flags minflt
    // cminflt majflt cmajflt utime stime …
    let rest = stat.rsplit(')').next()?;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    // USER_HZ is 100 on every Linux configuration that matters.
    Some((utime + stime) * 10.0)
}

/// Per-call time of a deterministic workload, in milliseconds: the
/// **best of three measurement windows**.
///
/// Each window makes repeated calls until **at least `reps` calls and
/// ≥ 150 ms of accumulated CPU time** have been spent, yielding
/// `total / calls`; the minimum window mean is returned. Accumulating
/// CPU time (a) is robust to background load stealing the core
/// mid-measurement, and (b) amortizes the 10 ms `/proc` tick far below
/// 1%; taking the best window additionally rejects the slow-side drift
/// (thermal throttling, noisy neighbors ramping up) that a single mean
/// cannot — interference only ever *adds* time to a deterministic
/// workload. Falls back to the same procedure over wall-clock time when
/// `/proc` is unavailable. One warm-up call precedes the first window.
pub fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    const WINDOWS: usize = 3;
    const MIN_WINDOW_MS: f64 = 150.0;
    const MAX_CALLS: usize = 20_000;
    f();
    let mut best = f64::INFINITY;
    for _ in 0..WINDOWS {
        let wall_start = Instant::now();
        let cpu_start = process_cpu_time_ms();
        let mut calls = 0usize;
        let mean = loop {
            f();
            calls += 1;
            let elapsed = match cpu_start {
                Some(start) => process_cpu_time_ms().expect("cpu clock vanished") - start,
                None => wall_start.elapsed().as_secs_f64() * 1000.0,
            };
            if (calls >= reps && elapsed >= MIN_WINDOW_MS) || calls >= MAX_CALLS {
                break elapsed / calls as f64;
            }
        };
        best = best.min(mean);
    }
    best
}

/// A deterministic sparse binary batch.
pub fn random_batch(rows: usize, cols: usize, rng: &mut impl Rng) -> Array2<f64> {
    random_batch_density(rows, cols, 0.35, rng)
}

/// Binary batch with an explicit on-density. The packed kernel's work
/// scales with the number of set bits, so suites that probe it time
/// both the suite-standard p=0.35 batch and an MNIST-like p=0.15 one.
pub fn random_batch_density(
    rows: usize,
    cols: usize,
    density: f64,
    rng: &mut impl Rng,
) -> Array2<f64> {
    Array2::from_shape_fn((rows, cols), |_| {
        if rng.random_bool(density) {
            1.0
        } else {
            0.0
        }
    })
}

/// GS accelerator CD-1 epoch (batch 64): batched GEMM vs serial reference.
pub fn bench_gibbs_cd1(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("GS accelerator CD-1 epoch (batch 64): batched GEMM vs serial reference");
    let batch = 64;
    let reps = config.pick(4, 5);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let data = random_batch(batch, m, &mut rng);
        let mut results = [0.0f64; 2];
        for (slot, engine, mode) in [
            (0, GsEngine::SerialReference, "serial-baseline"),
            (1, GsEngine::Batched, "batched"),
        ] {
            let gs_config = GsConfig::default().with_k(1).with_engine(engine);
            let mut gs = GibbsSampler::new(rbm.clone(), gs_config, &mut rng);
            let mut epoch_rng = config.rng();
            let wall_ms = time(
                || {
                    gs.train_epoch(&data, batch, &mut epoch_rng);
                },
                reps,
            );
            let throughput = batch as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!("  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/epoch  {throughput:>12.1} samples/s");
            rows.push(BenchRow {
                name: "gibbs-cd1".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "samples/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("gibbs-cd1-{m}x{n}"), speedup));
    }
}

/// Software batched Gibbs chains: parallel streams vs single generator.
pub fn bench_gibbs_chain(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Software batched Gibbs chain (k=1, batch 64): parallel streams vs serial");
    let batch = 64;
    let reps = config.pick(12, 12);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let v0 = random_batch(batch, m, &mut rng);
        let mut results = [0.0f64; 2];

        let mut serial_rng = config.rng();
        let wall_serial = time(
            || {
                let _ = gibbs::chain_batch(&rbm, &v0, 1, &mut serial_rng);
            },
            reps,
        );
        results[0] = batch as f64 / (wall_serial / 1000.0);
        rows.push(BenchRow {
            name: "gibbs-chain".into(),
            visible: m,
            hidden: n,
            mode: "serial-baseline",
            wall_ms: wall_serial,
            throughput: results[0],
            unit: "samples/sec",
        });

        let streams = RngStreams::new(config.seed);
        let wall_par = time(
            || {
                let _ = gibbs::chain_batch_par(&rbm, &v0, 1, streams);
            },
            reps,
        );
        results[1] = batch as f64 / (wall_par / 1000.0);
        rows.push(BenchRow {
            name: "gibbs-chain".into(),
            visible: m,
            hidden: n,
            mode: "parallel-streams",
            wall_ms: wall_par,
            throughput: results[1],
            unit: "samples/sec",
        });

        let speedup = results[1] / results[0];
        println!(
            "  {m}x{n} serial {wall_serial:>9.2} ms  parallel {wall_par:>9.2} ms  speedup {speedup:.2}x"
        );
        speedups.push((format!("gibbs-chain-{m}x{n}"), speedup));
    }
}

/// Bipartite BRIM anneal sweeps: `O(m·n)` kernel vs dense reference.
pub fn bench_brim_anneal(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Bipartite BRIM anneal: O(m*n) two-GEMV kernel vs dense (m+n)^2 reference");
    let sweeps = config.pick(120, 200);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-0.1..0.1));
        let problem =
            BipartiteProblem::new(w, ndarray::Array1::zeros(m), ndarray::Array1::zeros(n))
                .expect("consistent dims");
        let schedule = FlipSchedule::geometric(0.05, 1e-3, sweeps);
        let mut results = [0.0f64; 2];
        let reps = config.pick(5, 7);
        for (slot, dense, mode) in [(0, true, "dense-baseline"), (1, false, "bipartite")] {
            let mut brim =
                BipartiteBrim::new(problem.clone(), BrimConfig::default()).with_dense_kernel(dense);
            let mut anneal_rng = config.rng();
            let wall_ms = time(|| brim.anneal(&schedule, &mut anneal_rng), reps);
            let throughput = sweeps as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!(
                "  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/{sweeps} sweeps  {throughput:>12.1} sweeps/s"
            );
            rows.push(BenchRow {
                name: "brim-anneal".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "sweeps/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("brim-anneal-{m}x{n}"), speedup));
    }
}

/// Bipartite BRIM clamped settles: clamp-aware kernel vs dense reference.
pub fn bench_brim_settle(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Bipartite BRIM clamped settle (the §3.2 sampling op): clamp-aware kernel vs dense");
    let sweeps = config.pick(240, 400);
    let reps = config.pick(7, 7);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-0.1..0.1));
        let problem =
            BipartiteProblem::new(w, ndarray::Array1::zeros(m), ndarray::Array1::zeros(n))
                .expect("consistent dims");
        let levels: Vec<f64> = (0..m).map(|i| f64::from(i % 2 == 0)).collect();
        let mut results = [0.0f64; 2];
        for (slot, dense, mode) in [(0, true, "dense-baseline"), (1, false, "bipartite")] {
            let mut brim =
                BipartiteBrim::new(problem.clone(), BrimConfig::default()).with_dense_kernel(dense);
            brim.clamp_visible(&levels);
            let wall_ms = time(|| brim.settle(sweeps), reps);
            let throughput = sweeps as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!(
                "  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/{sweeps} sweeps  {throughput:>12.1} sweeps/s"
            );
            rows.push(BenchRow {
                name: "brim-settle".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "sweeps/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("brim-settle-{m}x{n}"), speedup));
    }
}

/// The PR 2 substrate dimension: one CD-1 minibatch trained through
/// `CdTrainer::train_epoch_with` over interchangeable backends — software
/// Gibbs at full batch size, BRIM-in-the-loop at a reduced batch (each
/// BRIM conditional sample costs `anneal_steps` integration sweeps, the
/// honest price of physics-in-the-loop).
pub fn bench_substrate_cd1(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Substrate-in-the-loop CD-1 (train_epoch_with): software Gibbs vs BRIM");
    let trainer = CdTrainer::new(1, 0.05);
    let brim_steps = config.pick(30, 120);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let mut results = [0.0f64; 2];

        // Software Gibbs substrate, full batch.
        let soft_batch = 64;
        let soft_data = random_batch(soft_batch, m, &mut rng);
        let mut soft = SoftwareGibbs::new(m, n, &GsConfig::default(), &mut rng);
        let mut soft_rbm = rbm.clone();
        let mut soft_rng = config.rng();
        let wall_soft = time(
            || {
                trainer.train_epoch_with(
                    &mut soft_rbm,
                    &soft_data,
                    soft_batch,
                    &mut soft,
                    &mut soft_rng,
                );
            },
            config.pick(1, 3),
        );
        results[0] = soft_batch as f64 / (wall_soft / 1000.0);
        println!(
            "  {m}x{n} {:<16} {wall_soft:>10.2} ms/epoch  {:>12.1} samples/s",
            "software-gibbs", results[0]
        );
        rows.push(BenchRow {
            name: "substrate-cd1".into(),
            visible: m,
            hidden: n,
            mode: "software-gibbs",
            wall_ms: wall_soft,
            throughput: results[0],
            unit: "samples/sec",
        });

        // BRIM substrate: every conditional sample is a clamp + anneal +
        // read cycle on the machine.
        let brim_batch = config.pick(8, 16);
        let brim_data = random_batch(brim_batch, m, &mut rng);
        let mut brim =
            BrimSubstrate::for_rbm(&rbm, BrimConfig::default()).with_thermal_bath(0.01, brim_steps);
        let mut brim_rbm = rbm.clone();
        let mut brim_rng = config.rng();
        let wall_brim = time(
            || {
                trainer.train_epoch_with(
                    &mut brim_rbm,
                    &brim_data,
                    brim_batch,
                    &mut brim,
                    &mut brim_rng,
                );
            },
            1,
        );
        results[1] = brim_batch as f64 / (wall_brim / 1000.0);
        println!(
            "  {m}x{n} {:<16} {wall_brim:>10.2} ms/epoch  {:>12.1} samples/s",
            "brim", results[1]
        );
        rows.push(BenchRow {
            name: "substrate-cd1".into(),
            visible: m,
            hidden: n,
            mode: "brim",
            wall_ms: wall_brim,
            throughput: results[1],
            unit: "samples/sec",
        });

        // The interesting ratio: what the simulated physics costs relative
        // to arithmetic sampling (on real hardware each phase point is
        // ~12 ps — the perf model in ember-perf prices that in).
        let ratio = results[0] / results[1];
        println!("  {m}x{n} software/brim throughput ratio {ratio:.1}x (simulation cost)");
        speedups.push((format!("substrate-cd1-{m}x{n}-sim-cost"), ratio));
    }
}

/// The PR 4 kernel dimension: the CD-1 sampling chain (one positive
/// half-step plus one full Gibbs step — the §3.2 conditional-sampling
/// unit, batch 64) on the software substrate, bit-packed binary-state
/// kernel vs the dense-GEMM baseline **in the same binary**. Both
/// kernels produce bit-identical samples (pinned by the conformance
/// suite); this suite measures what the packing buys: no multiplies,
/// zero states skipped 64 at a time, and the reverse half-step running
/// over a cached contiguous transpose instead of per-output dot
/// products.
///
/// Since PR 7 the suite also times the **field product alone** (the
/// `…-field` rows: pack + `binary_gemm` vs the dense SIMD `ikj` GEMM on
/// the same batch), and the `packed-kernel-*` speedup entries report
/// that kernel-level ratio. The full-chain rows are kept for trajectory
/// continuity, but their ratio is floored by the latch stage (sigmoid +
/// RNG per output element), which is identical under both kernels by
/// bit-identity design and dominates once the products get fast — the
/// chain ratio measures Amdahl's law, not the kernel.
pub fn bench_packed_kernel(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Bit-packed binary-state kernel (CD-1 sampling chain, batch 64): packed vs dense GEMM");
    const KERNEL_SIZES: [(usize, usize); 2] = [(784, 200), (108, 1024)];
    let batch = 64;
    // High rep floor: one chain is only a few ms, so the 150 ms window
    // alone quantizes the per-call mean in ~3% steps — demanding ≥40
    // calls per window keeps the estimator resolution ~1%.
    let reps = config.pick(40, 48);
    for &(m, n) in &KERNEL_SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let v0 = random_batch(batch, m, &mut rng);
        let mut results = [0.0f64; 2];
        for (slot, kernel, mode) in [
            (0, GsKernel::Dense, "dense-gemm"),
            (1, GsKernel::Packed, "bit-packed"),
        ] {
            let gs_config = GsConfig::default().with_kernel(kernel);
            let mut fab_rng = config.rng();
            let mut sub = SoftwareGibbs::new(m, n, &gs_config, &mut fab_rng);
            sub.program(
                &rbm.weights().view(),
                &rbm.visible_bias().view(),
                &rbm.hidden_bias().view(),
            );
            let mut chain_rng = config.rng();
            let wall_ms = time(
                || {
                    // One CD-1 sampling unit: h⁺ | v, then v⁻ | h⁺ and
                    // h⁻ | v⁻ (all binary operands, the packed kernel's
                    // home turf and exactly what training offloads).
                    let h_pos = sub.sample_hidden_batch(&v0, &mut chain_rng);
                    let v_neg = sub.sample_visible_batch(&h_pos, &mut chain_rng);
                    let _ = sub.sample_hidden_batch(&v_neg, &mut chain_rng);
                },
                reps,
            );
            let throughput = batch as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!("  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/chain  {throughput:>12.1} samples/s");
            rows.push(BenchRow {
                name: "packed-kernel".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "samples/sec",
            });
        }
        let chain_speedup = results[1] / results[0];
        println!("  {m}x{n} packed chain speedup {chain_speedup:.2}x (latch-floored)");

        // The kernel itself, latch excluded: one forward field product
        // over the batch. The packed side pays for packing every call —
        // that cost is part of what a sampler switching kernels pays.
        // The dense GEMM streams the whole weight matrix per batch row
        // regardless of the input bits, so it is L2-bandwidth-bound and
        // density-independent; the packed kernel only touches selected
        // rows, so its advantage scales with sparsity. Both the
        // suite-standard p=0.35 batch and an MNIST-like p=0.15 batch
        // are timed (`…-sparse` rows / the `packed-kernel-sparse-*`
        // speedup).
        let weights = rbm.weights();
        let v_sparse = random_batch_density(batch, m, 0.15, &mut rng);
        for (input, label, key) in [
            (&v0, "", format!("packed-kernel-{m}x{n}")),
            (
                &v_sparse,
                "-sparse",
                format!("packed-kernel-sparse-{m}x{n}"),
            ),
        ] {
            let mut field_results = [0.0f64; 2];
            for slot in [0usize, 1] {
                let mode: &'static str = match (slot, label) {
                    (0, "") => "dense-field",
                    (1, "") => "packed-field",
                    (0, _) => "dense-field-sparse",
                    _ => "packed-field-sparse",
                };
                let wall_ms = time(
                    || {
                        if slot == 0 {
                            let f = input.dot(weights);
                            assert_eq!(f.dim(), (batch, n));
                        } else {
                            let bits = BitMatrix::from_batch(input).expect("binary batch");
                            let f = binary_gemm(&bits, weights, None);
                            assert_eq!(f.dim(), (batch, n));
                        }
                    },
                    reps,
                );
                let throughput = batch as f64 / (wall_ms / 1000.0);
                field_results[slot] = throughput;
                println!(
                    "  {m}x{n} {mode:<20} {wall_ms:>10.2} ms/batch  {throughput:>12.1} fields/s"
                );
                rows.push(BenchRow {
                    name: "packed-kernel".into(),
                    visible: m,
                    hidden: n,
                    mode,
                    wall_ms,
                    throughput,
                    unit: "fields/sec",
                });
            }
            let speedup = field_results[1] / field_results[0];
            println!("  {m}x{n} packed kernel{label} speedup {speedup:.2}x");
            speedups.push((key, speedup));
        }
        speedups.push((format!("packed-chain-{m}x{n}"), chain_speedup));
    }
}

/// The PR 7 kernel-tier dimension: the same sampling work on the
/// runtime-dispatched SIMD tier vs the pinned scalar reference tier
/// (`ember_core::kernels::force_tier`), **in the same binary** — both
/// tiers produce bit-identical samples (pinned by the tier proptests),
/// so this suite measures exactly what the vector units buy. Two
/// workloads per size:
///
/// * `…-batch64`: the batch-64 CD-1 sampling chain on the software
///   substrate (packed kernel; the selected-row adds vectorize).
/// * `…-chain`: a **single serial Gibbs chain** through the row entry
///   points (`sample_hidden_row` / `sample_visible_row`) — the
///   latency-bound workload that batching cannot help and the serial
///   field kernel finally does. Three modes: `reference-chain` is the
///   pre-kernel-tier serial path (dense kernel, scalar tier — the
///   per-output scalar reference evaluation every serial chain ran
///   before this tier existed), `scalar-chain` is the selected-row
///   path pinned to the scalar tier, and `simd-chain` is the dispatched
///   tier. The `simd-chain-*` speedup is simd-vs-reference — the full
///   win the serial kernel delivers; the simd-vs-scalar tier ratio is
///   printed alongside (it is Amdahl-floored by the tier-independent
///   latch stage, sigmoid + RNG per output).
///
/// On a scalar-only host both tiers dispatch the same loops, the batch
/// speedup degenerates to ~1.0× and `simd-chain-*` to the (still real)
/// algorithmic selected-row-vs-reference win — the gate direction is
/// "the new paths must not be slower", which still holds.
pub fn bench_simd_kernel(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    use ember_core::kernels::{active_tier, force_tier, SimdTier};

    header("SIMD kernel tier (batch-64 CD-1 + single serial chain): dispatched vs forced scalar");
    println!("  detected tier: {}", active_tier().name());
    const KERNEL_SIZES: [(usize, usize); 2] = [(784, 200), (108, 1024)];
    let batch = 64;
    let batch_reps = config.pick(40, 48);
    // The serial chain is sub-millisecond: lean on the 150 ms window
    // floor with a high call floor for ~1% estimator resolution.
    let chain_reps = config.pick(200, 300);
    for &(m, n) in &KERNEL_SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let v0 = random_batch(batch, m, &mut rng);
        let v_row = v0.row(0).to_owned();
        let mut fab_rng = config.rng();
        let mut sub = SoftwareGibbs::new(m, n, &GsConfig::default(), &mut fab_rng);
        sub.program(
            &rbm.weights().view(),
            &rbm.visible_bias().view(),
            &rbm.hidden_bias().view(),
        );

        // Batch-64 CD-1 sampling chain, forced-scalar vs dispatched.
        let mut batch_results = [0.0f64; 2];
        for (slot, tier, mode) in [
            (0, Some(SimdTier::Scalar), "scalar-batch64"),
            (1, None, "simd-batch64"),
        ] {
            force_tier(tier);
            let mut chain_rng = config.rng();
            let wall_ms = time(
                || {
                    let h_pos = sub.sample_hidden_batch(&v0, &mut chain_rng);
                    let v_neg = sub.sample_visible_batch(&h_pos, &mut chain_rng);
                    let _ = sub.sample_hidden_batch(&v_neg, &mut chain_rng);
                },
                batch_reps,
            );
            let throughput = batch as f64 / (wall_ms / 1000.0);
            batch_results[slot] = throughput;
            println!("  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/chain  {throughput:>12.1} samples/s");
            rows.push(BenchRow {
                name: "simd-kernel".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "samples/sec",
            });
        }
        let batch_speedup = batch_results[1] / batch_results[0];
        println!("  {m}x{n} batch-64 SIMD speedup {batch_speedup:.2}x");
        speedups.push((format!("simd-kernel-{m}x{n}"), batch_speedup));

        // Single serial Gibbs step through the row entry points. The
        // reference mode runs the dense-kernel substrate with the tier
        // pinned scalar: that is the exact serial path every chain took
        // before the kernel tier landed.
        let mut fab_rng2 = config.rng();
        let mut sub_ref = SoftwareGibbs::new(
            m,
            n,
            &GsConfig::default().with_kernel(GsKernel::Dense),
            &mut fab_rng2,
        );
        sub_ref.program(
            &rbm.weights().view(),
            &rbm.visible_bias().view(),
            &rbm.hidden_bias().view(),
        );
        let mut chain_results = [0.0f64; 3];
        for (slot, tier, mode) in [
            (0, Some(SimdTier::Scalar), "reference-chain"),
            (1, Some(SimdTier::Scalar), "scalar-chain"),
            (2, None, "simd-chain"),
        ] {
            force_tier(tier);
            let target = if slot == 0 { &mut sub_ref } else { &mut sub };
            let mut chain_rng = config.rng();
            let wall_ms = time(
                || {
                    let h = target.sample_hidden_row(&v_row.view(), &mut chain_rng);
                    let _ = target.sample_visible_row(&h.view(), &mut chain_rng);
                },
                chain_reps,
            );
            let throughput = 1.0 / (wall_ms / 1000.0);
            chain_results[slot] = throughput;
            println!("  {m}x{n} {mode:<16} {wall_ms:>10.3} ms/step   {throughput:>12.1} steps/s");
            rows.push(BenchRow {
                name: "simd-kernel".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "gibbs-steps/sec",
            });
        }
        force_tier(None);
        let chain_speedup = chain_results[2] / chain_results[0];
        let tier_ratio = chain_results[2] / chain_results[1];
        println!(
            "  {m}x{n} serial-chain speedup {chain_speedup:.2}x vs reference \
             ({tier_ratio:.2}x tier-only, latch-floored)"
        );
        speedups.push((format!("simd-chain-{m}x{n}"), chain_speedup));
    }
}

/// The PR 3 serving dimension: a wave of 64 concurrent single-row
/// sample requests (batch-64 class load) pushed through the
/// `SamplingService` at 1/2/4 worker shards, with request coalescing on
/// vs off (request-at-a-time). Coalescing amortizes substrate
/// programming and turns 64 row kernels into whole-batch GEMM calls —
/// the serving-side replay of the paper's per-minibatch economics.
///
/// Like every suite here, throughput is per CPU-second: multi-shard rows
/// measure total work efficiency, not wall-clock latency.
pub fn bench_serve_throughput(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Sampling service (64 concurrent single-row requests): coalesced vs request-at-a-time");
    const SERVE_SIZES: [(usize, usize); 2] = [(784, 200), (108, 1024)];
    fn mode_name(shards: usize, coalesced: bool) -> &'static str {
        match (shards, coalesced) {
            (1, false) => "request-at-a-time-1shard",
            (2, false) => "request-at-a-time-2shard",
            (4, false) => "request-at-a-time-4shard",
            (1, true) => "coalesced-1shard",
            (2, true) => "coalesced-2shard",
            (4, true) => "coalesced-4shard",
            _ => unreachable!("benched shard counts are 1/2/4"),
        }
    }
    let wave = 64;
    let reps = config.pick(2, 3);
    for &(m, n) in &SERVE_SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
        let clamp = Array1::from_shape_fn(m, |_| f64::from(rng.random_bool(0.35)));
        for shards in [1usize, 2, 4] {
            let mut results = [0.0f64; 2];
            for (slot, coalesced) in [(0, false), (1, true)] {
                let service = SamplingService::builder()
                    .shards(shards)
                    .coalescing(coalesced)
                    .max_coalesce_rows(wave)
                    .queue_rows(8 * wave)
                    .build();
                service
                    .register_model("m", rbm.clone(), proto.clone_boxed())
                    .expect("register bench model");
                let mut wave_index = 0u64;
                let wall_ms = time(
                    || {
                        let handles: Vec<_> = (0..wave as u64)
                            .map(|i| {
                                service
                                    .submit(
                                        SampleRequest::new("m")
                                            .with_gibbs_steps(1)
                                            .with_clamp(clamp.clone())
                                            .with_seed(wave_index * 1000 + i),
                                    )
                                    .expect("bench queue sized for a full wave")
                            })
                            .collect();
                        wave_index += 1;
                        for handle in handles {
                            handle.wait().expect("bench request served");
                        }
                    },
                    reps,
                );
                let throughput = wave as f64 / (wall_ms / 1000.0);
                results[slot] = throughput;
                let mode = mode_name(shards, coalesced);
                println!(
                    "  {m}x{n} {mode:<26} {wall_ms:>10.2} ms/wave  {throughput:>12.1} requests/s"
                );
                rows.push(BenchRow {
                    name: "serve-throughput".into(),
                    visible: m,
                    hidden: n,
                    mode,
                    wall_ms,
                    throughput,
                    unit: "requests/sec",
                });
            }
            let speedup = results[1] / results[0];
            println!("  {m}x{n} {shards}-shard coalescing speedup {speedup:.2}x");
            speedups.push((format!("serve-coalesce-{m}x{n}-{shards}shard"), speedup));
        }
    }
}

/// The PR 6 robustness dimension: the 64-request coalesced serving wave
/// (2 shards, 784×200, software backend) pushed through a
/// `ChaosSubstrate` wrapper at a **0% vs 1% injected fault rate**. The
/// 0% row prices the fallible seam itself (per-read sanity screens,
/// readback verification, the chaos wrapper's bookkeeping); the 1% row
/// adds the reprogram-and-retry recovery work. The `faulty-serve-…`
/// speedup entry is the 0%-rate / 1%-rate throughput ratio — the fault
/// storm's overhead factor (close to 1.0 is good).
///
/// Backoff sleeps between retries do not charge CPU time, so the rows
/// measure the *recovery compute*, consistent with the suite's
/// work-per-CPU-second semantics.
pub fn bench_faulty_serve(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    use ember_core::substrate::{ChaosConfig, ChaosSubstrate};
    use ember_core::RetryPolicy;
    use std::time::Duration;

    header("Fault-injected serving (64 concurrent requests, 2 shards): 0% vs 1% fault rate");
    let (m, n) = (784usize, 200usize);
    let wave = 64;
    let reps = config.pick(2, 3);
    let mut rng = config.rng();
    let rbm = Rbm::random(m, n, 0.01, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
    let clamp = Array1::from_shape_fn(m, |_| f64::from(rng.random_bool(0.35)));
    let mut results = [0.0f64; 2];
    for (slot, rate, mode) in [(0usize, 0.0, "fault-0pct"), (1, 0.01, "fault-1pct")] {
        let chaotic = Box::new(ChaosSubstrate::new(
            proto.clone_boxed(),
            ChaosConfig::new(config.seed ^ 0xC4A0).with_fault_rate(rate),
        ));
        let service = SamplingService::builder()
            .shards(2)
            .max_coalesce_rows(wave)
            .queue_rows(8 * wave)
            .retry_policy(RetryPolicy::default().with_max_retries(8).with_backoff(
                Duration::from_micros(50),
                2.0,
                Duration::from_millis(1),
            ))
            .build();
        service
            .register_model("m", rbm.clone(), chaotic)
            .expect("register bench model");
        let mut wave_index = 0u64;
        let wall_ms = time(
            || {
                let handles: Vec<_> = (0..wave as u64)
                    .map(|i| {
                        service
                            .submit(
                                SampleRequest::new("m")
                                    .with_gibbs_steps(1)
                                    .with_clamp(clamp.clone())
                                    .with_seed(wave_index * 1000 + i),
                            )
                            .expect("bench queue sized for a full wave")
                    })
                    .collect();
                wave_index += 1;
                for handle in handles {
                    handle.wait().expect("bench request served despite faults");
                }
            },
            reps,
        );
        let throughput = wave as f64 / (wall_ms / 1000.0);
        results[slot] = throughput;
        println!("  {m}x{n} {mode:<26} {wall_ms:>10.2} ms/wave  {throughput:>12.1} requests/s");
        rows.push(BenchRow {
            name: "faulty-serve".into(),
            visible: m,
            hidden: n,
            mode,
            wall_ms,
            throughput,
            unit: "requests/sec",
        });
    }
    let overhead = results[0] / results[1];
    println!("  {m}x{n} 1%-fault overhead {overhead:.2}x (0%-rate ÷ 1%-rate throughput)");
    speedups.push((format!("faulty-serve-overhead-{m}x{n}"), overhead));
}

/// The PR 8 network-edge dimension: the 64-request coalesced serving
/// wave (2 shards, 784×200, software backend) pushed through the
/// loopback HTTP edge, once over the bit-packed binary wire
/// (`application/x-ember-bits`) and once over the JSON fallback. Rows
/// price the full loopback round trip — request parse, service call,
/// response encode, TCP — so the binary/JSON throughput ratio isolates
/// what the wire format buys at the edge, and the `http-wire-bytes-…`
/// entry records the measured body-size ratio (JSON bytes ÷ binary
/// bytes for the same single-row response; the issue's ≥ 50× bar).
pub fn bench_http_edge(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    use ember_http::{Client, SampleOptions, Server};

    header("HTTP edge (64 concurrent loopback requests, 2 shards): binary wire vs JSON");
    let (m, n) = (784usize, 200usize);
    let wave = 64;
    let reps = config.pick(2, 3);
    let mut rng = config.rng();
    let rbm = Rbm::random(m, n, 0.01, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);
    let clamp: Vec<f64> = (0..m).map(|_| f64::from(rng.random_bool(0.35))).collect();

    let service = SamplingService::builder()
        .shards(2)
        .max_coalesce_rows(wave)
        .queue_rows(8 * wave)
        .build();
    service
        .register_model("m", rbm, proto)
        .expect("register bench model");
    let server =
        Server::start_with_workers("127.0.0.1:0", service, wave).expect("bind loopback edge");
    let client = Client::new(server.addr());

    // The body-size ratio, measured once on actually-served bytes.
    let probe = SampleOptions::new()
        .gibbs_steps(1)
        .clamp(clamp.clone())
        .seed(0);
    let binary_bytes = client
        .sample_binary("m", &probe)
        .expect("probe request served")
        .body_bytes;
    let json_bytes = client
        .sample_json("m", &probe)
        .expect("probe request served")
        .body_bytes;
    let bytes_ratio = json_bytes as f64 / binary_bytes as f64;

    let mut results = [0.0f64; 2];
    for (slot, binary, mode) in [
        (0usize, true, "binary-wire-2shard"),
        (1, false, "json-wire-2shard"),
    ] {
        let mut wave_index = 0u64;
        let wall_ms = time(
            || {
                let handles: Vec<_> = (0..wave as u64)
                    .map(|i| {
                        let client = client.clone();
                        let options = SampleOptions::new()
                            .gibbs_steps(1)
                            .clamp(clamp.clone())
                            .seed(wave_index * 1000 + i);
                        std::thread::spawn(move || {
                            if binary {
                                client
                                    .sample_binary("m", &options)
                                    .expect("bench request served")
                                    .body_bytes
                            } else {
                                client
                                    .sample_json("m", &options)
                                    .expect("bench request served")
                                    .body_bytes
                            }
                        })
                    })
                    .collect();
                wave_index += 1;
                for handle in handles {
                    handle.join().expect("bench client thread");
                }
            },
            reps,
        );
        let throughput = wave as f64 / (wall_ms / 1000.0);
        results[slot] = throughput;
        println!("  {m}x{n} {mode:<26} {wall_ms:>10.2} ms/wave  {throughput:>12.1} requests/s");
        rows.push(BenchRow {
            name: "http-edge".into(),
            visible: m,
            hidden: n,
            mode,
            wall_ms,
            throughput,
            unit: "requests/sec",
        });
    }
    server.shutdown(Duration::from_secs(30));
    let edge_speedup = results[0] / results[1];
    println!("  {m}x{n} binary-wire edge speedup {edge_speedup:.2}x (binary ÷ JSON throughput)");
    println!(
        "  {m}x{n} wire size {json_bytes} B (json) / {binary_bytes} B (binary) = {bytes_ratio:.1}x"
    );
    speedups.push((format!("http-edge-binary-vs-json-{m}x{n}"), edge_speedup));
    speedups.push((format!("http-wire-bytes-{m}"), bytes_ratio));
}

/// The PR 9 durable-lifecycle dimension: a 4-model registry at the
/// paper's 784×200 layer size, each model carrying a 4-version chain
/// where successive versions perturb ~10% of the weights (the shape a
/// training loop's publishes actually have). Rows price the two halves
/// of the crash drill end to end against a real on-disk store
/// ([`DiskDir`](ember_store::DiskDir) under a scratch directory):
/// `snapshot` is [`SnapshotStore::save`](ember_store::SnapshotStore)
/// (delta-encode + checksum + atomic temp-file/fsync/rename, plus the
/// prune that keeps the directory bounded), `restore` is
/// [`restore_latest`](ember_store::SnapshotStore) (read + verify +
/// decode + rebuild every chain in a fresh registry). The
/// `store-delta-bytes-…` entry is deterministic: encoded bytes with
/// delta chains disabled ÷ the shipped format, i.e. what the XOR
/// delta frames buy on a sparse-update chain.
pub fn bench_store_lifecycle(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    use ember_serve::ModelRegistry;
    use ember_store::format::{encode_registry, encode_registry_uncompressed};
    use ember_store::{DiskDir, ModelChainImage, RegistryImage, SnapshotStore};

    header("Durable store (4 models, 4-version chains, 784x200): snapshot vs restore");
    let (m, n) = (784usize, 200usize);
    let (models, versions) = (4usize, 4usize);
    let reps = config.pick(2, 3);
    let mut rng = config.rng();

    // Version chains with training-shaped churn: each publish nudges
    // ~10% of the weights, so consecutive versions XOR to sparse,
    // low-magnitude deltas — the case the chain encoding is built for.
    let registry = ModelRegistry::new();
    for i in 0..models {
        let name = format!("model-{i}");
        let mut rbm = Rbm::random(m, n, 0.1, &mut rng);
        registry
            .register(&name, rbm.clone())
            .expect("register bench model");
        for _ in 1..versions {
            for w in rbm.weights_mut().iter_mut() {
                if rng.random_bool(0.10) {
                    *w += (rng.random::<f64>() - 0.5) * 1e-3;
                }
            }
            registry
                .publish(&name, rbm.clone())
                .expect("publish bench version");
        }
    }

    // The deterministic format win, measured on the exact image a save
    // would seal (no clock, no disk).
    let image = RegistryImage {
        sequence: 1,
        models: registry
            .export_chains()
            .into_iter()
            .map(|(name, chain)| ModelChainImage { name, chain })
            .collect(),
    };
    let delta_bytes = encode_registry(&image).expect("encode bench image").len();
    let full_bytes = encode_registry_uncompressed(&image)
        .expect("encode bench image")
        .len();
    let bytes_ratio = full_bytes as f64 / delta_bytes as f64;

    let scratch = std::env::temp_dir().join(format!("ember-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let store =
        SnapshotStore::new(DiskDir::open(&scratch).expect("open scratch store")).expect("store");

    let save_ms = time(
        || {
            store.save(&registry).expect("bench snapshot");
            store.prune(2).expect("bench prune");
        },
        reps,
    );
    let save_throughput = 1000.0 / save_ms;
    println!(
        "  {m}x{n} {:<26} {save_ms:>10.2} ms/save  {save_throughput:>12.1} snapshots/s",
        "snapshot"
    );
    rows.push(BenchRow {
        name: "store-lifecycle".into(),
        visible: m,
        hidden: n,
        mode: "snapshot",
        wall_ms: save_ms,
        throughput: save_throughput,
        unit: "snapshots/sec",
    });

    let restore_ms = time(
        || {
            let (restored, report) = store.restore_latest().expect("bench restore");
            assert!(report.skipped.is_empty(), "clean store restores cleanly");
            assert_eq!(restored.names().len(), models);
        },
        reps,
    );
    let restore_throughput = 1000.0 / restore_ms;
    println!(
        "  {m}x{n} {:<26} {restore_ms:>10.2} ms/restore  {restore_throughput:>10.1} restores/s",
        "restore"
    );
    rows.push(BenchRow {
        name: "store-lifecycle".into(),
        visible: m,
        hidden: n,
        mode: "restore",
        wall_ms: restore_ms,
        throughput: restore_throughput,
        unit: "restores/sec",
    });
    let _ = std::fs::remove_dir_all(&scratch);

    println!(
        "  {m}x{n} chain size {full_bytes} B (full frames) / {delta_bytes} B (delta) = {bytes_ratio:.1}x"
    );
    speedups.push((format!("store-delta-bytes-{m}x{n}"), bytes_ratio));
}

/// Seeded open-loop arrival schedule: `count` cumulative offsets with
/// exponential inter-arrival gaps of the given mean — a deterministic
/// Poisson process. Open-loop means the schedule never waits on the
/// service: arrivals keep coming at the offered rate whether or not the
/// server keeps up, which is what exposes queueing delay (a closed loop
/// self-throttles and hides it).
pub fn exponential_arrivals(seed: u64, mean: Duration, count: usize) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = 0.0f64;
    (0..count)
        .map(|_| {
            let u: f64 = rng.random();
            at += -(1.0 - u).ln() * mean.as_secs_f64();
            Duration::from_secs_f64(at)
        })
        .collect()
}

fn sleep_until(target: Instant) {
    let now = Instant::now();
    if target > now {
        std::thread::sleep(target - now);
    }
}

/// The PR 10 latency dimension: a seeded open-loop arrival process at
/// ~60% of the measured closed-loop capacity against a 2-shard service
/// with a 2 ms coalescing window, quantiles read from the service's own
/// [`LatencyHistogram`] (queue-to-answer, as `GET /v1/stats` serves
/// them).
///
/// **These rows are wall-clock, not CPU time** — latency under an
/// arrival process *is* a wall phenomenon (queueing and the coalescing
/// window spend no CPU), so the suite's CPU-time convention would
/// measure nothing. `wall_ms` is the quantile itself; the gated
/// throughput is its inverse (`1000 / quantile_ms`, higher = faster).
///
/// The `latency-window-bound-784x200` speedup entry is the
/// deterministic half: one lone request's latency under a 250 ms window
/// ÷ under a 2 ms window. A bounded window must dispatch a batch-mate-
/// less request when its window expires, so the ratio sits near 125×;
/// anything ≥ 5× proves the window (not the service time) sets the
/// lone-request floor.
pub fn bench_latency_openloop(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Open-loop latency (seeded Poisson arrivals at ~0.6x capacity, 2 shards, 2 ms window)");
    let (m, n) = (784usize, 200usize);
    let shards = 2usize;
    let window = Duration::from_millis(2);

    let mut rng = config.rng();
    let rbm = Rbm::random(m, n, 0.01, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);

    // Closed-loop calibration on a window-less single shard: the
    // per-request wall service time that sets the offered rate below.
    let calibration = SamplingService::builder().shards(1).build();
    calibration
        .register_model("m", rbm.clone(), proto.clone_boxed())
        .expect("register bench model");
    let calib_reqs = 30u64;
    let started = Instant::now();
    for i in 0..calib_reqs {
        calibration
            .sample(SampleRequest::new("m").with_gibbs_steps(5).with_seed(i))
            .expect("calibration request served");
    }
    let service_time = started.elapsed() / u32::try_from(calib_reqs).expect("fits");
    drop(calibration);

    // Offered rate = 0.6 × (shards / service_time); mean gap floored at
    // 200 µs so the sleeper stays meaningful on a fast box.
    let mean_gap = (service_time / u32::try_from(shards).expect("fits"))
        .mul_f64(1.0 / 0.6)
        .max(Duration::from_micros(200));
    let count = config.pick(300, 800);
    let arrivals = exponential_arrivals(config.seed ^ 0x09E4_1007, mean_gap, count);

    let service = SamplingService::builder()
        .shards(shards)
        .coalesce_window(window)
        .max_coalesce_rows(32)
        .queue_rows(8 * count)
        .build();
    service
        .register_model("m", rbm.clone(), proto.clone_boxed())
        .expect("register bench model");
    let start = Instant::now();
    let handles: Vec<_> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &offset)| {
            sleep_until(start + offset);
            service
                .submit(
                    SampleRequest::new("m")
                        .with_gibbs_steps(5)
                        .with_seed(i as u64),
                )
                .expect("open-loop queue sized for the full schedule")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("open-loop request served");
    }
    let latency = service.stats().latency();
    assert_eq!(latency.count(), count as u64, "every arrival recorded");

    for (mode, quantile) in [
        ("p50", latency.p50()),
        ("p99", latency.p99()),
        ("p999", latency.p999()),
    ] {
        let wall_ms = quantile.as_secs_f64() * 1000.0;
        let throughput = 1000.0 / wall_ms.max(1e-6);
        println!("  {m}x{n} open-loop {mode:<24} {wall_ms:>10.2} ms");
        rows.push(BenchRow {
            name: "latency-openloop".into(),
            visible: m,
            hidden: n,
            mode,
            wall_ms,
            throughput,
            unit: "1/sec (inverse latency)",
        });
    }

    // Deterministic window-bound check: the lone-request floor is the
    // window, so shrinking the window shrinks the floor proportionally.
    let mut lone = [Duration::ZERO; 2];
    for (slot, window) in [(0usize, Duration::from_millis(250)), (1, window)] {
        let service = SamplingService::builder()
            .shards(1)
            .coalesce_window(window)
            .build();
        service
            .register_model("m", rbm.clone(), proto.clone_boxed())
            .expect("register bench model");
        let started = Instant::now();
        service
            .sample(SampleRequest::new("m").with_gibbs_steps(5).with_seed(0))
            .expect("lone request served");
        lone[slot] = started.elapsed();
    }
    let bound_speedup = lone[0].as_secs_f64() / lone[1].as_secs_f64().max(1e-9);
    println!(
        "  {m}x{n} lone request {:.2} ms (250 ms window) / {:.2} ms (2 ms window) = {bound_speedup:.1}x",
        lone[0].as_secs_f64() * 1000.0,
        lone[1].as_secs_f64() * 1000.0
    );
    speedups.push((format!("latency-window-bound-{m}x{n}"), bound_speedup));
}

/// The PR 10 overload dimension: a seeded open-loop flood at **2× the
/// measured capacity** of a single shard behind a small queue, one
/// Interactive request (with a generous deadline) in every four
/// arrivals, the rest Bulk. The service must keep serving at capacity
/// (the `accepted` row, wall-clock requests/sec) while the shedder
/// drops Bulk work — and *only* Bulk work.
///
/// The `overload-shed-bulk-first` entry is the shed-ordering invariant
/// as a number: Bulk sheds ÷ total sheds, exactly 1.0 when no
/// Interactive request was turned away (gated ≥ 1 in CI, i.e. exact).
pub fn bench_overload(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header(
        "Overload flood (seeded open-loop arrivals at 2x capacity, 1 shard, Bulk-first shedding)",
    );
    let (m, n) = (784usize, 200usize);
    let window = Duration::from_millis(5);

    let mut rng = config.rng();
    let rbm = Rbm::random(m, n, 0.01, &mut rng);
    let proto = SubstrateSpec::software(GsConfig::default()).fabricate_for(&rbm, &mut rng);

    // Calibrate the *coalesced* capacity — what the flooded service can
    // actually sustain (a closed-loop single-request probe would miss
    // the batching amortization by an order of magnitude and the
    // "flood" would never overload anything).
    let calibration = SamplingService::builder()
        .shards(1)
        .max_coalesce_rows(32)
        .queue_rows(1024)
        .build();
    calibration
        .register_model("m", rbm.clone(), proto.clone_boxed())
        .expect("register bench model");
    let calib_reqs = 256u64;
    let started = Instant::now();
    let probes: Vec<_> = (0..calib_reqs)
        .map(|i| {
            calibration
                .submit(SampleRequest::new("m").with_gibbs_steps(5).with_seed(i))
                .expect("calibration queue sized for the probe")
        })
        .collect();
    for probe in probes {
        probe.wait().expect("calibration request served");
    }
    let service_time = started.elapsed() / u32::try_from(calib_reqs).expect("fits");
    drop(calibration);

    // 2× the sustainable rate, small queue: shedding is guaranteed. No
    // floor on the gap — when the scheduler can't sleep this finely the
    // submit loop just runs behind schedule and `sleep_until` no-ops,
    // which is exactly open-loop behavior.
    let mean_gap = service_time / 2;
    let count = config.pick(400, 1200);
    let arrivals = exponential_arrivals(config.seed ^ 0x000F_100D, mean_gap, count);

    let service = SamplingService::builder()
        .shards(1)
        .coalesce_window(window)
        .max_coalesce_rows(32)
        .queue_rows(48)
        .build();
    service
        .register_model("m", rbm, proto)
        .expect("register bench model");

    let start = Instant::now();
    let mut handles = Vec::with_capacity(count);
    let mut rejected_at_enqueue = [0u64; 2]; // [interactive, bulk]
    for (i, &offset) in arrivals.iter().enumerate() {
        sleep_until(start + offset);
        let interactive = i % 4 == 0;
        let mut request = SampleRequest::new("m")
            .with_gibbs_steps(5)
            .with_seed(i as u64);
        if interactive {
            request = request.with_deadline_in(Duration::from_secs(30));
        } else {
            request = request.with_priority(Priority::Bulk);
        }
        match service.submit(request) {
            Ok(handle) => handles.push((interactive, handle)),
            Err(_) => rejected_at_enqueue[usize::from(!interactive)] += 1,
        }
    }
    let mut accepted = 0u64;
    let mut shed = [0u64; 2]; // [interactive, bulk]
    for (interactive, handle) in handles {
        match handle.wait() {
            Ok(_) => accepted += 1,
            Err(_) => shed[usize::from(!interactive)] += 1,
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    let shed_interactive = shed[0] + rejected_at_enqueue[0];
    let shed_bulk = shed[1] + rejected_at_enqueue[1];
    assert!(
        shed_bulk > 0,
        "a 2x flood against a 48-row queue must shed Bulk work"
    );

    let throughput = accepted as f64 / wall_s;
    let wall_ms = wall_s * 1000.0 / accepted.max(1) as f64;
    println!(
        "  {m}x{n} accepted {accepted}/{count} at {throughput:.1} requests/s; shed {shed_bulk} bulk, {shed_interactive} interactive"
    );
    rows.push(BenchRow {
        name: "overload-flood".into(),
        visible: m,
        hidden: n,
        mode: "accepted-2x-flood",
        wall_ms,
        throughput,
        unit: "requests/sec",
    });
    let ordering = shed_bulk as f64 / (shed_bulk + shed_interactive).max(1) as f64;
    println!("  {m}x{n} shed ordering (bulk / total sheds) {ordering:.3}");
    speedups.push((format!("overload-shed-bulk-first-{m}x{n}"), ordering));
}

/// Serializes a trajectory to the `BENCH_PR<N>.json` schema and writes it.
pub fn write_trajectory(
    pr: u32,
    config: &RunConfig,
    rows: &[BenchRow],
    speedups: &[(String, f64)],
) -> String {
    let rows_json: Vec<String> = rows.iter().map(BenchRow::json).collect();
    let speedups_json: Vec<String> = speedups
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v:.3}"))
        .collect();
    let json = format!(
        "{{\n  \"pr\": {},\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"benches\": [\n    {}\n  ],\n  \"speedups\": {{{}}}\n}}\n",
        pr,
        config.seed,
        if config.full { "full" } else { "quick" },
        rayon::current_num_threads(),
        rows_json.join(",\n    "),
        speedups_json.join(",")
    );
    let path = format!("BENCH_PR{pr}.json");
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("\nwrote {path}");
    json
}
