//! PR 10 performance-trajectory benchmark: everything `bench_pr9`
//! measures (same suites, same `(name, visible, hidden, mode)` row
//! identities, so the `bench_gate` binary can diff the two trajectory
//! files) **plus the overload-robustness dimensions**: open-loop
//! latency quantiles from a seeded Poisson arrival process at ~0.6×
//! capacity (read from the service's own latency histograms, the ones
//! `GET /v1/stats` serves), and a 2× overload flood whose accepted
//! throughput and Bulk-first shed ordering are both measured. Two
//! deterministic invariants ride the `speedups` map:
//! `latency-window-bound-784x200` (a lone request's latency is set by
//! the coalescing window, so a 250 ms window ÷ a 2 ms window lands
//! ≫ 5×) and `overload-shed-bulk-first-784x200` (Bulk sheds ÷ total
//! sheds, exactly 1.0 when no Interactive request was turned away).
//!
//! Emits `BENCH_PR10.json`. Gate it against the previous point with:
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_pr10 -- --quick
//! cargo run --release -p ember_bench --bin bench_gate -- BENCH_PR9.json BENCH_PR10.json --tolerance 0.25
//! ```
//!
//! The committed `BENCH_PR10.json` follows the estimator convention of
//! the PR 2–9 points on the drifting shared reference box: per-row
//! medians over 9 process runs of this binary (`--quick`), with each
//! `speedups` entry the median of the per-run ratios.

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_faulty_serve, bench_gibbs_cd1, bench_gibbs_chain,
    bench_http_edge, bench_latency_openloop, bench_overload, bench_packed_kernel,
    bench_serve_throughput, bench_simd_kernel, bench_store_lifecycle, bench_substrate_cd1,
    write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);
    bench_substrate_cd1(&config, &mut rows, &mut speedups);
    bench_serve_throughput(&config, &mut rows, &mut speedups);
    bench_packed_kernel(&config, &mut rows, &mut speedups);
    bench_simd_kernel(&config, &mut rows, &mut speedups);
    bench_faulty_serve(&config, &mut rows, &mut speedups);
    bench_http_edge(&config, &mut rows, &mut speedups);
    bench_store_lifecycle(&config, &mut rows, &mut speedups);
    bench_latency_openloop(&config, &mut rows, &mut speedups);
    bench_overload(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<34} {s:.2}x");
    }

    let json = write_trajectory(10, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
