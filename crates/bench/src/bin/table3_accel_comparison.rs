//! Regenerates **Table 3**: effective compute density (TOPS/mm²) and
//! efficiency (TOPS/W) of TPU v1/v4, TIMELY and the 1600×1600 BGF.
//!
//! TPU/TIMELY rows are the published numbers the paper quotes; the BGF
//! row is derived from the component area/power model plus the effective
//! mesh MAC rate.

use ember_bench::{compare_row, header, RunConfig};
use ember_perf::table3_rows;

fn main() {
    let config = RunConfig::from_args();
    header("Table 3: accelerator comparison");

    println!("{:<18} {:>12} {:>10}", "Accelerator", "TOPS/mm2", "TOPS/W");
    let rows = table3_rows();
    for row in &rows {
        println!(
            "{:<18} {:>12.2} {:>10.1}",
            row.name, row.tops_per_mm2, row.tops_per_w
        );
    }

    header("Paper vs measured (BGF row)");
    let bgf = rows.last().expect("bgf row");
    compare_row("BGF TOPS/mm2", "119", &format!("{:.0}", bgf.tops_per_mm2));
    compare_row("BGF TOPS/W", "3657", &format!("{:.0}", bgf.tops_per_w));

    if config.json {
        println!("{}", serde_json::to_string(&rows).expect("serializable"));
    }
}
