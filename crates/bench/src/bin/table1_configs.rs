//! Regenerates **Table 1**: dataset parameters of the networks used in
//! the evaluation, cross-checked against the synthetic dataset geometry.

use ember_bench::{header, RunConfig};
use ember_perf::paper_benchmarks;

fn main() {
    let _config = RunConfig::from_args();
    header("Table 1: dataset parameters of the evaluated networks");

    println!("{:<22} {:<14} {:<24}", "Dataset", "RBM", "DBN-DNN");
    let rows = [
        ("MNIST", "784-200", "784-500-500-10"),
        ("KMNIST", "784-500", "784-500-1000-10"),
        ("FMNIST", "784-784", "784-784-1000-10"),
        ("EMNIST", "784-1024", "784-784-784-26"),
        ("CIFAR10", "108-1024", "-"),
        ("SmallNorb", "36-1024", "-"),
        ("Recommendation", "943-100", "-"),
        ("Anomaly detection", "28-10", "-"),
    ];
    for (name, rbm, dbn) in rows {
        println!("{name:<22} {rbm:<14} {dbn:<24}");
    }

    header("Cross-check: synthetic dataset geometry");
    let digit = ember_datasets::digits::generate(2, 0);
    println!("mnist-like pixels    : {} (= 784)", digit.pixel_len());
    let cifar = ember_datasets::cifar::generate(2, 0);
    println!(
        "cifar-like patch dims: {} (6x6x{} = 108)",
        6 * 6 * cifar.channels(),
        cifar.channels()
    );
    let norb = ember_datasets::norb::generate(2, 0);
    println!(
        "norb-like patch dims : {} (6x6 = 36)",
        6 * 6 * norb.channels()
    );
    println!(
        "movielens-like users : {} (= 943 visible units)",
        ember_datasets::movielens::USERS
    );
    println!(
        "fraud-like features  : {} (= 28 visible units)",
        ember_datasets::fraud::FEATURES
    );

    header("Cross-check: perf-model benchmark set (Figs. 5-6)");
    for b in paper_benchmarks() {
        let shape: Vec<String> = b.layers.iter().map(|(m, n)| format!("{m}x{n}")).collect();
        println!("{:<16} layers: {}", b.name, shape.join(" + "));
    }
}
