//! Regenerates **Figure 11** (Appendix A): cumulative distribution of the
//! KL divergence between trained models and enumerated ground truth, for
//! exact ML, CD-1, CD-k (k large) and BGF, on 12-visible × 4-hidden RBMs
//! (the Carreira-Perpiñán & Hinton methodology).
//!
//! Expected shape (paper): all four algorithms have similar bias
//! characteristics; BGF's CDF sits at or left of CD-1's (no *worse* bias),
//! near the ML/CD-1000 curves.

use ember_bench::{bgf_quality_config, header, RunConfig};
use ember_core::BoltzmannGradientFollower;
use ember_metrics::{empirical_cdf, kl_to_ground_truth};
use ember_rbm::{exact, CdTrainer, MlTrainer, Rbm};
use ndarray::{Array1, Array2};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VISIBLE: usize = 12;
const HIDDEN: usize = 4;

/// Draws one random training distribution: `images` samples over a few
/// random prototype patterns with flip noise (a multi-modal ground truth
/// with enumerable support).
fn random_training_set(images: usize, rng: &mut StdRng) -> Array2<f64> {
    let modes = 3 + rng.random_range(0..3);
    let prototypes: Vec<Vec<bool>> = (0..modes)
        .map(|_| (0..VISIBLE).map(|_| rng.random_bool(0.5)).collect())
        .collect();
    Array2::from_shape_fn((images, VISIBLE), |(i, j)| {
        let proto = &prototypes[i % modes];
        let bit = if rng.random::<f64>() < 0.05 {
            !proto[j]
        } else {
            proto[j]
        };
        if bit {
            1.0
        } else {
            0.0
        }
    })
}

fn data_histogram(data: &Array2<f64>) -> Array1<f64> {
    let mut hist = Array1::zeros(1 << VISIBLE);
    for row in data.rows() {
        let code = exact::array_to_bits(&row) as usize;
        hist[code] += 1.0;
    }
    hist
}

fn main() {
    let config = RunConfig::from_args();
    let runs = config.pick(24, 400);
    let iters = config.pick(300, 1000);
    let big_k = config.pick(100, 1000);
    let images = 100;

    header("Figure 11: KL divergence CDF vs enumerated ground truth (12v x 4h)");
    println!(
        "runs: {runs}  iterations: {iters}  CD-big k: {big_k}  seed: {}",
        config.seed
    );

    let mut kl = vec![Vec::new(); 4]; // ML, CD-1, CD-big, BGF
    let mut rng = StdRng::seed_from_u64(config.seed);
    for run in 0..runs {
        let data = random_training_set(images, &mut rng);
        let hist = data_histogram(&data);
        let init = Rbm::random(VISIBLE, HIDDEN, 0.05, &mut rng);

        // Exact maximum likelihood.
        let mut ml = init.clone();
        let trainer = MlTrainer::new(0.1);
        for _ in 0..iters {
            trainer.step(&mut ml, &data);
        }
        kl[0].push(kl_to_ground_truth(&hist, &exact::visible_distribution(&ml)));

        // CD-1 (one parameter update per iteration, full batch).
        let mut cd1 = init.clone();
        let t1 = CdTrainer::new(1, 0.1);
        for _ in 0..iters {
            t1.train_epoch(&mut cd1, &data, images, &mut rng);
        }
        kl[1].push(kl_to_ground_truth(
            &hist,
            &exact::visible_distribution(&cd1),
        ));

        // CD with large k.
        let mut cdk = init.clone();
        let tk = CdTrainer::new(big_k, 0.1);
        for _ in 0..iters {
            tk.train_epoch(&mut cdk, &data, images, &mut rng);
        }
        kl[2].push(kl_to_ground_truth(
            &hist,
            &exact::visible_distribution(&cdk),
        ));

        // BGF on the hardware model (minibatch 1; match update count by
        // streaming the whole set `iters / images`-equivalent times).
        let mut bgf = BoltzmannGradientFollower::new(
            init,
            bgf_quality_config().with_pump_ratio(1.0 / 512.0),
            &mut rng,
        );
        let epochs = (iters / 10).max(1);
        for _ in 0..epochs {
            bgf.train_epoch(&data, &mut rng);
        }
        kl[3].push(kl_to_ground_truth(
            &hist,
            &exact::visible_distribution(&bgf.effective_rbm()),
        ));

        if (run + 1) % 8 == 0 {
            println!("  ... {}/{runs} runs", run + 1);
        }
    }

    let names = ["ML", "CD-1", &format!("CD-{big_k}"), "BGF"];
    header("CDF of final KL divergence (nats)");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "p10", "p25", "p50", "p75", "p90"
    );
    let mut medians = Vec::new();
    for (name, values) in names.iter().zip(&kl) {
        let (sorted, _) = empirical_cdf(values);
        let q = |p: f64| sorted[(p * (sorted.len() - 1) as f64).round() as usize];
        println!(
            "{name:<10} {:>8.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            q(0.10),
            q(0.25),
            q(0.50),
            q(0.75),
            q(0.90)
        );
        medians.push(q(0.5));
    }

    header("Paper vs measured");
    println!("paper: all algorithms show similar bias; BGF's CDF is at or left of");
    println!("CD-1's (BGF behaves like CD with very large k, approaching ML).");
    let bgf_ok = medians[3] <= medians[1] * 1.5;
    println!(
        "BGF median KL ({:.4}) not worse than ~1.5x CD-1 median ({:.4}): {}",
        medians[3],
        medians[1],
        if bgf_ok {
            "yes (SHAPE REPRODUCED)"
        } else {
            "NO"
        }
    );

    if config.json {
        println!("{}", serde_json::to_string(&kl).expect("serializable"));
    }
}
