//! The bench-trajectory regression gate: diffs two `BENCH_PR<N>.json`
//! files and **fails (exit 1) when any row present in both regresses by
//! more than the tolerance** (default 10% throughput). Rows are matched
//! on `(name, visible, hidden, mode)`; rows that exist only in the newer
//! file (new suites, e.g. the PR 2 `substrate-cd1` dimension) are listed
//! but never gated.
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_gate -- \
//!     BENCH_PR1.json BENCH_PR2.json [--tolerance 0.10]
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use serde::Value;

type RowKey = (String, i64, i64, String);

fn str_field(row: &Value, key: &str) -> String {
    match row.get(key) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("row field `{key}` should be a string, got {other:?}"),
    }
}

fn num_field(row: &Value, key: &str) -> f64 {
    match row.get(key) {
        Some(Value::Int(i)) => *i as f64,
        Some(Value::UInt(u)) => *u as f64,
        Some(Value::Float(x)) => *x,
        other => panic!("row field `{key}` should be a number, got {other:?}"),
    }
}

/// Parses one trajectory file into `(name, visible, hidden, mode) → throughput`.
fn load_rows(path: &str) -> BTreeMap<RowKey, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let value = serde_json::parse_value(&text).unwrap_or_else(|e| panic!("parse {path}: {e:?}"));
    let benches = value
        .get("benches")
        .and_then(Value::as_seq)
        .unwrap_or_else(|| panic!("{path}: missing `benches` array"));
    let mut rows = BTreeMap::new();
    for row in benches {
        let key = (
            str_field(row, "name"),
            num_field(row, "visible") as i64,
            num_field(row, "hidden") as i64,
            str_field(row, "mode"),
        );
        rows.insert(key, num_field(row, "throughput"));
    }
    rows
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .expect("usage: bench_gate <baseline.json> <candidate.json> [--tolerance 0.10]");
    let candidate_path = args
        .next()
        .expect("usage: bench_gate <baseline.json> <candidate.json> [--tolerance 0.10]");
    let mut tolerance = 0.10;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().expect("--tolerance needs a value");
                tolerance = v.parse().expect("--tolerance needs a number");
            }
            other => panic!("unknown flag `{other}` (try --tolerance)"),
        }
    }

    let baseline = load_rows(&baseline_path);
    let candidate = load_rows(&candidate_path);

    println!(
        "bench gate: {candidate_path} vs {baseline_path} (tolerance {:.0}%)",
        tolerance * 100.0
    );
    println!(
        "{:<16} {:>7} {:>7} {:<18} {:>14} {:>14} {:>8}",
        "name", "visible", "hidden", "mode", "baseline", "candidate", "delta"
    );

    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for (key, &new_throughput) in &candidate {
        let (name, visible, hidden, mode) = key;
        match baseline.get(key) {
            Some(&old_throughput) => {
                matched += 1;
                let delta = new_throughput / old_throughput - 1.0;
                let flag = if delta < -tolerance {
                    "  <-- REGRESSION"
                } else {
                    ""
                };
                println!(
                    "{name:<16} {visible:>7} {hidden:>7} {mode:<18} {old_throughput:>14.1} {new_throughput:>14.1} {:>+7.1}%{flag}",
                    delta * 100.0
                );
                if delta < -tolerance {
                    regressions.push((key.clone(), old_throughput, new_throughput));
                }
            }
            None => {
                println!(
                    "{name:<16} {visible:>7} {hidden:>7} {mode:<18} {:>14} {new_throughput:>14.1}      new",
                    "-"
                );
            }
        }
    }
    // A baseline row missing from the candidate is itself a failure:
    // otherwise deleting a regressed suite would silently evade the gate.
    let mut dropped = Vec::new();
    for key in baseline.keys() {
        if !candidate.contains_key(key) {
            let (name, visible, hidden, mode) = key;
            println!("{name:<16} {visible:>7} {hidden:>7} {mode:<18}   dropped from candidate");
            dropped.push(key.clone());
        }
    }

    assert!(matched > 0, "no matching rows between the two trajectories");
    if regressions.is_empty() && dropped.is_empty() {
        println!(
            "\nbench gate PASSED: {matched} matched rows within {:.0}%",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\nbench gate FAILED: {} row(s) regressed, {} baseline row(s) dropped:",
            regressions.len(),
            dropped.len()
        );
        for ((name, visible, hidden, mode), old, new) in &regressions {
            println!("  {name} {visible}x{hidden} {mode}: {old:.1} -> {new:.1}");
        }
        for (name, visible, hidden, mode) in &dropped {
            println!("  {name} {visible}x{hidden} {mode}: dropped from candidate");
        }
        ExitCode::FAILURE
    }
}
