//! PR 4 performance-trajectory benchmark: everything `bench_pr3`
//! measures (same suites, same `(name, visible, hidden, mode)` row
//! identities, so the `bench_gate` binary can diff the two trajectory
//! files) **plus the kernel dimension**: the CD-1 batch-64 sampling
//! chain on the software substrate with the bit-packed binary-state
//! kernel vs the dense-GEMM baseline, in the same binary, at 784×200
//! and 108×1024.
//!
//! Emits `BENCH_PR4.json`. Gate it against the previous point with:
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_pr4 -- --quick
//! cargo run --release -p ember_bench --bin bench_gate -- BENCH_PR3.json BENCH_PR4.json
//! ```
//!
//! The committed `BENCH_PR4.json` follows the estimator convention the
//! PR 2/3 points established for the drifting shared reference box:
//! per-row medians over 8 process runs of this binary (`--quick`),
//! with each `speedups` entry the median of the per-run ratios (the
//! paired within-process estimator). The committed point shows the
//! packed kernel ≥1.5× over dense at 784×200 (row-level median ratio
//! 1.56).

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_gibbs_cd1, bench_gibbs_chain, bench_packed_kernel,
    bench_serve_throughput, bench_substrate_cd1, write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);
    bench_substrate_cd1(&config, &mut rows, &mut speedups);
    bench_serve_throughput(&config, &mut rows, &mut speedups);
    bench_packed_kernel(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<34} {s:.2}x");
    }

    let json = write_trajectory(4, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
