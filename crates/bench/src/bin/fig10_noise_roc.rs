//! Regenerates **Figure 10**: ROC curves (and AUC) of the
//! anomaly-detection RBM trained on the BGF under the six diagonal
//! noise/variation configurations.
//!
//! Expected shape (paper): final AUC stays within 0.957–0.963 across all
//! configurations.

use ember_analog::NoiseModel;
use ember_bench::{bgf_quality_config, header, train_bgf, RunConfig};
use ember_metrics::RocCurve;
use ndarray::Axis;

fn main() {
    let config = RunConfig::from_args();
    let total = config.pick(4000, 20_000);
    let epochs = config.pick(10, 40);

    header("Figure 10: anomaly-detection ROC under noise/variation (BGF)");
    println!(
        "transactions: {total}  epochs: {epochs}  seed: {}",
        config.seed
    );

    let ds = ember_datasets::fraud::generate(total, 0.02, config.seed);
    let normals = ds.normal_binary();

    let mut results = Vec::new();
    for noise in NoiseModel::paper_diagonal() {
        let mut rng = config.rng();
        let rbm = train_bgf(
            28,
            10,
            &normals,
            bgf_quality_config().with_noise(noise),
            epochs,
            &mut rng,
        );
        let scores: Vec<f64> = ds
            .binary()
            .axis_iter(Axis(0))
            .map(|row| rbm.free_energy(&row))
            .collect();
        let roc = RocCurve::new(&scores, ds.labels());
        // A few curve points for the plot.
        let pts = roc.points();
        let sample: Vec<(f64, f64)> = pts
            .iter()
            .step_by((pts.len() / 6).max(1))
            .copied()
            .collect();
        println!(
            "{:<12} AUC {:.4}   curve {:?}",
            noise.label(),
            roc.auc(),
            sample
                .iter()
                .map(|(f, t)| (format!("{f:.2}"), format!("{t:.2}")))
                .collect::<Vec<_>>()
        );
        results.push((noise.label(), roc.auc()));
    }

    header("Paper vs measured");
    let aucs: Vec<f64> = results.iter().map(|r| r.1).collect();
    let min = aucs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = aucs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("paper: AUC ranges 0.957 - 0.963 across configurations");
    println!("measured: AUC ranges {min:.3} - {max:.3}");
    println!(
        "all configurations detect well (AUC > 0.8) with small spread (<0.1): {}",
        if min > 0.8 && max - min < 0.1 {
            "yes (SHAPE REPRODUCED)"
        } else {
            "NO"
        }
    );

    if config.json {
        println!("{}", serde_json::to_string(&results).expect("serializable"));
    }
}
