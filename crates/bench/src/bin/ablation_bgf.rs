//! Ablation study of the BGF design choices (§3.3 / Eq. 12): how the
//! charge-packet size (hardware learning rate), the number of persistent
//! particles, the negative-phase walk length, and the converter
//! resolutions move final model quality.
//!
//! Not a paper figure — this backs DESIGN.md's design-choice inventory.

use ember_bench::{header, train_bgf, RunConfig};
use ember_core::BgfConfig;
use ember_metrics::Ais;

fn main() {
    let config = RunConfig::from_args();
    let samples = config.pick(300, 2000);
    let hidden = config.pick(32, 200);
    let epochs = config.pick(10, 30);
    let ais = Ais::new(config.pick(100, 400), config.pick(15, 40));

    header("BGF ablation (MNIST-like, final AIS avg log probability)");
    println!(
        "samples: {samples}  hidden: {hidden}  epochs: {epochs}  seed: {}",
        config.seed
    );

    let data = ember_datasets::digits::generate(samples, config.seed).binarized(0.5);
    let images = data.images();

    let evaluate = |label: &str, cfg: BgfConfig, epochs: usize| {
        let mut rng = config.rng();
        let rbm = train_bgf(784, hidden, images, cfg, epochs, &mut rng);
        let lp = ais.mean_log_probability(&rbm, images, &mut rng);
        println!("{label:<34} avg logP {lp:9.1}");
        lp
    };

    header("packet size (hardware learning rate; larger = faster, riskier)");
    for exp in [8u32, 10, 11, 12] {
        let cfg = BgfConfig::default()
            .with_pump_ratio(1.0 / (1u64 << exp) as f64)
            .with_negative_sweeps(2)
            .with_particles(20);
        evaluate(&format!("pump ratio 2^-{exp}"), cfg, epochs);
    }

    header("persistent particles (negative-phase chain diversity)");
    for particles in [1usize, 5, 20, 50] {
        let cfg = BgfConfig::default()
            .with_pump_ratio(1.0 / 2048.0)
            .with_negative_sweeps(2)
            .with_particles(particles);
        evaluate(&format!("particles {particles}"), cfg, epochs);
    }

    header("negative-phase walk length (anneal quality)");
    for sweeps in [1usize, 2, 4, 8] {
        let cfg = BgfConfig::default()
            .with_pump_ratio(1.0 / 2048.0)
            .with_negative_sweeps(sweeps)
            .with_particles(20);
        evaluate(&format!("negative sweeps {sweeps}"), cfg, epochs);
    }

    header("read-out resolution (one-time ADC cost vs fidelity)");
    for bits in [4u32, 6, 8, 12] {
        let mut rng = config.rng();
        let init = ember_rbm::Rbm::random(784, hidden, 0.01, &mut rng);
        let cfg = BgfConfig::default()
            .with_pump_ratio(1.0 / 2048.0)
            .with_negative_sweeps(2)
            .with_adc_bits(bits);
        let mut bgf = ember_core::BoltzmannGradientFollower::new(init, cfg, &mut rng);
        for _ in 0..epochs {
            bgf.train_epoch(images, &mut rng);
        }
        let read = bgf.read_out(&mut rng);
        let lp = ais.mean_log_probability(&read, images, &mut rng);
        println!(
            "{:<34} avg logP {lp:9.1}",
            format!("ADC {bits}-bit read-out")
        );
    }

    println!("\nexpected shape: quality is flat across particles>=5 and sweeps>=2,");
    println!("collapses for overly large packets, and survives 8-bit read-out");
    println!("(the paper's converter choice) with negligible loss.");
}
