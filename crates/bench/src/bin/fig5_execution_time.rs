//! Regenerates **Figure 5**: execution time of TPU v1, GS and GPU (Tesla
//! T4) normalized over BGF for every benchmark, batch size 500.
//!
//! Paper anchors: BGF beats the TPU by ~29× (geometric mean), GS by ~2×,
//! and the GPU trails the TPU.

use ember_bench::{compare_row, header, RunConfig};
use ember_perf::{bgf_time, fig5_rows, gs_time, paper_benchmarks, tpu_time};

fn main() {
    let config = RunConfig::from_args();
    header("Figure 5: execution time normalized over BGF (batch 500)");

    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "Benchmark", "TPU(v1)", "GS", "GPU(T4)"
    );
    let rows = fig5_rows();
    for row in &rows {
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>12.1}",
            row.name, row.tpu, row.gs, row.gpu
        );
    }

    let gm = rows.last().expect("geomean row");
    header("Paper vs measured (geometric means)");
    compare_row("TPU/BGF speedup", "29x", &format!("{:.1}x", gm.tpu));
    compare_row(
        "GS speedup over TPU",
        "2x",
        &format!("{:.2}x", gm.tpu / gm.gs),
    );
    compare_row(
        "GPU slower than TPU",
        "yes",
        if gm.gpu > gm.tpu { "yes" } else { "NO" },
    );
    let mnist = &paper_benchmarks()[0];
    compare_row(
        "GS comm share of host wait",
        "~25%",
        &format!("{:.0}%", gs_time(mnist).comm_fraction_of_wait() * 100.0),
    );

    header("Absolute per-benchmark times (model, seconds)");
    for b in paper_benchmarks() {
        println!(
            "{:<16} TPU {:>9.3e}  GS {:>9.3e}  BGF {:>9.3e}",
            b.name,
            tpu_time(&b),
            gs_time(&b).total(),
            bgf_time(&b).total()
        );
    }

    if config.json {
        println!("{}", serde_json::to_string(&rows).expect("serializable"));
    }
}
