//! Regenerates **Table 2**: area and power of the GS and BGF sub-units at
//! 400×400, 800×800 and 1600×1600 arrays.

use ember_bench::{compare_row, header, RunConfig};
use ember_perf::{bgf_components, gibbs_components, ComponentTable};

fn print_table(title: &str, table: &ComponentTable) {
    header(title);
    print!("{:<14}", "Component");
    for n in &table.sizes {
        print!(" | {n:>7}x{n:<7}", n = n);
    }
    println!();
    for (name, cells) in &table.rows {
        print!("{name:<14}");
        for (area, power) in cells {
            print!(" | {area:>7.4}mm2 {power:>6.1}mW");
        }
        println!();
    }
    print!("{:<14}", "Total");
    for (area, power) in &table.totals {
        print!(" | {area:>7.3}mm2 {power:>6.1}mW");
    }
    println!();
}

fn main() {
    let config = RunConfig::from_args();
    let sizes = [400usize, 800, 1600];

    let gibbs = ComponentTable::build(&gibbs_components(), &sizes);
    print_table("Table 2 (GS substrate)", &gibbs);

    let bgf = ComponentTable::build(&bgf_components(), &sizes);
    print_table("Table 2 (BGF substrate)", &bgf);

    header("Paper vs measured (totals)");
    compare_row(
        "Total (Gibbs) @400",
        "0.065 mm2 / 60.5 mW",
        &format!("{:.3} mm2 / {:.1} mW", gibbs.totals[0].0, gibbs.totals[0].1),
    );
    compare_row(
        "Total (Gibbs) @1600",
        "1.5 mm2 / 602 mW",
        &format!("{:.2} mm2 / {:.0} mW", gibbs.totals[2].0, gibbs.totals[2].1),
    );
    compare_row(
        "Total (BGF) @400",
        "1.32 mm2 / 66.5 mW",
        &format!("{:.2} mm2 / {:.1} mW", bgf.totals[0].0, bgf.totals[0].1),
    );
    compare_row(
        "Total (BGF) @1600",
        "21.5 mm2 / 700 mW",
        &format!("{:.1} mm2 / {:.0} mW", bgf.totals[2].0, bgf.totals[2].1),
    );
    println!(
        "\nNote: the paper's 1600-node comparator cell reads 0.96 mm2 where the\n\
         row's own x2-per-doubling law gives 0.096 mm2 (apparent typo); our\n\
         Gibbs @1600 total differs from the printed 1.5 mm2 by exactly that."
    );

    if config.json {
        println!(
            "{}",
            serde_json::to_string(&(gibbs, bgf)).expect("serializable")
        );
    }
}
