//! Regenerates **Table 4**: test accuracy of RBM and DBN-DNN models
//! trained with CD-10 vs BGF on every dataset, plus the
//! recommendation-system MAE and anomaly-detection AUC rows.
//!
//! Expected shape (paper): CD-10 and BGF yield essentially the same
//! accuracy on every benchmark (e.g. MNIST 95.9% vs 96.3%), MAE ≈
//! 0.76/0.72, AUC ≈ 0.96/0.96.

use ember_bench::{
    bgf_quality_config, compare_row, header, rbm_classifier_accuracy, train_bgf, train_cd,
    RunConfig, BGF_EPOCH_FACTOR,
};
use ember_core::BoltzmannGradientFollower;
use ember_datasets::{train_test_split, ImageDataset};
use ember_metrics::RocCurve;
use ember_rbm::{extract_patches, CdTrainer, Dbn, Mlp, MlpConfig, PatchPipeline, Rbm};
use ndarray::Axis;
use rand::rngs::StdRng;

fn image_rbm_pair(
    ds: &ImageDataset,
    hidden: usize,
    epochs: usize,
    head_epochs: usize,
    config: &RunConfig,
) -> (f64, f64) {
    let mut rng = config.rng();
    let split = train_test_split(&ds.binarized(0.5), 0.2, &mut rng);
    let cd = train_cd(
        ds.pixel_len(),
        hidden,
        split.train.images(),
        10,
        0.1,
        20,
        epochs,
        &mut rng,
    );
    let acc_cd = rbm_classifier_accuracy(&cd, &split.train, &split.test, head_epochs, &mut rng);
    let bgf = train_bgf(
        ds.pixel_len(),
        hidden,
        split.train.images(),
        bgf_quality_config(),
        epochs * BGF_EPOCH_FACTOR,
        &mut rng,
    );
    let acc_bgf = rbm_classifier_accuracy(&bgf, &split.train, &split.test, head_epochs, &mut rng);
    (acc_cd, acc_bgf)
}

fn image_dbn_pair(
    ds: &ImageDataset,
    sizes: &[usize],
    epochs: usize,
    head_epochs: usize,
    config: &RunConfig,
) -> (f64, f64) {
    let mut rng = config.rng();
    let split = train_test_split(&ds.binarized(0.5), 0.2, &mut rng);

    // CD-10 pretrained DBN + fine-tuned softmax head.
    let mut dbn = Dbn::random(sizes, 0.01, &mut rng);
    dbn.pretrain(
        split.train.images(),
        &CdTrainer::new(10, 0.1),
        20,
        epochs,
        &mut rng,
    );
    let acc_cd = dbn_accuracy(&dbn, &split, ds.classes(), head_epochs, &mut rng);

    // BGF-pretrained DBN: each layer trained on the hardware model.
    let mut layers = Vec::new();
    let mut input = split.train.images().clone();
    for pair in sizes.windows(2) {
        let init = Rbm::random(pair[0], pair[1], 0.01, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(init, bgf_quality_config(), &mut rng);
        let binary = input.mapv(|p| if p >= 0.5 { 1.0 } else { 0.0 });
        for _ in 0..epochs * BGF_EPOCH_FACTOR {
            bgf.train_epoch(&binary, &mut rng);
        }
        let rbm = bgf.effective_rbm();
        input = rbm.hidden_probs_batch(&input);
        layers.push(rbm);
    }
    let dbn_bgf = Dbn::from_layers(layers);
    let acc_bgf = dbn_accuracy(&dbn_bgf, &split, ds.classes(), head_epochs, &mut rng);
    (acc_cd, acc_bgf)
}

fn dbn_accuracy(
    dbn: &Dbn,
    split: &ember_datasets::SplitSets,
    classes: usize,
    head_epochs: usize,
    rng: &mut StdRng,
) -> f64 {
    let mut mlp = Mlp::from_dbn(dbn, classes, rng);
    let cfg = MlpConfig {
        learning_rate: 0.3,
        momentum: 0.8,
        weight_decay: 1e-4,
    };
    for _ in 0..head_epochs {
        mlp.train_epoch(split.train.images(), split.train.labels(), 32, &cfg, rng);
    }
    mlp.accuracy(split.test.images(), split.test.labels())
}

fn patch_pair(
    ds: &ImageDataset,
    hidden: usize,
    epochs: usize,
    head_epochs: usize,
    config: &RunConfig,
) -> (f64, f64) {
    let mut rng = config.rng();
    let split = train_test_split(ds, 0.2, &mut rng);
    let patch = 6;
    let stride = config.pick(6, 2);
    let patches = extract_patches(
        split.train.images(),
        ds.height(),
        ds.width(),
        ds.channels(),
        patch,
        stride,
    );
    let patches = ember_rbm::binarize_patches(&patches);
    let visible = patch * patch * ds.channels();

    let accuracy_with = |rbm: Rbm, rng: &mut StdRng| -> f64 {
        let pipe = PatchPipeline::new(rbm, ds.height(), ds.width(), ds.channels(), patch, stride);
        let train_f = pipe.features_batch(split.train.images());
        let test_f = pipe.features_batch(split.test.images());
        let mut head = Mlp::new(pipe.feature_len(), &[], ds.classes(), 0.01, rng);
        let cfg = MlpConfig {
            learning_rate: 0.3,
            momentum: 0.8,
            weight_decay: 1e-4,
        };
        for _ in 0..head_epochs {
            head.train_epoch(&train_f, split.train.labels(), 32, &cfg, rng);
        }
        head.accuracy(&test_f, split.test.labels())
    };

    let cd = train_cd(visible, hidden, &patches, 10, 0.1, 50, epochs, &mut rng);
    let acc_cd = accuracy_with(cd, &mut rng);
    let bgf = train_bgf(
        visible,
        hidden,
        &patches,
        bgf_quality_config(),
        epochs * BGF_EPOCH_FACTOR,
        &mut rng,
    );
    let acc_bgf = accuracy_with(bgf, &mut rng);
    (acc_cd, acc_bgf)
}

fn recommendation_pair(config: &RunConfig) -> (f64, f64) {
    let mut rng = config.rng();
    let ratings = config.pick(20_000, 100_000);
    let ml = ember_datasets::movielens::generate(ratings, 0.1, config.seed);
    let hidden = config.pick(50, 100);
    let matrix = ml.item_user_matrix(4);
    let epochs = config.pick(3, 10);

    let mae_with = |rbm: &Rbm| -> f64 { ember_bench::movielens_mae(rbm, &ml, &matrix) };

    let cd = train_cd(ml.users(), hidden, &matrix, 10, 0.05, 50, epochs, &mut rng);
    let mae_cd = mae_with(&cd);
    let bgf = train_bgf(
        ml.users(),
        hidden,
        &matrix,
        bgf_quality_config(),
        epochs * BGF_EPOCH_FACTOR,
        &mut rng,
    );
    let mae_bgf = mae_with(&bgf);
    (mae_cd, mae_bgf)
}

fn anomaly_pair(config: &RunConfig) -> (f64, f64) {
    let mut rng = config.rng();
    let total = config.pick(4000, 20_000);
    let ds = ember_datasets::fraud::generate(total, 0.02, config.seed);
    let normals = ds.normal_binary();
    let epochs = config.pick(10, 40);

    let auc_with = |rbm: &Rbm| -> f64 {
        let scores: Vec<f64> = ds
            .binary()
            .axis_iter(Axis(0))
            .map(|row| rbm.free_energy(&row))
            .collect();
        RocCurve::new(&scores, ds.labels()).auc()
    };

    let cd = train_cd(28, 10, &normals, 10, 0.05, 32, epochs, &mut rng);
    let auc_cd = auc_with(&cd);
    let bgf = train_bgf(
        28,
        10,
        &normals,
        bgf_quality_config(),
        epochs * BGF_EPOCH_FACTOR,
        &mut rng,
    );
    let auc_bgf = auc_with(&bgf);
    (auc_cd, auc_bgf)
}

fn main() {
    let config = RunConfig::from_args();
    let samples = config.pick(600, 5000);
    let hidden = config.pick(48, 200);
    let epochs = config.pick(6, 25);
    let head_epochs = config.pick(40, 120);

    header("Table 4: test accuracy, CD-10 vs BGF");
    println!(
        "(quick={} samples={samples} hidden={hidden} epochs={epochs} seed={})",
        !config.full, config.seed
    );
    println!(
        "{:<22} {:>10} {:>10} {:>8}",
        "Benchmark", "CD-10", "BGF", "|diff|"
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    let mut row = |name: &str, pair: (f64, f64)| {
        println!(
            "{name:<22} {:>9.1}% {:>9.1}% {:>7.1}%",
            pair.0 * 100.0,
            pair.1 * 100.0,
            (pair.0 - pair.1).abs() * 100.0
        );
        rows.push((name.to_owned(), pair.0, pair.1));
    };

    let mnist = ember_datasets::digits::generate(samples, config.seed);
    row(
        "MNIST RBM",
        image_rbm_pair(&mnist, hidden, epochs, head_epochs, &config),
    );
    let kmnist = ember_datasets::kana::generate(samples, config.seed);
    row(
        "KMNIST RBM",
        image_rbm_pair(&kmnist, hidden, epochs, head_epochs, &config),
    );
    let fmnist = ember_datasets::fashion::generate(samples, config.seed);
    row(
        "FMNIST RBM",
        image_rbm_pair(&fmnist, hidden, epochs, head_epochs, &config),
    );
    let emnist = ember_datasets::letters::generate(samples, config.seed);
    row(
        "EMNIST RBM",
        image_rbm_pair(&emnist, hidden, epochs, head_epochs, &config),
    );

    let dbn_sizes: Vec<usize> = config.pick(vec![784, 48, 32], vec![784, 500, 500]);
    row(
        "MNIST DBN-DNN",
        image_dbn_pair(&mnist, &dbn_sizes, epochs, head_epochs, &config),
    );
    row(
        "KMNIST DBN-DNN",
        image_dbn_pair(&kmnist, &dbn_sizes, epochs, head_epochs, &config),
    );

    let cifar = ember_datasets::cifar::generate(config.pick(300, 2000), config.seed);
    row(
        "CIFAR10 conv-RBM",
        patch_pair(&cifar, config.pick(32, 1024), epochs, head_epochs, &config),
    );
    let norb = ember_datasets::norb::generate(config.pick(300, 2000), config.seed);
    row(
        "SmallNORB conv-RBM",
        patch_pair(&norb, config.pick(32, 1024), epochs, head_epochs, &config),
    );

    let (mae_cd, mae_bgf) = recommendation_pair(&config);
    println!(
        "{:<22} {mae_cd:>10.3} {mae_bgf:>10.3} {:>8.3}",
        "Recommendation MAE",
        (mae_cd - mae_bgf).abs()
    );
    let (auc_cd, auc_bgf) = anomaly_pair(&config);
    println!(
        "{:<22} {auc_cd:>10.3} {auc_bgf:>10.3} {:>8.3}",
        "Anomaly AUC",
        (auc_cd - auc_bgf).abs()
    );

    header("Paper vs measured (shape)");
    println!("paper: CD-10 and BGF agree within ~1% accuracy on every benchmark;");
    println!("MAE 0.76 (cd-10) vs 0.72 (BGF); AUC 0.96 vs 0.96.");
    let max_gap = rows
        .iter()
        .map(|(_, a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    compare_row(
        "max |CD-10 - BGF| accuracy",
        "<~1.0%",
        &format!("{:.1}%", max_gap * 100.0),
    );
    compare_row(
        "MAE parity",
        "0.76 / 0.72",
        &format!("{mae_cd:.3} / {mae_bgf:.3}"),
    );
    compare_row(
        "AUC parity",
        "0.96 / 0.96",
        &format!("{auc_cd:.3} / {auc_bgf:.3}"),
    );

    if config.json {
        println!("{}", serde_json::to_string(&rows).expect("serializable"));
    }
}
