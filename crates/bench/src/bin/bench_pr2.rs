//! PR 2 performance-trajectory benchmark: everything `bench_pr1`
//! measures (same suites, same `(name, visible, hidden, mode)` row
//! identities, so the `bench_gate` binary can diff the two trajectory
//! files) **plus the substrate dimension**: CD-1 training driven through
//! the `Substrate` trait with interchangeable backends — software Gibbs
//! and BRIM-in-the-loop — at the paper's layer sizes (784×200, 784×500,
//! 108×1024).
//!
//! Emits `BENCH_PR2.json`. Gate it against the previous point with:
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_pr2 -- --quick
//! cargo run --release -p ember_bench --bin bench_gate -- BENCH_PR1.json BENCH_PR2.json
//! ```

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_gibbs_cd1, bench_gibbs_chain, bench_substrate_cd1,
    write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);
    bench_substrate_cd1(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<28} {s:.2}x");
    }

    let json = write_trajectory(2, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
