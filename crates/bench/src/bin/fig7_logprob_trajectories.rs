//! Regenerates **Figure 7**: average log probability of the training data
//! over the course of training, for CD-1, CD-10 and BGF, on the
//! MNIST/KMNIST/FMNIST/EMNIST-like datasets (AIS-estimated, as in §4.1).
//!
//! Expected shape (paper): all trajectories rise substantially; CD-1,
//! CD-10 and BGF produce different but comparable trajectories, with BGF
//! inside the CD family's spread.

use ember_bench::{bgf_quality_config, header, RunConfig};
use ember_core::BoltzmannGradientFollower;
use ember_metrics::Ais;
use ember_rbm::{CdTrainer, Rbm};

fn main() {
    let config = RunConfig::from_args();
    let samples = config.pick(400, 4000);
    let hidden = config.pick(32, 200);
    let epochs = config.pick(8, 30);
    let ais = Ais::new(config.pick(100, 500), config.pick(15, 60));
    let batch = config.pick(20, 100);

    header("Figure 7: average log probability trajectories (AIS estimate)");
    println!(
        "datasets: 4  samples: {samples}  hidden: {hidden}  epochs: {epochs}  (seed {})",
        config.seed
    );

    let mut results = Vec::new();
    for name in ["mnist", "kmnist", "fmnist", "emnist"] {
        let data = match name {
            "mnist" => ember_datasets::digits::generate(samples, config.seed),
            "kmnist" => ember_datasets::kana::generate(samples, config.seed),
            "fmnist" => ember_datasets::fashion::generate(samples, config.seed),
            _ => ember_datasets::letters::generate(samples, config.seed),
        }
        .binarized(0.5);
        let images = data.images();

        let mut rng = config.rng();
        let mut cd1 = Rbm::random(784, hidden, 0.01, &mut rng);
        let mut cd10 = cd1.clone();
        let mut bgf = BoltzmannGradientFollower::new(cd1.clone(), bgf_quality_config(), &mut rng);
        let t1 = CdTrainer::new(1, 0.1);
        let t10 = CdTrainer::new(10, 0.1);

        let mut traj: Vec<(f64, f64, f64)> = Vec::new();
        for _ in 0..epochs {
            t1.train_epoch(&mut cd1, images, batch, &mut rng);
            t10.train_epoch(&mut cd10, images, batch, &mut rng);
            bgf.train_epoch(images, &mut rng);
            let lp1 = ais.mean_log_probability(&cd1, images, &mut rng);
            let lp10 = ais.mean_log_probability(&cd10, images, &mut rng);
            let lpb = ais.mean_log_probability(&bgf.effective_rbm(), images, &mut rng);
            traj.push((lp1, lp10, lpb));
        }

        header(&format!("{name}-like: avg log P(train) per epoch"));
        println!(
            "{:<8} {:>10} {:>10} {:>10}",
            "epoch", "CD-1", "CD-10", "BGF"
        );
        for (e, (a, b, c)) in traj.iter().enumerate() {
            println!("{:<8} {a:>10.2} {b:>10.2} {c:>10.2}", e + 1);
        }

        let first = traj.first().expect("non-empty");
        let last = traj.last().expect("non-empty");
        let rising = |f: f64, l: f64| if l > f { "rising" } else { "NOT rising" };
        println!(
            "trend: CD-1 {}, CD-10 {}, BGF {}",
            rising(first.0, last.0),
            rising(first.1, last.1),
            rising(first.2, last.2)
        );
        results.push((name, traj));
    }

    header("Paper vs measured");
    println!("paper: trajectories increase over time, often substantially; the");
    println!("BGF trajectory differs from CD-k but stays within the family's spread.");
    let mut ok = true;
    for (name, traj) in &results {
        let first = traj.first().expect("non-empty");
        let last = traj.last().expect("non-empty");
        let all_rise = last.0 > first.0 && last.1 > first.1 && last.2 > first.2;
        println!("{name}-like: all three trajectories rising: {all_rise}");
        ok &= all_rise;
    }
    println!(
        "overall: {}",
        if ok { "SHAPE REPRODUCED" } else { "MISMATCH" }
    );

    if config.json {
        #[allow(clippy::type_complexity)]
        let blob: Vec<(&str, &Vec<(f64, f64, f64)>)> =
            results.iter().map(|(n, t)| (*n, t)).collect();
        println!("{}", serde_json::to_string(&blob).expect("serializable"));
    }
}
