//! PR 3 performance-trajectory benchmark: everything `bench_pr2`
//! measures (same suites, same `(name, visible, hidden, mode)` row
//! identities, so the `bench_gate` binary can diff the two trajectory
//! files) **plus the serving dimension**: waves of concurrent single-row
//! sample requests through the sharded `SamplingService`, request
//! coalescing on vs off, at 1/2/4 worker shards and the paper's 784×200
//! and 108×1024 layer sizes.
//!
//! Emits `BENCH_PR3.json`. Gate it against the previous point with:
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_pr3 -- --quick
//! cargo run --release -p ember_bench --bin bench_gate -- BENCH_PR2.json BENCH_PR3.json
//! ```

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_gibbs_cd1, bench_gibbs_chain,
    bench_serve_throughput, bench_substrate_cd1, write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);
    bench_substrate_cd1(&config, &mut rows, &mut speedups);
    bench_serve_throughput(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<34} {s:.2}x");
    }

    let json = write_trajectory(3, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
