//! Regenerates **Figure 8**: moving-average log probability of
//! BGF-trained models under injected static variation and dynamic noise,
//! for the six diagonal `(RMS_var, RMS_noise)` configurations.
//!
//! Expected shape (paper): ≤10% configurations are indistinguishable from
//! noiseless; even 20–30% keeps learning with only modest degradation.

use ember_analog::NoiseModel;
use ember_bench::{bgf_quality_config, header, RunConfig};
use ember_core::BoltzmannGradientFollower;
use ember_metrics::{Ais, MovingAverage};
use ember_rbm::Rbm;

fn main() {
    let config = RunConfig::from_args();
    let samples = config.pick(400, 4000);
    let hidden = config.pick(32, 200);
    let epochs = config.pick(8, 30);
    let ais = Ais::new(config.pick(100, 500), config.pick(15, 60));
    let window = config.pick(3, 10);

    header("Figure 8: log probability under noise/variation (MNIST-like, BGF)");
    println!(
        "samples: {samples}  hidden: {hidden}  epochs: {epochs}  seed: {}",
        config.seed
    );

    let data = ember_datasets::digits::generate(samples, config.seed).binarized(0.5);
    let images = data.images();

    // Quick mode sweeps the six diagonal configurations plotted in Fig. 8;
    // full mode covers the paper's complete 5x5 grid plus the clean
    // reference (26 configurations, §4.5).
    let grid = if config.full {
        NoiseModel::paper_grid()
    } else {
        NoiseModel::paper_diagonal()
    };
    let mut finals = Vec::new();
    for noise in grid {
        let mut rng = config.rng();
        let init = Rbm::random(784, hidden, 0.01, &mut rng);
        let mut bgf =
            BoltzmannGradientFollower::new(init, bgf_quality_config().with_noise(noise), &mut rng);
        let mut trace = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            bgf.train_epoch(images, &mut rng);
            trace.push(ais.mean_log_probability(&bgf.effective_rbm(), images, &mut rng));
        }
        let smoothed = MovingAverage::new(window).apply(&trace);
        let label = noise.label();
        println!(
            "{label:<12} trace: {}",
            smoothed
                .iter()
                .map(|x| format!("{x:7.1}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        finals.push((label, *smoothed.last().expect("non-empty")));
    }

    header("Paper vs measured");
    let clean = finals[0].1;
    println!("paper: <=10% noise has negligible impact; 20-30% still learns.");
    for (label, value) in &finals {
        let gap = clean - value;
        println!("{label:<12} final avg logP {value:8.1}   gap to clean {gap:6.1}");
    }
    let mild_ok = finals[1..4]
        .iter()
        .all(|(_, v)| clean - v < 0.25 * clean.abs());
    println!(
        "mild-noise (<=10%) within 25% of clean: {}",
        if mild_ok {
            "yes (SHAPE REPRODUCED)"
        } else {
            "NO"
        }
    );

    if config.json {
        println!("{}", serde_json::to_string(&finals).expect("serializable"));
    }
}
