//! PR 1 performance-trajectory benchmark: fixed-seed suite measuring the
//! parallel batched sampling engine against the serial/dense baselines
//! kept behind flags, at the paper's layer sizes (784×200 MNIST-class,
//! 784×500 wide, 108×1024 fraud-class).
//!
//! Emits `BENCH_PR1.json` — the first point of the per-PR performance
//! trajectory every future PR is held to. Run with `--quick` (default)
//! for CI-scale workloads or `--full` for longer measurement windows.
//!
//! Measured suites:
//!
//! * **gibbs-cd1** — one substrate-accelerated CD-1 epoch on the
//!   [`GibbsSampler`] at batch 64: batched GEMM engine vs the
//!   row-at-a-time scalar reference ([`GsEngine::SerialReference`]).
//!   Unit: samples/sec.
//! * **gibbs-chain** — software `k`-step batched Gibbs chains:
//!   [`gibbs::chain_batch_par`] (per-chain RNG streams) vs the serial
//!   single-generator [`gibbs::chain_batch`]. Unit: samples/sec.
//! * **brim-anneal** — bipartite BRIM anneal sweeps: `O(m·n)` two-GEMV
//!   kernel vs the dense `(m+n)²` reference kernel. Unit: sweeps/sec.

use std::time::Instant;

use ember_bench::{header, RunConfig};
use ember_brim::{BipartiteBrim, BrimConfig, FlipSchedule};
use ember_core::{GibbsSampler, GsConfig, GsEngine};
use ember_ising::{BipartiteProblem, RngStreams};
use ember_rbm::{gibbs, Rbm};
use ndarray::Array2;
use rand::Rng;

/// The paper's layer sizes exercised by the suite.
const SIZES: [(usize, usize); 3] = [(784, 200), (784, 500), (108, 1024)];

struct BenchRow {
    name: String,
    visible: usize,
    hidden: usize,
    mode: &'static str,
    wall_ms: f64,
    throughput: f64,
    unit: &'static str,
}

impl BenchRow {
    fn json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"visible\":{},\"hidden\":{},\"mode\":\"{}\",\"wall_ms\":{:.3},\"throughput\":{:.3},\"unit\":\"{}\"}}",
            self.name, self.visible, self.hidden, self.mode, self.wall_ms, self.throughput,
            self.unit
        )
    }
}

fn time<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    // One warm-up, then the minimum over `reps` runs (the standard
    // noise-robust estimator for a deterministic workload).
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    best
}

fn random_batch(rows: usize, cols: usize, rng: &mut impl Rng) -> Array2<f64> {
    Array2::from_shape_fn(
        (rows, cols),
        |_| if rng.random_bool(0.35) { 1.0 } else { 0.0 },
    )
}

fn bench_gibbs_cd1(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("GS accelerator CD-1 epoch (batch 64): batched GEMM vs serial reference");
    let batch = 64;
    let reps = config.pick(1, 3);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let data = random_batch(batch, m, &mut rng);
        let mut results = [0.0f64; 2];
        for (slot, engine, mode) in [
            (0, GsEngine::SerialReference, "serial-baseline"),
            (1, GsEngine::Batched, "batched"),
        ] {
            let gs_config = GsConfig::default().with_k(1).with_engine(engine);
            let mut gs = GibbsSampler::new(rbm.clone(), gs_config, &mut rng);
            let mut epoch_rng = config.rng();
            let wall_ms = time(
                || {
                    gs.train_epoch(&data, batch, &mut epoch_rng);
                },
                reps,
            );
            let throughput = batch as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!("  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/epoch  {throughput:>12.1} samples/s");
            rows.push(BenchRow {
                name: "gibbs-cd1".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "samples/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("gibbs-cd1-{m}x{n}"), speedup));
    }
}

fn bench_gibbs_chain(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Software batched Gibbs chain (k=1, batch 64): parallel streams vs serial");
    let batch = 64;
    let reps = config.pick(2, 5);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let rbm = Rbm::random(m, n, 0.01, &mut rng);
        let v0 = random_batch(batch, m, &mut rng);
        let mut results = [0.0f64; 2];

        let mut serial_rng = config.rng();
        let wall_serial = time(
            || {
                let _ = gibbs::chain_batch(&rbm, &v0, 1, &mut serial_rng);
            },
            reps,
        );
        results[0] = batch as f64 / (wall_serial / 1000.0);
        rows.push(BenchRow {
            name: "gibbs-chain".into(),
            visible: m,
            hidden: n,
            mode: "serial-baseline",
            wall_ms: wall_serial,
            throughput: results[0],
            unit: "samples/sec",
        });

        let streams = RngStreams::new(config.seed);
        let wall_par = time(
            || {
                let _ = gibbs::chain_batch_par(&rbm, &v0, 1, streams);
            },
            reps,
        );
        results[1] = batch as f64 / (wall_par / 1000.0);
        rows.push(BenchRow {
            name: "gibbs-chain".into(),
            visible: m,
            hidden: n,
            mode: "parallel-streams",
            wall_ms: wall_par,
            throughput: results[1],
            unit: "samples/sec",
        });

        let speedup = results[1] / results[0];
        println!(
            "  {m}x{n} serial {wall_serial:>9.2} ms  parallel {wall_par:>9.2} ms  speedup {speedup:.2}x"
        );
        speedups.push((format!("gibbs-chain-{m}x{n}"), speedup));
    }
}

fn bench_brim_anneal(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Bipartite BRIM anneal: O(m*n) two-GEMV kernel vs dense (m+n)^2 reference");
    let sweeps = config.pick(40, 200);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-0.1..0.1));
        let problem =
            BipartiteProblem::new(w, ndarray::Array1::zeros(m), ndarray::Array1::zeros(n))
                .expect("consistent dims");
        let schedule = FlipSchedule::geometric(0.05, 1e-3, sweeps);
        let mut results = [0.0f64; 2];
        let reps = config.pick(3, 5);
        for (slot, dense, mode) in [(0, true, "dense-baseline"), (1, false, "bipartite")] {
            let mut brim =
                BipartiteBrim::new(problem.clone(), BrimConfig::default()).with_dense_kernel(dense);
            let mut anneal_rng = config.rng();
            let wall_ms = time(|| brim.anneal(&schedule, &mut anneal_rng), reps);
            let throughput = sweeps as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!(
                "  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/{sweeps} sweeps  {throughput:>12.1} sweeps/s"
            );
            rows.push(BenchRow {
                name: "brim-anneal".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "sweeps/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("brim-anneal-{m}x{n}"), speedup));
    }
}

fn bench_brim_settle(
    config: &RunConfig,
    rows: &mut Vec<BenchRow>,
    speedups: &mut Vec<(String, f64)>,
) {
    header("Bipartite BRIM clamped settle (the §3.2 sampling op): clamp-aware kernel vs dense");
    let sweeps = config.pick(100, 400);
    let reps = config.pick(3, 5);
    for &(m, n) in &SIZES {
        let mut rng = config.rng();
        let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-0.1..0.1));
        let problem =
            BipartiteProblem::new(w, ndarray::Array1::zeros(m), ndarray::Array1::zeros(n))
                .expect("consistent dims");
        let levels: Vec<f64> = (0..m).map(|i| f64::from(i % 2 == 0)).collect();
        let mut results = [0.0f64; 2];
        for (slot, dense, mode) in [(0, true, "dense-baseline"), (1, false, "bipartite")] {
            let mut brim =
                BipartiteBrim::new(problem.clone(), BrimConfig::default()).with_dense_kernel(dense);
            brim.clamp_visible(&levels);
            let wall_ms = time(|| brim.settle(sweeps), reps);
            let throughput = sweeps as f64 / (wall_ms / 1000.0);
            results[slot] = throughput;
            println!(
                "  {m}x{n} {mode:<16} {wall_ms:>10.2} ms/{sweeps} sweeps  {throughput:>12.1} sweeps/s"
            );
            rows.push(BenchRow {
                name: "brim-settle".into(),
                visible: m,
                hidden: n,
                mode,
                wall_ms,
                throughput,
                unit: "sweeps/sec",
            });
        }
        let speedup = results[1] / results[0];
        println!("  {m}x{n} speedup {speedup:.2}x");
        speedups.push((format!("brim-settle-{m}x{n}"), speedup));
    }
}

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<28} {s:.2}x");
    }

    let rows_json: Vec<String> = rows.iter().map(BenchRow::json).collect();
    let speedups_json: Vec<String> = speedups
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v:.3}"))
        .collect();
    let json = format!(
        "{{\n  \"pr\": 1,\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \"benches\": [\n    {}\n  ],\n  \"speedups\": {{{}}}\n}}\n",
        config.seed,
        if config.full { "full" } else { "quick" },
        rayon::current_num_threads(),
        rows_json.join(",\n    "),
        speedups_json.join(",")
    );
    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("\nwrote BENCH_PR1.json");
    if config.json {
        println!("{json}");
    }
}
