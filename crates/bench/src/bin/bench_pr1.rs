//! PR 1 performance-trajectory benchmark: fixed-seed suite measuring the
//! parallel batched sampling engine against the serial/dense baselines
//! kept behind flags, at the paper's layer sizes (784×200 MNIST-class,
//! 784×500 wide, 108×1024 fraud-class).
//!
//! Emits `BENCH_PR1.json` — the first point of the per-PR performance
//! trajectory every future PR is held to (see the `bench_gate` binary).
//! Run with `--quick` (default) for CI-scale workloads or `--full` for
//! longer measurement windows.
//!
//! Measured suites (shared with later trajectory points through
//! [`ember_bench::trajectory`]):
//!
//! * **gibbs-cd1** — one substrate-accelerated CD-1 epoch on the
//!   `GibbsSampler` at batch 64: batched GEMM engine vs the
//!   row-at-a-time scalar reference (`GsEngine::SerialReference`).
//!   Unit: samples/sec.
//! * **gibbs-chain** — software `k`-step batched Gibbs chains:
//!   `gibbs::chain_batch_par` (per-chain RNG streams) vs the serial
//!   single-generator `gibbs::chain_batch`. Unit: samples/sec.
//! * **brim-anneal** / **brim-settle** — bipartite BRIM sweeps: `O(m·n)`
//!   two-GEMV kernel vs the dense `(m+n)²` reference kernel. Unit:
//!   sweeps/sec.

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_gibbs_cd1, bench_gibbs_chain, write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<28} {s:.2}x");
    }

    let json = write_trajectory(1, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
