//! Regenerates **Figure 6**: training energy of TPU, GS and GPU
//! normalized over BGF for every benchmark.
//!
//! Paper anchor: ~1000× energy reduction for BGF vs the TPU host.

use ember_bench::{compare_row, header, RunConfig};
use ember_perf::{bgf_energy, fig6_rows, gs_energy, paper_benchmarks, tpu_energy};

fn main() {
    let config = RunConfig::from_args();
    header("Figure 6: energy normalized over BGF (batch 500)");

    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "Benchmark", "TPU", "GS", "GPU(T4)"
    );
    let rows = fig6_rows();
    for row in &rows {
        println!(
            "{:<16} {:>10.0} {:>10.1} {:>12.0}",
            row.name, row.tpu, row.gs, row.gpu
        );
    }

    let gm = rows.last().expect("geomean row");
    header("Paper vs measured (geometric means)");
    compare_row("TPU/BGF energy", "~1000x", &format!("{:.0}x", gm.tpu));
    compare_row(
        "GS between TPU and BGF",
        "yes",
        if gm.gs > 1.0 && gm.gs < gm.tpu {
            "yes"
        } else {
            "NO"
        },
    );

    header("Energy breakdowns (model, joules / training run)");
    for b in paper_benchmarks() {
        let gs = gs_energy(&b);
        let bgf = bgf_energy(&b);
        println!(
            "{:<16} TPU {:>9.2e}  GS {:>9.2e} (host {:.0}%)  BGF {:>9.2e} (stream {:.0}%)",
            b.name,
            tpu_energy(&b),
            gs.total(),
            100.0 * gs.host_j / gs.total(),
            bgf.total(),
            100.0 * bgf.comm_j / bgf.total(),
        );
    }

    if config.json {
        println!("{}", serde_json::to_string(&rows).expect("serializable"));
    }
}
