//! Regenerates **Figure 9**: recommendation-system MAE of BGF-trained
//! models under the six diagonal noise/variation configurations.
//!
//! Expected shape (paper): final MAE varies only a little across
//! configurations (0.709–0.7258 in the paper's run).

use ember_analog::NoiseModel;
use ember_bench::{bgf_quality_config, header, train_bgf, RunConfig};
use ember_rbm::Rbm;

fn main() {
    let config = RunConfig::from_args();
    let ratings = config.pick(20_000, 100_000);
    let hidden = config.pick(50, 100);
    let epochs = config.pick(3, 10);

    header("Figure 9: recommendation MAE under noise/variation (BGF)");
    println!(
        "ratings: {ratings}  hidden: {hidden}  epochs: {epochs}  seed: {}",
        config.seed
    );

    let ml = ember_datasets::movielens::generate(ratings, 0.1, config.seed);
    let matrix = ml.item_user_matrix(4);

    let mae_of = |rbm: &Rbm| -> f64 { ember_bench::movielens_mae(rbm, &ml, &matrix) };

    let mut results = Vec::new();
    for noise in NoiseModel::paper_diagonal() {
        let mut rng = config.rng();
        let rbm = train_bgf(
            ml.users(),
            hidden,
            &matrix,
            bgf_quality_config().with_noise(noise),
            epochs,
            &mut rng,
        );
        let mae = mae_of(&rbm);
        println!("{:<12} MAE {mae:.4}", noise.label());
        results.push((noise.label(), mae));
    }

    header("Paper vs measured");
    let values: Vec<f64> = results.iter().map(|r| r.1).collect();
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("paper: final MAE ranges 0.709 - 0.7258 (spread 0.017)");
    println!(
        "measured: final MAE ranges {min:.4} - {max:.4} (spread {:.4})",
        max - min
    );
    println!(
        "noise robustness (spread < 0.1): {}",
        if max - min < 0.1 {
            "yes (SHAPE REPRODUCED)"
        } else {
            "NO"
        }
    );

    if config.json {
        println!("{}", serde_json::to_string(&results).expect("serializable"));
    }
}
