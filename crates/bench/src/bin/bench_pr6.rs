//! PR 6 performance-trajectory benchmark: everything `bench_pr4`
//! measures (same suites, same `(name, visible, hidden, mode)` row
//! identities, so the `bench_gate` binary can diff the two trajectory
//! files) **plus the robustness dimension**: the coalesced serving wave
//! over a `ChaosSubstrate`-wrapped software backend at a 0% vs 1%
//! injected fault rate — pricing the fallible seam and the
//! reprogram-and-retry recovery machinery this PR threads through the
//! serving hot path.
//!
//! Emits `BENCH_PR6.json`. Gate it against the previous point with:
//!
//! ```sh
//! cargo run --release -p ember_bench --bin bench_pr6 -- --quick
//! cargo run --release -p ember_bench --bin bench_gate -- BENCH_PR4.json BENCH_PR6.json --tolerance 0.25
//! ```
//!
//! The committed `BENCH_PR6.json` follows the estimator convention of
//! the PR 2–4 points on the drifting shared reference box: per-row
//! medians over 8 process runs of this binary (`--quick`), with each
//! `speedups` entry the median of the per-run ratios.

use ember_bench::trajectory::{
    bench_brim_anneal, bench_brim_settle, bench_faulty_serve, bench_gibbs_cd1, bench_gibbs_chain,
    bench_packed_kernel, bench_serve_throughput, bench_substrate_cd1, write_trajectory,
};
use ember_bench::{header, RunConfig};

fn main() {
    let config = RunConfig::from_args();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    bench_gibbs_cd1(&config, &mut rows, &mut speedups);
    bench_gibbs_chain(&config, &mut rows, &mut speedups);
    bench_brim_anneal(&config, &mut rows, &mut speedups);
    bench_brim_settle(&config, &mut rows, &mut speedups);
    bench_substrate_cd1(&config, &mut rows, &mut speedups);
    bench_serve_throughput(&config, &mut rows, &mut speedups);
    bench_packed_kernel(&config, &mut rows, &mut speedups);
    bench_faulty_serve(&config, &mut rows, &mut speedups);

    header("Speedup summary");
    for (name, s) in &speedups {
        println!("  {name:<34} {s:.2}x");
    }

    let json = write_trajectory(6, &config, &rows, &speedups);
    if config.json {
        println!("{json}");
    }
}
