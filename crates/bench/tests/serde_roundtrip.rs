//! Persistence round-trips: every model/config type a user would save to
//! disk must survive serde JSON serialization bit-exactly.

use ember_analog::NoiseModel;
use ember_core::{BgfConfig, GsConfig, HardwareCounters};
use ember_ising::{BipartiteProblem, IsingProblem, SpinVec};
use ember_rbm::{Dbn, Mlp, Rbm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// JSON text round-trips f64 to within one ULP; model equality checks use
/// this tolerance rather than bit equality.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

fn rbm_close(a: &Rbm, b: &Rbm) -> bool {
    a.weights()
        .iter()
        .zip(b.weights().iter())
        .all(|(x, y)| close(*x, *y))
        && a.visible_bias()
            .iter()
            .zip(b.visible_bias().iter())
            .all(|(x, y)| close(*x, *y))
        && a.hidden_bias()
            .iter()
            .zip(b.hidden_bias().iter())
            .all(|(x, y)| close(*x, *y))
}

#[test]
fn rbm_roundtrip_is_exact() {
    let mut rng = StdRng::seed_from_u64(1);
    let rbm = Rbm::random(12, 7, 0.3, &mut rng);
    let back: Rbm = roundtrip(&rbm);
    assert!(rbm_close(&rbm, &back));
}

#[test]
fn dbn_roundtrip_is_exact() {
    let mut rng = StdRng::seed_from_u64(2);
    let dbn = Dbn::random(&[8, 5, 3], 0.2, &mut rng);
    let back: Dbn = roundtrip(&dbn);
    for l in 0..dbn.depth() {
        assert!(rbm_close(dbn.layer(l), back.layer(l)), "layer {l} drifted");
    }
}

#[test]
fn mlp_roundtrip_preserves_predictions() {
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = Mlp::new(6, &[4], 3, 0.5, &mut rng);
    let back: Mlp = roundtrip(&mlp);
    let batch = ndarray::Array2::from_shape_fn((5, 6), |(i, j)| ((i * j) % 2) as f64);
    let a = mlp.predict_proba(&batch);
    let b = back.predict_proba(&batch);
    assert!(a.iter().zip(b.iter()).all(|(x, y)| close(*x, *y)));
}

#[test]
fn ising_problem_roundtrip_preserves_energy() {
    let mut rng = StdRng::seed_from_u64(4);
    let p = ember_ising::generate::random_gaussian(9, 1.0, 0.4, &mut rng);
    let back: IsingProblem = roundtrip(&p);
    let s = SpinVec::random(9, &mut rng);
    assert!(close(p.energy(&s), back.energy(&s)));
}

#[test]
fn bipartite_problem_roundtrip() {
    let p = BipartiteProblem::new(
        ndarray::arr2(&[[1.0, -2.0], [0.5, 0.25]]),
        ndarray::arr1(&[0.1, -0.1]),
        ndarray::arr1(&[0.2, 0.3]),
    )
    .unwrap();
    let back: BipartiteProblem = roundtrip(&p);
    assert_eq!(p, back);
}

#[test]
fn configs_roundtrip() {
    let gs = GsConfig::default()
        .with_k(7)
        .with_learning_rate(0.03)
        .with_noise(NoiseModel::new(0.1, 0.2).unwrap());
    assert_eq!(gs, roundtrip(&gs));

    let bgf = BgfConfig::default()
        .with_pump_ratio(1.0 / 256.0)
        .with_particles(13)
        .with_adc_bits(10);
    assert_eq!(bgf, roundtrip(&bgf));

    let counters = HardwareCounters {
        positive_samples: 1,
        negative_samples: 2,
        phase_points: 3,
        weight_update_events: 4,
        host_words_transferred: 5,
        host_mac_ops: 6,
        packed_kernel_calls: 7,
        dense_kernel_calls: 8,
        simd_kernel_calls: 13,
        substrate_faults: 9,
        corrupted_programmings: 10,
        corrupted_reads: 11,
        recovery_retries: 12,
    };
    assert_eq!(counters, roundtrip(&counters));
}

#[test]
fn trained_model_json_is_loadable_by_fresh_process_shape() {
    // Simulate the "save after training, load for inference" flow.
    let mut rng = StdRng::seed_from_u64(5);
    let mut rbm = Rbm::random(10, 4, 0.05, &mut rng);
    let data = ndarray::Array2::from_shape_fn((20, 10), |(i, _)| (i % 2) as f64);
    ember_rbm::CdTrainer::new(1, 0.1).train(&mut rbm, &data, 5, 10, &mut rng);

    let json = serde_json::to_string_pretty(&rbm).expect("serialize");
    let loaded: Rbm = serde_json::from_str(&json).expect("deserialize");
    let v = ndarray::arr1(&[1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    let a = rbm.hidden_probs(&v.view());
    let b = loaded.hidden_probs(&v.view());
    assert!(a.iter().zip(b.iter()).all(|(x, y)| close(*x, *y)));
}
