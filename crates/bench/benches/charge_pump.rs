//! Criterion micro-benchmarks of the analog component models: charge-pump
//! packets, sigmoid transfer, comparator sampling, converter quantization.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use ember_analog::{Adc, ChargePump, Comparator, Dtc, SigmoidUnit, ThermalRng};

fn bench_pump(c: &mut Criterion) {
    let pump = ChargePump::new(1.0 / 2048.0).unwrap();
    c.bench_function("charge_pump_increment", |b| {
        let mut v = 0.5;
        b.iter(|| {
            v = pump.increment(black_box(v));
            if v > 0.99 {
                v = 0.5;
            }
        });
    });
    c.bench_function("charge_pump_packets_closed_form", |b| {
        b.iter(|| pump.apply_packets(black_box(0.3), black_box(64), true));
    });
}

fn bench_sigmoid_comparator(c: &mut Criterion) {
    let s = SigmoidUnit::new(1.2, 0.1, 0.01).unwrap();
    c.bench_function("sigmoid_transfer", |b| {
        b.iter(|| s.transfer(black_box(0.73)));
    });
    let cmp = Comparator::ideal();
    let noise = ThermalRng::default();
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("comparator_sample", |b| {
        b.iter(|| cmp.sample(black_box(0.4), &noise, &mut rng));
    });
}

fn bench_converters(c: &mut Criterion) {
    let dtc = Dtc::new(8, 0.005).unwrap();
    c.bench_function("dtc_convert", |b| {
        b.iter(|| dtc.convert(black_box(0.37)));
    });
    let adc = Adc::new(8, 0.01).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    c.bench_function("adc_read", |b| {
        b.iter(|| adc.read(black_box(0.61), 0.0, 1.0, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_pump,
    bench_sigmoid_comparator,
    bench_converters
);
criterion_main!(benches);
