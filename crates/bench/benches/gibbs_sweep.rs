//! Criterion micro-benchmarks of the software Gibbs sampling path — the
//! inner loop the Ising substrate replaces (Algorithm 1 lines 12–15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ndarray::Array1;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use ember_rbm::{gibbs, Rbm};

fn bench_gibbs_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("gibbs_chain_cd1");
    for &(m, n) in &[(784usize, 200usize), (784, 500), (108, 1024)] {
        let mut rng = StdRng::seed_from_u64(1);
        let rbm = Rbm::random(m, n, 0.05, &mut rng);
        let v0 = Array1::from_shape_fn(m, |i| (i % 2) as f64);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{n}")),
            &rbm,
            |b, rbm| {
                b.iter(|| gibbs::chain(black_box(rbm), black_box(&v0), 1, &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_hidden_probs(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let rbm = Rbm::random(784, 200, 0.05, &mut rng);
    let v = Array1::from_shape_fn(784, |i| (i % 2) as f64);
    c.bench_function("hidden_probs_784x200", |b| {
        b.iter(|| rbm.hidden_probs(black_box(&v.view())));
    });
}

criterion_group!(benches, bench_gibbs_chain, bench_hidden_probs);
criterion_main!(benches);
