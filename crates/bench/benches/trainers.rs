//! Criterion micro-benchmarks comparing one epoch of every trainer on a
//! common workload: software CD-1/CD-10, PCD, the GS accelerator model,
//! and the BGF hardware model (behavioral cost, not wall-clock claims).

use criterion::{criterion_group, criterion_main, Criterion};
use ndarray::Array2;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ember_core::{BgfConfig, BoltzmannGradientFollower, GibbsSampler, GsConfig};
use ember_rbm::{CdTrainer, PcdTrainer, Rbm};

const M: usize = 196; // 14x14 images
const N: usize = 32;
const SAMPLES: usize = 64;

fn data() -> Array2<f64> {
    Array2::from_shape_fn((SAMPLES, M), |(i, j)| ((i + j) % 2) as f64)
}

fn bench_trainers(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_epoch_196x32x64");
    group.sample_size(10);
    let data = data();

    group.bench_function("cd1", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut rbm = Rbm::random(M, N, 0.01, &mut rng);
        let t = CdTrainer::new(1, 0.1);
        b.iter(|| t.train_epoch(&mut rbm, &data, 16, &mut rng));
    });

    group.bench_function("cd10", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut rbm = Rbm::random(M, N, 0.01, &mut rng);
        let t = CdTrainer::new(10, 0.1);
        b.iter(|| t.train_epoch(&mut rbm, &data, 16, &mut rng));
    });

    group.bench_function("pcd1", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rbm = Rbm::random(M, N, 0.01, &mut rng);
        let mut t = PcdTrainer::new(1, 0.05, 16, &rbm, &mut rng);
        b.iter(|| t.train_epoch(&mut rbm, &data, 16, &mut rng));
    });

    group.bench_function("gs_k1", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let rbm = Rbm::random(M, N, 0.01, &mut rng);
        let mut gs = GibbsSampler::new(rbm, GsConfig::default().with_k(1), &mut rng);
        b.iter(|| gs.train_epoch(&data, 16, &mut rng));
    });

    group.bench_function("bgf", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let rbm = Rbm::random(M, N, 0.01, &mut rng);
        let mut bgf = BoltzmannGradientFollower::new(rbm, BgfConfig::default(), &mut rng);
        b.iter(|| bgf.train_epoch(&data, &mut rng));
    });

    group.finish();
}

criterion_group!(benches, bench_trainers);
criterion_main!(benches);
