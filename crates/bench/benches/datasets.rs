//! Criterion micro-benchmarks of the synthetic dataset generators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generate_100");
    group.sample_size(10);
    group.bench_function("digits", |b| {
        b.iter(|| ember_datasets::digits::generate(black_box(100), 1))
    });
    group.bench_function("kana", |b| {
        b.iter(|| ember_datasets::kana::generate(black_box(100), 1))
    });
    group.bench_function("fashion", |b| {
        b.iter(|| ember_datasets::fashion::generate(black_box(100), 1))
    });
    group.bench_function("letters", |b| {
        b.iter(|| ember_datasets::letters::generate(black_box(100), 1))
    });
    group.bench_function("cifar", |b| {
        b.iter(|| ember_datasets::cifar::generate(black_box(100), 1))
    });
    group.bench_function("norb", |b| {
        b.iter(|| ember_datasets::norb::generate(black_box(100), 1))
    });
    group.finish();

    c.bench_function("movielens_10k_ratings", |b| {
        b.iter(|| ember_datasets::movielens::generate(black_box(10_000), 0.1, 1))
    });
    c.bench_function("fraud_5k", |b| {
        b.iter(|| ember_datasets::fraud::generate(black_box(5000), 0.01, 1))
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
