//! Criterion micro-benchmarks of the AIS log-partition estimator
//! (the evaluation cost behind Figures 7–8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use ember_metrics::Ais;
use ember_rbm::{exact, Rbm};

fn bench_ais(c: &mut Criterion) {
    let mut group = c.benchmark_group("ais_log_partition");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let small = Rbm::random(16, 8, 0.3, &mut rng);
    let medium = Rbm::random(784, 64, 0.05, &mut rng);
    for (name, rbm, betas, chains) in [
        ("16x8", &small, 100usize, 10usize),
        ("784x64", &medium, 50, 5),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), rbm, |b, rbm| {
            let ais = Ais::new(betas, chains);
            let mut rng = StdRng::seed_from_u64(8);
            b.iter(|| ais.log_partition(black_box(rbm), &mut rng));
        });
    }
    group.finish();
}

fn bench_exact_partition(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let rbm = Rbm::random(16, 8, 0.3, &mut rng);
    c.bench_function("exact_log_partition_16x8", |b| {
        b.iter(|| exact::log_partition(black_box(&rbm)));
    });
}

criterion_group!(benches, bench_ais, bench_exact_partition);
criterion_main!(benches);
