//! Criterion micro-benchmarks of the BRIM dynamical simulator: one Euler
//! integration step (= one simulated phase point, ≈12 ps of machine time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use ember_brim::{BipartiteBrim, BrimConfig, BrimMachine};
use ember_ising::{generate, BipartiteProblem};
use ndarray::{Array1, Array2};

fn bench_dense_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("brim_step_dense");
    group.sample_size(20);
    for &n in &[64usize, 256, 512] {
        let mut rng = StdRng::seed_from_u64(3);
        let problem = generate::random_gaussian(n, 1.0, 0.1, &mut rng);
        let mut machine = BrimMachine::new(problem, BrimConfig::default());
        machine.randomize(&mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                machine.step(black_box(0.001), &mut rng);
            });
        });
    }
    group.finish();
}

fn bench_bipartite_settle(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    use rand::Rng;
    let w = Array2::from_shape_fn((784, 200), |_| rng.random_range(-0.2..0.2));
    let p = BipartiteProblem::new(w, Array1::zeros(784), Array1::zeros(200)).unwrap();
    let mut brim = BipartiteBrim::new(p, BrimConfig::default());
    let clamp: Vec<f64> = (0..784).map(|i| (i % 2) as f64).collect();
    c.bench_function("bipartite_settle_784x200_10pp", |b| {
        b.iter(|| {
            brim.clamp_visible(black_box(&clamp));
            brim.settle(10);
        });
    });
}

criterion_group!(benches, bench_dense_step, bench_bipartite_settle);
criterion_main!(benches);
