//! Criterion micro-benchmarks of the analytic performance model (the
//! Figures 5–6 / Tables 2–3 generators are pure arithmetic and should be
//! effectively free).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ember_perf::{bgf_time, fig5_rows, fig6_rows, paper_benchmarks, table3_rows, tpu_time};

fn bench_rows(c: &mut Criterion) {
    c.bench_function("fig5_rows", |b| b.iter(fig5_rows));
    c.bench_function("fig6_rows", |b| b.iter(fig6_rows));
    c.bench_function("table3_rows", |b| b.iter(table3_rows));
}

fn bench_single_models(c: &mut Criterion) {
    let bench = &paper_benchmarks()[0];
    c.bench_function("tpu_time_single", |b| b.iter(|| tpu_time(black_box(bench))));
    c.bench_function("bgf_time_single", |b| b.iter(|| bgf_time(black_box(bench))));
}

criterion_group!(benches, bench_rows, bench_single_models);
criterion_main!(benches);
