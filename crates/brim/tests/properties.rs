//! Property-based tests of the BRIM dynamical invariants.

use ember_brim::{BipartiteBrim, BrimConfig, BrimMachine, FlipSchedule};
use ember_ising::{generate, BipartiteProblem};
use ndarray::{Array1, Array2};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Lyapunov function never increases under noiseless dynamics,
    /// for any problem, any stable dt, any feedback gain.
    #[test]
    fn lyapunov_descends(
        seed in any::<u64>(),
        n in 4usize..20,
        dt in 0.01f64..0.08,
        kf in 0.0f64..1.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let problem = generate::random_gaussian(n, 0.5, 0.2, &mut rng);
        let config = BrimConfig::default().with_dt(dt).with_feedback_gain(kf);
        let mut machine = BrimMachine::new(problem, config);
        machine.randomize(&mut rng);
        let mut prev = machine.lyapunov();
        let mut no_rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..200 {
            machine.step(0.0, &mut no_rng);
            let l = machine.lyapunov();
            prop_assert!(l <= prev + 1e-6, "lyapunov rose {prev} -> {l}");
            prev = l;
        }
    }

    /// Voltages stay within the rails no matter the flip schedule.
    #[test]
    fn rails_hold(seed in any::<u64>(), n in 3usize..16, p in 0.0f64..0.5) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let problem = generate::random_gaussian(n, 2.0, 1.0, &mut rng);
        let mut machine = BrimMachine::new(problem, BrimConfig::default().with_dt(0.2));
        machine.randomize(&mut rng);
        for _ in 0..100 {
            machine.step(p, &mut rng);
            prop_assert!(machine.voltages().iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    /// BRIM never reports an energy below the true ground state.
    #[test]
    fn never_below_ground(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let problem = generate::random_gaussian(8, 1.0, 0.3, &mut rng);
        let (_, ground) = problem.brute_force_ground_state();
        let mut machine = BrimMachine::new(problem, BrimConfig::default());
        machine.randomize(&mut rng);
        let sol = machine.anneal(&FlipSchedule::geometric(0.05, 1e-3, 300), &mut rng);
        prop_assert!(sol.energy >= ground - 1e-9);
    }

    /// Clamped nodes are never moved by dynamics or flip injection.
    #[test]
    fn clamp_is_inviolable(
        seed in any::<u64>(),
        m in 2usize..6,
        n in 1usize..5,
        p in 0.0f64..0.6,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = Array2::from_shape_fn((m, n), |_| rng.random_range(-2.0..2.0));
        let problem = BipartiteProblem::new(w, Array1::zeros(m), Array1::zeros(n)).unwrap();
        let mut brim = BipartiteBrim::new(problem, BrimConfig::default());
        let clamp: Vec<f64> = (0..m).map(|i| (i % 2) as f64).collect();
        brim.clamp_visible(&clamp);
        let before: Vec<f64> = brim.visible_voltages().to_vec();
        brim.anneal(&FlipSchedule::constant(p, 60), &mut rng);
        prop_assert_eq!(before, brim.visible_voltages().to_vec());
    }

    /// Phase-point accounting is exact.
    #[test]
    fn phase_points_exact(steps in 1usize..200) {
        let problem = generate::ferromagnetic_ring(5, 1.0);
        let mut machine = BrimMachine::new(problem, BrimConfig::default());
        let sol = machine.quench(steps);
        prop_assert_eq!(sol.phase_points, steps);
        prop_assert_eq!(machine.phase_points(), steps);
        prop_assert_eq!(sol.energy_trace.len(), steps);
    }
}
